"""Fig. 9: mean messages per machine vs. minimum file size for coalescing.

Paper finding to reproduce: "By setting this threshold to 4 Kbytes, the mean
message count is cut in half without measurably reducing the effectiveness
of the system (cf. Fig. 7)" -- most files are small, so excluding them
removes most record traffic but few duplicate bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import format_bytes, render_table
from repro.experiments.scales import ExperimentScale
from repro.experiments.threshold_sweep import ThresholdSweepResult, run_threshold_sweep


@dataclass
class Fig09Result:
    sweep: ThresholdSweepResult

    def halving_threshold(self, lam: float) -> int:
        """Smallest threshold that at least halves the no-threshold traffic."""
        points = self.sweep.points[lam]
        full = points[0].mean_messages
        for p in points:
            if p.mean_messages <= full / 2:
                return p.min_size
        return points[-1].min_size

    def render(self) -> str:
        return render_table(
            "Fig. 9: mean messages per machine vs. minimum file size",
            "min size",
            self.sweep.thresholds,
            self.sweep.message_series(),
            x_formatter=lambda v: format_bytes(v),
            value_formatter=lambda v: f"{v:,.0f}",
        )


def run(
    scale: ExperimentScale,
    seed: int = 0,
    sweep: ThresholdSweepResult = None,
) -> Fig09Result:
    if sweep is None:
        sweep = run_threshold_sweep(scale, seed=seed)
    return Fig09Result(sweep=sweep)
