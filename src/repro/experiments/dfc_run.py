"""The shared DFC experiment pipeline (paper section 5).

Reproduces the paper's experimental procedure: "We ran a two-dimensional DFC
system on 585 simulated machines, each of which held content from one of the
scanned desktop file systems.  The SALAD was initialized with a single leaf,
and the remaining 584 machines were each added to the SALAD by the procedure
outlined in Subsection 4.4."  Records are then inserted per Fig. 4, match
notifications collected, and consumed space computed from the discovered
duplicate pairs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.space import SpaceAccounting
from repro.salad.records import SaladRecord
from repro.salad.salad import SaladConfig
from repro.salad.sharded import make_salad
from repro.sim.metrics import mean
from repro.workload.corpus import Corpus


@dataclass(frozen=True)
class DfcConfig:
    """Configuration of one DFC experiment run."""

    target_redundancy: float = 2.0
    dimensions: int = 2
    damping: float = 0.1
    database_capacity: Optional[int] = None
    #: Capped match notifications (see SaladLeaf.notify_limit); experiments
    #: default to the scalable policy.
    notify_limit: Optional[int] = 4
    seed: int = 0
    #: Worker processes for the batch-parallel phases (content
    #: materialization, encryption, fingerprinting).  1 = serial; 0 = one per
    #: CPU; None = the session default (``repro.perf.set_default_workers``,
    #: wired to the experiment CLI's ``--workers``).  Parallel runs are
    #: byte-identical to serial runs -- every parallelized unit is a pure
    #: per-item function -- so this knob never changes any reported number,
    #: only wall time.
    workers: Optional[int] = None
    #: Record-store backend per leaf ("memory" | "sqlite" | "wal"; None =
    #: session default, see repro.salad.storage).  The durable backends keep
    #: the 10M-record full-scale corpus out of RAM and survive crashes; all
    #: three are contract-identical, so reported numbers never change.
    db_backend: Optional[str] = None
    #: Directory for durable record stores (None = session default/tempdir).
    db_dir: Optional[str] = None
    #: Replicas per logical file (Farsite's R).  1 keeps the seed's
    #: single-copy pipeline bit-identical; >= 2 places each file on R
    #: distinct hosts via the availability-driven hill-climbing placement
    #: (repro.farsite.placement) before SALAD discovery, so the relocation
    #: planner co-locates whole replica *sets* and the fig-tradeoff
    #: experiment can chart durability against reclaimed space.  Only the
    #: byte-level DfcPipeline materializes replicas; the statistics-only
    #: experiments ignore this knob.
    replication_factor: int = 1

    def __post_init__(self) -> None:
        if self.replication_factor < 1:
            raise ValueError(
                f"replication factor must be >= 1: {self.replication_factor}"
            )
    #: Worker processes for the sub-cube sharded simulation engine (None/1 =
    #: single-process, 0 = auto, >= 2 a power of two; see
    #: repro.salad.sharded).  Sharded runs are trace-identical to
    #: single-process ones on deterministic workloads, so this knob never
    #: changes a reported number, only wall time.  Falls back to
    #: single-process automatically where workers cannot be spawned (e.g.
    #: inside a per-Lambda ParallelMap pool worker).
    shard_workers: Optional[int] = None
    #: Run the opt-in invariant tracer (repro.sim.tracer) inside the engine
    #: and feed violation counters into harvested metrics.  None = session
    #: default (``repro.salad.salad.set_trace_invariants``, wired to the
    #: experiment CLI's ``--trace-invariants``).  Retains every message in
    #: memory, so opt in deliberately.
    trace_invariants: Optional[bool] = None

    def salad_config(self) -> SaladConfig:
        return SaladConfig(
            target_redundancy=self.target_redundancy,
            dimensions=self.dimensions,
            damping=self.damping,
            database_capacity=self.database_capacity,
            notify_limit=self.notify_limit,
            seed=self.seed,
            db_backend=self.db_backend,
            db_dir=self.db_dir,
            shard_workers=self.shard_workers,
            trace_invariants=self.trace_invariants,
        )


@dataclass
class SweepPoint:
    """Measurements at one minimum-file-size threshold."""

    min_size: int
    consumed_bytes: int
    ideal_consumed_bytes: int
    mean_messages: float
    mean_database_records: float


class DfcRun:
    """One corpus + one SALAD, driven through build / fail / insert phases."""

    def __init__(self, corpus: Corpus, config: DfcConfig):
        self.corpus = corpus
        self.config = config
        self.salad = make_salad(config.salad_config())
        self.accounting = SpaceAccounting(corpus)
        #: corpus machine_index -> SALAD leaf identifier (join order).
        self.leaf_of_machine: Dict[int, int] = {}
        self._built = False

    # -- phase 1: build ------------------------------------------------------

    def build(self) -> None:
        """Grow the SALAD by incremental joins, one leaf per corpus machine."""
        if self._built:
            raise RuntimeError("SALAD already built")
        for machine in self.corpus.machines:
            leaf = self.salad.add_leaf()
            self.leaf_of_machine[machine.machine_index] = leaf.identifier
        self._built = True

    # -- phase 2 (optional): failures (Fig. 8) -------------------------------

    def set_failure_probability(self, probability: float) -> None:
        """Machines "fail" with this probability (section 5, Fig. 8).

        Desktop machines are "not always on" (section 1); the probability is
        a duty cycle: every message is lost with probability p, modeling the
        recipient being down at delivery time.  (A model that permanently
        crashes a p-fraction of machines cannot reproduce Fig. 8: the files
        on dead machines alone would cap reclaim at ~23% of space for
        p = 0.5, far below the paper's 38%.)
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"failure probability must be in [0,1]: {probability}")
        self.salad.set_loss_probability(probability)

    def crash_machines(self, fraction: float, rng: Optional[random.Random] = None) -> int:
        """Ablation: permanently crash an exact fraction of machines.

        Crashed machines neither insert records nor store, forward, or
        notify; their files still count toward consumed space.  This is a
        strictly harsher model than the paper's Fig. 8 duty-cycle failures.
        """
        rng = rng or random.Random(self.config.seed + 1)
        return self.salad.crash_fraction(fraction, rng)

    # -- phase 3: record insertion -------------------------------------------

    def records_for_machine(self, machine_index: int, min_size: int = 0) -> List[SaladRecord]:
        leaf_id = self.leaf_of_machine[machine_index]
        scan = self.corpus.machines[machine_index]
        return [
            SaladRecord(fingerprint=f.fingerprint(), location=leaf_id)
            for f in scan.files_at_least(min_size)
        ]

    def insert_all(self, min_size: int = 0) -> int:
        """Insert every eligible file record (Fig. 4); returns count inserted."""
        if not self._built:
            self.build()
        batches = {
            self.leaf_of_machine[m.machine_index]: self.records_for_machine(
                m.machine_index, min_size
            )
            for m in self.corpus.machines
        }
        return self.salad.insert_records(batches)

    def insert_sweep(self, thresholds: Sequence[int]) -> List[SweepPoint]:
        """One pass over all thresholds (Figs. 7, 9, 11).

        Files are inserted in descending size-bucket order; after each bucket
        the cumulative state equals a run restricted to files >= that
        threshold, so a single pass yields the whole sweep.
        """
        if not self._built:
            self.build()
        thresholds = sorted(set(thresholds), reverse=True)
        points: List[SweepPoint] = []
        upper = None  # exclusive upper bound of the current bucket
        for threshold in thresholds:
            batches: Dict[int, List[SaladRecord]] = {}
            for machine in self.corpus.machines:
                leaf_id = self.leaf_of_machine[machine.machine_index]
                records = [
                    SaladRecord(fingerprint=f.fingerprint(), location=leaf_id)
                    for f in machine.files
                    if f.size >= threshold and (upper is None or f.size < upper)
                ]
                if records:
                    batches[leaf_id] = records
            self.salad.insert_records(batches)
            points.append(self._snapshot(threshold))
            upper = threshold
        points.reverse()  # ascending thresholds, like the paper's x-axis
        return points

    def _snapshot(self, min_size: int) -> SweepPoint:
        return SweepPoint(
            min_size=min_size,
            consumed_bytes=self.consumed_bytes(min_size),
            ideal_consumed_bytes=self.accounting.ideal_consumed_bytes(min_size),
            mean_messages=mean(self.salad.message_totals()),
            mean_database_records=mean(self.salad.database_sizes(alive_only=False)),
        )

    # -- results ---------------------------------------------------------------

    def consumed_bytes(self, min_size: int = 0) -> int:
        return self.accounting.consumed_bytes(self.salad.collected_matches(), min_size)

    def reclaimed_fraction(self, min_size: int = 0) -> float:
        return self.accounting.reclaimed_fraction(self.salad.collected_matches(), min_size)

    def message_totals(self) -> List[int]:
        return self.salad.message_totals()

    def database_sizes(self) -> List[int]:
        return self.salad.database_sizes(alive_only=False)

    def leaf_table_sizes(self) -> List[int]:
        return self.salad.leaf_table_sizes(alive_only=True)

    def collect_metrics(self, registry) -> Optional[List[dict]]:
        """Harvest engine and module counters into *registry*.

        Returns the per-shard registry dumps when the engine is sharded
        (the coordinator merges them into *registry* itself), else ``None``.
        Harvest before :meth:`close`: a shut-down engine has nothing left to
        report.
        """
        from repro import perf
        from repro.core import fingerprint
        from repro.crypto import modes

        modes.collect_metrics(registry)
        fingerprint.collect_metrics(registry)
        perf.collect_metrics(registry)
        result = self.salad.collect_metrics(registry)
        return result if isinstance(result, list) else None

    def close(self) -> None:
        """Release engine resources (databases; worker processes if sharded)."""
        self.salad.shutdown()
