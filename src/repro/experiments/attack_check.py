"""Attack-resilience validation (section 4.7, Eq. 20).

m sybil leaves choose identifiers vector-aligned with a victim, inflating
its leaf table and therefore its system-size estimate; the victim picks an
oversized cell-ID width and its records become lossier.  Eq. 20 predicts the
victim's effective record redundancy:

    lambda' = lambda * (1 - m/L)^D

This experiment mounts the attack and measures lambda' (the mean number of
leaves actually storing the victim's records), comparing it with both the
unattacked redundancy and the Eq. 20 prediction -- demonstrating the paper's
point that the attack is "fairly weak": it degrades redundancy but cannot
capture a fingerprint range.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.analysis.reporting import render_kv
from repro.core.fingerprint import synthetic_fingerprint
from repro.experiments.scales import ExperimentScale
from repro.salad.attack import craft_attack_identifiers, measure_record_redundancy
from repro.salad.model import actual_redundancy, attacked_redundancy
from repro.salad.records import SaladRecord
from repro.salad.salad import Salad, SaladConfig


@dataclass
class AttackCheckResult:
    system_size: int
    sybil_count: int
    baseline_redundancy: float
    attacked_measured: float
    attacked_predicted: float
    victim_width_before: int
    victim_width_after: int

    def render(self) -> str:
        return render_kv(
            f"Section 4.7 sybil attack (L={self.system_size}, m={self.sybil_count})",
            {
                "victim width before/after": (
                    f"{self.victim_width_before} -> {self.victim_width_after}"
                ),
                "baseline record redundancy": f"{self.baseline_redundancy:.2f}",
                "attacked redundancy (measured)": f"{self.attacked_measured:.2f}",
                "attacked redundancy (Eq. 20)": f"{self.attacked_predicted:.2f}",
            },
        )


def _victim_records(salad: Salad, victim_id: int, count: int, tag: int) -> List[SaladRecord]:
    return [
        SaladRecord(synthetic_fingerprint(8192 + i, tag + i), victim_id)
        for i in range(count)
    ]


def run(
    scale: ExperimentScale,
    sybil_fraction: float = 0.3,
    record_count: int = 400,
    seed: int = 0,
) -> AttackCheckResult:
    system_size = max(scale.machines, 64)
    salad = Salad(SaladConfig(target_redundancy=2.5, seed=seed))
    salad.build(system_size)
    rng = random.Random(seed + 7)
    victim = salad.alive_leaves()[0]
    width_before = victim.width

    # Baseline: victim inserts records before any attack.
    baseline_records = _victim_records(salad, victim.identifier, record_count, 20_000_000)
    salad.insert_records({victim.identifier: baseline_records})
    baseline = measure_record_redundancy(salad, baseline_records)

    # Attack: m sybils vector-aligned with the victim join the SALAD, then
    # provide no service (they inflate the victim's leaf table and estimate
    # of L while silently dropping every record sent to them -- the worst
    # case of section 4.7).
    sybil_count = int(round(system_size * sybil_fraction))
    sybil_ids = craft_attack_identifiers(
        victim.identifier, victim.width, salad.config.dimensions, sybil_count, rng
    )
    sybil_leaves = []
    for sybil_id in sybil_ids:
        if sybil_id not in salad.leaves:
            sybil_leaves.append(salad.add_leaf(identifier=sybil_id))
    for sybil in sybil_leaves:
        sybil.fail()  # stale table entries remain until refresh timeout

    # Victim inserts fresh records under its inflated width.
    attacked_records = _victim_records(salad, victim.identifier, record_count, 30_000_000)
    salad.insert_records({victim.identifier: attacked_records})
    attacked = measure_record_redundancy(salad, attacked_records)

    total = len(salad.leaves)
    predicted = attacked_redundancy(
        actual_redundancy(total, salad.config.target_redundancy),
        sybil_count,
        total,
        salad.config.dimensions,
    )
    return AttackCheckResult(
        system_size=system_size,
        sybil_count=sybil_count,
        baseline_redundancy=baseline,
        attacked_measured=attacked,
        attacked_predicted=predicted,
        victim_width_before=width_before,
        victim_width_after=victim.width,
    )
