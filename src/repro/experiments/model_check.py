"""Analytic-model validation: Eqs. 13, 14, and 17 vs. Monte-Carlo.

Not a numbered figure, but the paper's formulas are quantitative claims; this
experiment measures each against the simulation:

- Eq. 13: mean leaf-table size T;
- Eq. 14: record loss probability P_loss = 1 - (1 - e^-lambda)^D;
- Eq. 17: messages per join fan-out M = D * lambda^(1-1/D) * L^(1/D).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict

from repro.analysis.reporting import render_kv
from repro.core.fingerprint import synthetic_fingerprint
from repro.experiments.scales import ExperimentScale
from repro.salad.model import (
    expected_leaf_table_size,
    join_message_count,
    loss_probability,
)
from repro.salad.records import SaladRecord
from repro.salad.salad import Salad, SaladConfig


@dataclass
class ModelCheckResult:
    system_size: int
    target_redundancy: float
    measured_table_mean: float
    predicted_table_mean: float
    measured_loss: float
    predicted_loss: float
    measured_join_messages: float
    predicted_join_messages: float

    def render(self) -> str:
        return render_kv(
            f"Analytic model vs. simulation (L={self.system_size}, "
            f"Lambda={self.target_redundancy})",
            {
                "leaf table mean (Eq. 13)": (
                    f"measured {self.measured_table_mean:.1f}, "
                    f"predicted {self.predicted_table_mean:.1f}"
                ),
                "record loss (Eq. 14)": (
                    f"measured {self.measured_loss:.3f}, "
                    f"predicted {self.predicted_loss:.3f}"
                ),
                "join messages (Eq. 17)": (
                    f"measured {self.measured_join_messages:.0f}, "
                    f"predicted {self.predicted_join_messages:.0f}"
                ),
            },
        )


def run(
    scale: ExperimentScale,
    target_redundancy: float = 2.0,
    record_count: int = 3000,
    seed: int = 0,
) -> ModelCheckResult:
    system_size = scale.machines
    salad = Salad(SaladConfig(target_redundancy=target_redundancy, seed=seed))

    # Grow the SALAD, measuring join-message traffic over the last half of
    # the growth (Eq. 17 counts join forwards only and is asymptotic in L).
    def join_messages() -> int:
        return sum(
            t.by_kind_sent.get("join", 0) for t in salad.network.traffic.values()
        )

    half = system_size // 2
    salad.build(half)
    messages_before = join_messages()
    salad.build(system_size)
    join_traffic = (join_messages() - messages_before) / (system_size - half)

    # Insert unique records and measure the lost fraction (Eq. 14).
    rng = random.Random(seed + 1)
    leaves = salad.alive_leaves()
    per_leaf: Dict[int, list] = {}
    records = []
    for i in range(record_count):
        leaf = rng.choice(leaves)
        record = SaladRecord(synthetic_fingerprint(4096 + i, 10_000_000 + i), leaf.identifier)
        records.append(record)
        per_leaf.setdefault(leaf.identifier, []).append(record)
    salad.insert_records(per_leaf)
    stored = set()
    for leaf in leaves:
        for record in leaf.database.records():
            stored.add((record.fingerprint, record.location))
    lost = sum(
        1 for record in records if (record.fingerprint, record.location) not in stored
    )

    table_sizes = salad.leaf_table_sizes()
    return ModelCheckResult(
        system_size=system_size,
        target_redundancy=target_redundancy,
        measured_table_mean=sum(table_sizes) / len(table_sizes),
        predicted_table_mean=expected_leaf_table_size(system_size, target_redundancy, 2),
        measured_loss=lost / len(records),
        predicted_loss=loss_probability(target_redundancy, 2, system_size),
        measured_join_messages=join_traffic,
        predicted_join_messages=join_message_count(system_size, target_redundancy, 2),
    )
