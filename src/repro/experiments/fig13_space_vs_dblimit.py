"""Fig. 13: consumed space vs. per-machine database size limit.

Paper findings to reproduce: "A limit of 40,000 records makes no measurable
difference in the consumed space for any Lambda.  For Lambda = 2.5, even
with a limit of 8000 records (an order of magnitude smaller than the mean
database size), the system can still reclaim 38% of used space, compared to
the optimum of 46%."  The eviction policy discards the lowest-fingerprint
(smallest-file) record, so tight limits sacrifice small files first --
mirroring the Fig. 7 threshold result.

Scale note: the paper's x-axis runs 100..100,000 records against a mean
database of ~54,000 records (10.5M files * lambda / 585).  The scaled corpus
has proportionally smaller databases, so limits are expressed as fractions
of the expected mean database size R = lambda * F / L (Eq. 8); the rendered
table shows the absolute record limits used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.reporting import format_bytes, render_table
from repro.experiments.dfc_run import DfcConfig, DfcRun
from repro.experiments.scales import PAPER_LAMBDAS, ExperimentScale
from repro.perf.parallel import parallel_map
from repro.salad.model import expected_records_per_leaf
from repro.workload.corpus import Corpus
from repro.workload.generator import generate_corpus

#: Database limits as fractions of the expected mean database size.
DEFAULT_LIMIT_FRACTIONS = (1 / 16, 1 / 8, 1 / 4, 1 / 2, 1, 2, 4)


@dataclass
class Fig13Result:
    limits: Tuple[int, ...]
    lambdas: Tuple[float, ...]
    consumed: Dict[float, List[int]]
    unlimited_consumed: Dict[float, int]
    expected_mean_records: float

    def consumed_series(self) -> Dict[str, List[int]]:
        return {f"Lambda={lam}": self.consumed[lam] for lam in self.lambdas}

    def render(self) -> str:
        table = render_table(
            "Fig. 13: consumed space vs. database size limit (records)",
            "db limit",
            self.limits,
            self.consumed_series(),
            x_formatter=lambda v: f"{v:,}",
            value_formatter=lambda v: format_bytes(v),
        )
        unlimited = ", ".join(
            f"Lambda={lam}: {format_bytes(v)}" for lam, v in self.unlimited_consumed.items()
        )
        return (
            f"{table}\n"
            f"mean database size (Eq. 8) ~ {self.expected_mean_records:,.0f} records; "
            f"no-limit consumed: {unlimited}"
        )


def _run_one_limit(task):
    """One (Lambda, db-limit) point; limit ``None`` = unlimited baseline.

    Module-level so process pools can pickle it; every point is an
    independent simulation over the shared (read-only) corpus.
    """
    corpus, lam, limit, seed, db_backend, db_dir, shard_workers = task
    run_ = DfcRun(
        corpus,
        DfcConfig(
            target_redundancy=lam,
            database_capacity=limit,
            seed=seed,
            db_backend=db_backend,
            db_dir=db_dir,
            shard_workers=shard_workers,
        ),
    )
    try:
        run_.build()
        run_.insert_all()
        return lam, limit, run_.consumed_bytes()
    finally:
        run_.close()


def run(
    scale: ExperimentScale,
    lambdas: Sequence[float] = PAPER_LAMBDAS,
    limit_fractions: Sequence[float] = DEFAULT_LIMIT_FRACTIONS,
    seed: int = 0,
    corpus: Corpus = None,
    workers: Optional[int] = None,
    db_backend: Optional[str] = None,
    db_dir: Optional[str] = None,
    shard_workers: Optional[int] = None,
) -> Fig13Result:
    """Fig. 13 is *the* capacity-eviction experiment, so it exercises the
    backend eviction paths hardest; ``db_backend``/``db_dir`` select the
    per-leaf store (contract-identical -- consumed space is unchanged), and
    ``shard_workers`` shards each point's SALAD (trace-identical)."""
    if corpus is None:
        corpus = generate_corpus(scale.corpus_spec(), seed=seed)
    file_count = corpus.total_files
    machine_count = len(corpus)
    mean_records = expected_records_per_leaf(machine_count, file_count, 2.0)
    limits = tuple(
        sorted({max(1, int(round(mean_records * frac))) for frac in limit_fractions})
    )
    tasks = [
        (corpus, lam, limit, seed, db_backend, db_dir, shard_workers)
        for lam in lambdas
        for limit in (*limits, None)  # None = the no-limit baseline run
    ]
    results = parallel_map(_run_one_limit, tasks, workers=workers, min_items=2)
    index = {limit: i for i, limit in enumerate(limits)}
    consumed: Dict[float, List[int]] = {lam: [0] * len(limits) for lam in lambdas}
    unlimited: Dict[float, int] = {}
    for lam, limit, bytes_ in results:
        if limit is None:
            unlimited[lam] = bytes_
        else:
            consumed[lam][index[limit]] = bytes_
    return Fig13Result(
        limits=limits,
        lambdas=tuple(lambdas),
        consumed=consumed,
        unlimited_consumed=unlimited,
        expected_mean_records=mean_records,
    )
