"""Ablation: whole-file vs. block-level coalescing on versioned files.

The paper coalesces *whole* identical files; its related work (LBFS [28])
identifies identical portions.  This ablation quantifies the difference on
the workload where it matters: versioned documents -- users' copies of a
shared file that differ by small edits.  Whole-file convergent encryption
reclaims nothing across versions (any edit changes the hash); fixed 64-KB
blocks reclaim the unedited prefix blocks; content-defined chunking reclaims
nearly everything outside the edit, even when the edit shifts bytes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.reporting import format_bytes, render_table
from repro.core.blocks import (
    deduplicated_bytes,
    encrypt_blocks,
    split_content_defined,
    split_fixed,
)
from repro.core.fingerprint import fingerprint_of
from repro.experiments.scales import ExperimentScale
from repro.workload.content import synthetic_content


@dataclass
class BlockAblationResult:
    schemes: Tuple[str, ...]
    logical_bytes: int
    physical_bytes: Dict[str, int]

    def reclaimed_fraction(self, scheme: str) -> float:
        return 1.0 - self.physical_bytes[scheme] / self.logical_bytes

    def render(self) -> str:
        series = {
            "physical": [self.physical_bytes[s] for s in self.schemes],
            "reclaimed %": [round(100 * self.reclaimed_fraction(s), 1) for s in self.schemes],
        }
        table = render_table(
            "Ablation: whole-file vs. block-level coalescing (versioned files)",
            "scheme",
            list(self.schemes),
            series,
            x_formatter=str,
            value_formatter=lambda v: format_bytes(v) if v > 1000 else f"{v}",
        )
        return f"{table}\nlogical bytes: {format_bytes(self.logical_bytes)}"


def _make_versions(
    base_documents: int,
    versions_per_document: int,
    document_size: int,
    edit_size: int,
    rng: random.Random,
) -> List[bytes]:
    """Families of similar files: a base plus versions with one edit each.

    Half the edits are in-place overwrites (byte-aligned, friendly to fixed
    blocks); half are insertions (they shift all downstream bytes, which
    only content-defined chunking survives).
    """
    files: List[bytes] = []
    for doc in range(base_documents):
        base = synthetic_content(1_000_000 + doc, document_size)
        files.append(base)
        for version in range(versions_per_document):
            edit = synthetic_content(2_000_000 + doc * 1000 + version, edit_size)
            position = rng.randrange(0, max(1, len(base) - edit_size))
            if version % 2 == 0:
                edited = base[:position] + edit + base[position + edit_size :]
            else:
                edited = base[:position] + edit + base[position:]  # insertion
            files.append(edited)
    return files


def run(
    scale: ExperimentScale,
    base_documents: int = 8,
    versions_per_document: int = 4,
    document_size: int = 256 * 1024,
    edit_size: int = 2 * 1024,
    seed: int = 0,
) -> BlockAblationResult:
    rng = random.Random(seed)
    files = _make_versions(
        base_documents, versions_per_document, document_size, edit_size, rng
    )
    logical = sum(len(f) for f in files)

    physical: Dict[str, int] = {}

    # Whole-file convergent coalescing (the paper's scheme): distinct files
    # each cost their full size.
    distinct = {}
    for data in files:
        distinct.setdefault(fingerprint_of(data), len(data))
    physical["whole-file"] = sum(distinct.values())

    # Fixed 64-KB blocks (the scanner's granularity), scaled to the document
    # size so there are several blocks per file.
    block_size = max(4096, document_size // 16)
    manifests = [encrypt_blocks(split_fixed(data, block_size))[0] for data in files]
    physical["fixed-block"] = deduplicated_bytes(manifests)[1]

    # Content-defined chunking (LBFS-style).
    manifests = [
        encrypt_blocks(split_content_defined(data, target_size=block_size // 4))[0]
        for data in files
    ]
    physical["content-defined"] = deduplicated_bytes(manifests)[1]

    return BlockAblationResult(
        schemes=("whole-file", "fixed-block", "content-defined"),
        logical_bytes=logical,
        physical_bytes=physical,
    )
