"""Fig. 14: mean leaf table size vs. system size.

Paper findings to reproduce: "The square-root relationship predicted by
Eq. 13 is evident in these curves, as is a periodic variation due to the
discretization of W."  For D = 2 the mean leaf-table size grows as
~2*sqrt(lambda*L), with sawtooth ripples each time the population's cell-ID
width steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.reporting import render_table
from repro.experiments.growth import GrowthResult, growth_sample_points, run_growth_suite
from repro.experiments.scales import PAPER_LAMBDAS, ExperimentScale
from repro.salad.model import expected_leaf_table_size


@dataclass
class Fig14Result:
    system_sizes: Tuple[int, ...]
    lambdas: Tuple[float, ...]
    growth: Dict[float, GrowthResult]

    def mean_series(self) -> Dict[str, List[float]]:
        out: Dict[str, List[float]] = {}
        for lam in self.lambdas:
            out[f"Lambda={lam}"] = [s.mean for s in self.growth[lam].snapshots]
        out["Eq.13 (Lambda=2)"] = [
            expected_leaf_table_size(size, 2.0, 2) for size in self.system_sizes
        ]
        return out

    def render(self) -> str:
        return render_table(
            "Fig. 14: mean leaf table size vs. system size",
            "L",
            self.system_sizes,
            self.mean_series(),
            x_formatter=lambda v: f"{v:,}",
            value_formatter=lambda v: f"{v:,.1f}",
        )


def run(
    scale: ExperimentScale,
    lambdas: Sequence[float] = PAPER_LAMBDAS,
    seed: int = 0,
    growth: Dict[float, GrowthResult] = None,
) -> Fig14Result:
    sample_sizes = growth_sample_points(scale.growth_max_leaves)
    if growth is None:
        growth = run_growth_suite(lambdas, scale.growth_max_leaves, sample_sizes, seed=seed)
    else:
        sample_sizes = [s.system_size for s in growth[lambdas[0]].snapshots]
    return Fig14Result(
        system_sizes=tuple(sample_sizes),
        lambdas=tuple(lambdas),
        growth=growth,
    )
