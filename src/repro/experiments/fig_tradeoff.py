"""fig_tradeoff: the replication x dedup durability/space frontier.

The paper reclaims space by co-locating replicas of identical files so the
per-host Single-Instance Store can coalesce them (problems 3-4).  Farsite
simultaneously replicates every file R times for availability.  Those two
goals fight: co-locating a duplicate group concentrates *all* of its files
onto one canonical R-host set, so a correlated outage of just R machines
destroys the whole group, where the un-coalesced layout loses only the
files that happened to live there.

This experiment charts that tension.  For each R in the sweep (default
1..4) it runs the byte-materializing DFC pipeline twice -- dedup off
(placement only) and dedup on (SALAD discovery + relocation + SIS
coalescing) -- and measures:

- **reclaimed fraction** -- physically coalesced bytes / total bytes;
- **min / mean file availability** -- over the *final* replica hosts,
  using the per-host uptime model (dedup relocations change these);
- **blast radius** -- crash every host of the biggest duplicate group's
  post-relocation replica set (mid-churn: new leaves join during the
  outage), count files with zero surviving replicas, and cross-check the
  measured loss against the analytic at-risk prediction and the outage's
  probability under the availability model;
- **record recovery** -- the crashed leaves rejoin through the
  CrashRecoveryHarness, whose recovered-record fraction must meet the
  store's own durability prediction.

The rendered table is the durability-versus-reclaimed-space frontier the
``tradeoff`` bench section regression-gates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.dfc_run import DfcConfig
from repro.experiments.scales import ExperimentScale
from repro.farsite.dfc_pipeline import DfcPipeline
from repro.obs.registry import MetricsRegistry
from repro.salad.telemetry import harvest_tradeoff_metrics
from repro.sim.failure import CrashRecoveryHarness, measure_replica_loss
from repro.workload.generator import CorpusSpec, generate_corpus

#: Default replication sweep (Farsite's deployments use small R).
DEFAULT_SWEEP = (1, 2, 3, 4)

#: Leaves that join mid-outage, exercising "churn while the set is down".
CHURN_JOINS = 2


@dataclass
class TradeoffPoint:
    """One (replication factor, dedup on/off) arm of the sweep."""

    replication: int
    dedup: bool
    total_bytes: int
    reclaimed_bytes: int
    reclaimed_fraction: float
    min_availability: float
    mean_availability: float
    moved_replicas: int
    copies: int
    shortfall: int
    #: The correlated outage: every host of the kill target crashed at once.
    killed_hosts: int
    #: Files in the targeted duplicate group (the blast-radius denominator).
    group_files: int
    files_at_risk: int  # analytic: replica set within the dead hosts
    files_lost: int  # measured: zero live replicas
    lost_fraction: float
    #: P(this outage) under the per-host availability model.
    loss_event_probability: float
    #: Crashed-store recovery, predicted (durable records) vs measured.
    predicted_recovery: float
    recovered_fraction: float

    @property
    def loss_matches_prediction(self) -> bool:
        return self.files_lost == self.files_at_risk

    @property
    def recovery_meets_prediction(self) -> bool:
        return self.recovered_fraction >= self.predicted_recovery - 1e-12


@dataclass
class FigTradeoffResult:
    machines: int
    files: int
    sweep: Tuple[int, ...]
    points: List[TradeoffPoint]
    metrics: Optional[dict] = field(default=None, metadata={"telemetry": True})

    def point(self, replication: int, dedup: bool) -> TradeoffPoint:
        for p in self.points:
            if p.replication == replication and p.dedup == dedup:
                return p
        raise KeyError(f"no point for R={replication} dedup={dedup}")

    def render(self) -> str:
        lines = [
            "fig_tradeoff: durability vs reclaimed space, replication x dedup",
            f"  machines={self.machines} files={self.files} "
            f"sweep R in {list(self.sweep)}",
            f"  {'R':>2} {'dedup':>5} {'reclaimed':>9} {'minAvail':>8} "
            f"{'meanAvail':>9} {'moved':>5} {'copies':>6} {'lost':>9} "
            f"{'P(outage)':>9} {'recovery':>8}",
        ]
        for p in self.points:
            lines.append(
                f"  {p.replication:>2} {'on' if p.dedup else 'off':>5} "
                f"{p.reclaimed_fraction:>8.1%} {p.min_availability:>8.3f} "
                f"{p.mean_availability:>9.3f} {p.moved_replicas:>5} "
                f"{p.copies:>6} {p.files_lost:>4}/{p.group_files:<4} "
                f"{p.loss_event_probability:>9.2e} {p.recovered_fraction:>7.1%}"
            )
        lines.append(
            "  (lost = files destroyed by crashing the biggest duplicate "
            "group's replica hosts; dedup concentrates the blast radius)"
        )
        return "\n".join(lines)


def _tradeoff_spec(scale: ExperimentScale) -> CorpusSpec:
    """A byte-materializing corpus sized for the pipeline, from *scale*.

    The statistics-only experiments never materialize content; this one
    stores real blobs on every host, so it caps machine/file counts and
    file sizes (results enter the frontier only as fractions).
    """
    return CorpusSpec(
        machines=min(scale.machines, 24),
        mean_files_per_machine=min(scale.mean_files_per_machine, 8.0),
        max_file_size=64 * 1024,
        system_contents=3,
    )


def _biggest_group(pipeline: DfcPipeline) -> Tuple[List[str], List[int]]:
    """The largest duplicate group's files and its top-R replica hosts.

    Groups files by fingerprint over the pipeline's *current* replica map
    (post-relocation when dedup ran); the kill target is the R hosts
    covering the most of the group's replicas -- the same rule the planner
    uses to choose canonical hosts, so with dedup on this is exactly the
    canonical set.
    """
    by_fingerprint: Dict[object, List[str]] = {}
    for file_id, (fingerprint, _) in pipeline.replicas.items():
        by_fingerprint.setdefault(fingerprint, []).append(file_id)
    groups = [files for files in by_fingerprint.values() if len(files) > 1]
    if not groups:
        return [], []
    files = max(groups, key=len)
    coverage: Dict[int, int] = {}
    for file_id in files:
        for host in pipeline.replicas[file_id][1]:
            coverage[host] = coverage.get(host, 0) + 1
    ranked = sorted(coverage, key=lambda h: (-coverage[h], h))
    return files, ranked[: pipeline.config.replication_factor]


def _run_point(
    corpus,
    seed: int,
    replication: int,
    dedup: bool,
    registry: Optional[MetricsRegistry],
) -> TradeoffPoint:
    config = DfcConfig(
        target_redundancy=2.5, seed=seed, replication_factor=replication
    )
    pipeline = DfcPipeline(corpus, config)
    try:
        pipeline.load_hosts()
        plan = None
        if dedup:
            pipeline.discover()
            plan = pipeline.relocate()
        report = pipeline.report(plan)

        # Blast radius: crash every host of the biggest duplicate group's
        # replica set, with churn (new leaves joining) during the outage.
        group_files, kill_hosts = _biggest_group(pipeline)
        harness = CrashRecoveryHarness()
        salad = pipeline.run.salad
        loss = None
        recovery = None
        if kill_hosts:
            harness.crash_replica_sets(salad.leaves, [kill_hosts])
            replica_map = {
                fid: hosts
                for fid, (_, hosts) in pipeline.replicas.items()
                if fid in set(group_files)
            }
            loss = measure_replica_loss(
                replica_map, kill_hosts, pipeline.availability
            )
            for _ in range(CHURN_JOINS):  # churn while the set is down
                salad.add_leaf()
            recovery = harness.rejoin()
        if registry is not None:
            pipeline.collect_metrics(registry)
            harness.collect_metrics(registry)

        return TradeoffPoint(
            replication=replication,
            dedup=dedup,
            total_bytes=report.total_bytes,
            reclaimed_bytes=report.physically_reclaimed,
            reclaimed_fraction=report.reclaimed_fraction,
            min_availability=report.min_availability,
            mean_availability=report.mean_availability,
            moved_replicas=report.migrations,
            copies=report.copies,
            shortfall=report.shortfall,
            killed_hosts=len(kill_hosts),
            group_files=len(group_files),
            files_at_risk=loss.files_at_risk if loss else 0,
            files_lost=loss.files_lost if loss else 0,
            lost_fraction=loss.lost_fraction if loss else 0.0,
            loss_event_probability=(
                loss.loss_event_probability if loss else 0.0
            ),
            predicted_recovery=recovery.predicted_fraction if recovery else 1.0,
            recovered_fraction=recovery.recovered_fraction if recovery else 1.0,
        )
    finally:
        pipeline.close_stores()


def run(
    scale: ExperimentScale,
    seed: int = 0,
    replication: Optional[int] = None,
    sweep: Optional[Sequence[int]] = None,
) -> FigTradeoffResult:
    """Run the tradeoff sweep at *scale*.

    *replication* restricts the sweep to one R (the CLI's
    ``--replication-factor``); *sweep* overrides the default 1..4 list.
    """
    if replication is not None:
        factors: Tuple[int, ...] = (replication,)
    elif sweep is not None:
        factors = tuple(sweep)
    else:
        factors = DEFAULT_SWEEP
    for r in factors:
        if r < 1:
            raise ValueError(f"replication factor must be >= 1: {r}")

    spec = _tradeoff_spec(scale)
    corpus = generate_corpus(spec, seed=seed)
    registry = MetricsRegistry()
    points: List[TradeoffPoint] = []
    for r in factors:
        for dedup in (False, True):
            points.append(_run_point(corpus, seed, r, dedup, registry))
    harvest_tradeoff_metrics(registry, points)
    return FigTradeoffResult(
        machines=spec.machines,
        files=sum(len(m.files) for m in corpus.machines),
        sweep=factors,
        points=points,
        metrics=registry.to_dict(),
    )
