"""fig_topology: dissemination over a LAN/WAN topology under skewed traffic.

The paper's deployment (section 2) is a corporate network of desktops, but
its measurements assume a flat fabric.  This experiment puts the SALAD on a
site/rack topology (:mod:`repro.sim.topology`) and drives it with the
Zipf x Poisson publish stream (:mod:`repro.workload.traffic`), measuring
three things the flat fabric cannot:

- **dissemination quiescence time** -- virtual time from a wave's inserts
  to network quiescence.  With rack/lan/wan latency classes this is no
  longer a message-hop count times a constant; wan hops dominate.
- **per-link-class message load** -- how many messages cross rack, lan,
  and wan links (and how many die when wan links are cut mid-run).
- **hot-duplicate-cluster stress** -- Zipf popularity concentrates equal
  fingerprints into a few cells; the max/mean database-size ratio and the
  share of the hottest cell quantify the resulting hot spots.

Mid-run, the wan links of site 0 are severed for the middle third of the
waves (single-process engine only -- cuts, like partitions, are not
supported under sharding) and healed afterwards, so the drop counters show
what a topology cut costs the dissemination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.experiments.scales import ExperimentScale
from repro.obs.registry import MetricsRegistry
from repro.salad.salad import Salad, SaladConfig
from repro.salad.sharded import make_salad
from repro.sim.topology import Topology, parse_topology
from repro.workload.traffic import SkewedTraffic, TrafficSpec, parse_traffic

#: Link-class table order in the rendered report.
_CLASS_ORDER = ("rack", "lan", "wan")


@dataclass
class FigTopologyResult:
    topology: str
    traffic: str
    leaves: int
    waves: int
    arrivals: int
    records_inserted: int
    #: Per-wave virtual time from insert to quiescence.
    quiescence_times: List[float]
    quiescence_mean: float
    quiescence_max: float
    #: Insert-phase per-class counters: class -> {sent, delivered, dropped}.
    class_messages: Dict[str, Dict[str, int]]
    #: Fraction of insert-phase sends that crossed a wan link.
    wan_share: float
    #: (first wave, last wave) of the site-0 wan cut, or None (sharded runs).
    cut_waves: Optional[Tuple[int, int]]
    #: Messages dropped while the cut was in force.
    dropped_during_cut: int
    #: Share of arrivals hitting the single most-published content.
    hot_content_share: float
    #: max/mean leaf database size after the run (hot-cell stress).
    cell_stress: float
    #: The hottest cell's share of all stored records.
    top_cell_share: float
    metrics: Optional[dict] = field(default=None, metadata={"telemetry": True})

    def render(self) -> str:
        lines = [
            "fig_topology: dissemination over a LAN/WAN topology, skewed traffic",
            f"  topology: {self.topology}",
            f"  traffic:  {self.traffic}",
            f"  leaves={self.leaves} waves={self.waves} "
            f"arrivals={self.arrivals} records inserted={self.records_inserted}",
            f"  quiescence time per wave (virtual): "
            f"mean={self.quiescence_mean:.1f} max={self.quiescence_max:.1f}",
            "  per-link-class message load (insert phase):",
            f"    {'class':<6} {'sent':>10} {'delivered':>10} {'dropped':>10}",
        ]
        for name in _CLASS_ORDER:
            counts = self.class_messages.get(name)
            if counts is None:
                continue
            lines.append(
                f"    {name:<6} {counts['sent']:>10} "
                f"{counts['delivered']:>10} {counts['dropped']:>10}"
            )
        lines.append(f"  wan share of sends: {self.wan_share:.1%}")
        if self.cut_waves is not None:
            lines.append(
                f"  site-0 wan cut over waves {self.cut_waves[0]}-"
                f"{self.cut_waves[1]}: {self.dropped_during_cut} messages dropped"
            )
        lines.append(
            f"  hot content share (top 1 of catalog): {self.hot_content_share:.1%}"
        )
        lines.append(
            f"  cell stress: max/mean db = {self.cell_stress:.1f}x, "
            f"hottest cell holds {self.top_cell_share:.1%} of records"
        )
        return "\n".join(lines)


def _class_counters(engine) -> Dict[str, Dict[str, int]]:
    """Per-class counters, engine-neutral (direct or via merged registries)."""
    network = getattr(engine, "network", None)
    if network is not None:
        return {
            name: {
                "sent": network.class_sent.get(name, 0),
                "delivered": network.class_delivered.get(name, 0),
                "dropped": network.class_dropped.get(name, 0),
            }
            for name in ("rack", "lan", "wan")
        }
    registry = MetricsRegistry()
    engine.collect_metrics(registry)
    out = {
        name: {"sent": 0, "delivered": 0, "dropped": 0}
        for name in ("rack", "lan", "wan")
    }
    for entry in registry.to_dict()["counters"]:
        name = entry["name"]
        if not name.startswith("salad.network.class_"):
            continue
        which = name[len("salad.network.class_"):]
        link_class = entry.get("labels", {}).get("link_class")
        if link_class in out and which in out[link_class]:
            out[link_class][which] = entry["value"]
    return out


def _diff_counters(
    after: Dict[str, Dict[str, int]], before: Dict[str, Dict[str, int]]
) -> Dict[str, Dict[str, int]]:
    return {
        name: {
            key: after[name][key] - before.get(name, {}).get(key, 0)
            for key in after[name]
        }
        for name in after
    }


def run(
    scale: ExperimentScale,
    seed: int = 0,
    topology: Union[Topology, str, None] = None,
    traffic: Union[TrafficSpec, str, None] = None,
    shard_workers: Optional[int] = None,
) -> FigTopologyResult:
    """Run the topology experiment at *scale*.

    *topology* and *traffic* accept CLI spec strings (see
    :func:`repro.sim.topology.parse_topology` and
    :func:`repro.workload.traffic.parse_traffic`), parsed objects, or None
    for the defaults (the corporate preset; the default traffic spec).
    Multi-latency topologies force the single-process engine (the sharded
    barrier cannot window them; ``make_salad`` warns and degrades).
    """
    if not isinstance(topology, Topology):
        topo = parse_topology(topology if topology is not None else "corporate")
        if topo is None:
            raise ValueError("fig_topology needs a topology (got the flat fabric)")
    else:
        topo = topology
    spec = traffic if isinstance(traffic, TrafficSpec) else parse_traffic(traffic)

    config = SaladConfig(seed=seed, topology=topo, shard_workers=shard_workers)
    engine = make_salad(config)
    try:
        engine.build(scale.machines, settle_each=True)
        baseline = _class_counters(engine)
        driver = SkewedTraffic(spec, engine.alive_identifiers(), seed=seed + 1)

        # Cuts need the single-process network (sharding rejects partition
        # mutation), and only make sense with more than one site.
        network = getattr(engine, "network", None)
        can_cut = network is not None and topo.sites > 1
        cut_start = spec.waves // 3
        cut_end = 2 * spec.waves // 3  # exclusive: healed before this wave
        cut_waves: Optional[Tuple[int, int]] = None
        dropped_during_cut = 0
        dropped_at_cut_start = 0

        inserted = 0
        quiescence: List[float] = []
        for wave in range(spec.waves):
            if can_cut and wave == cut_start and cut_end > cut_start:
                network.cut(*topo.wan_links(site=0))
                cut_waves = (cut_start, cut_end - 1)
                dropped_at_cut_start = network.messages_dropped
            if can_cut and wave == cut_end and cut_waves is not None:
                dropped_during_cut = (
                    network.messages_dropped - dropped_at_cut_start
                )
                network.heal()
            start = engine.now
            inserted += engine.insert_records(driver.wave(), settle=True)
            quiescence.append(engine.now - start)
        if can_cut and cut_waves is not None and cut_end >= spec.waves:
            dropped_during_cut = network.messages_dropped - dropped_at_cut_start

        class_messages = _diff_counters(_class_counters(engine), baseline)
        total_sent = sum(counts["sent"] for counts in class_messages.values())
        wan_sent = class_messages.get("wan", {}).get("sent", 0)

        db_sizes = engine.database_sizes()
        total_records = sum(db_sizes) or 1
        mean_db = total_records / len(db_sizes) if db_sizes else 0.0
        max_db = max(db_sizes) if db_sizes else 0

        registry = MetricsRegistry()
        engine.collect_metrics(registry)

        return FigTopologyResult(
            topology=topo.describe(),
            traffic=(
                f"zipf(alpha={spec.zipf_alpha}, contents={spec.contents}) x "
                f"poisson(rate={spec.arrival_rate}), {spec.waves} waves"
            ),
            leaves=scale.machines,
            waves=spec.waves,
            arrivals=driver.arrivals,
            records_inserted=inserted,
            quiescence_times=quiescence,
            quiescence_mean=sum(quiescence) / len(quiescence),
            quiescence_max=max(quiescence),
            class_messages=class_messages,
            wan_share=wan_sent / total_sent if total_sent else 0.0,
            cut_waves=cut_waves,
            dropped_during_cut=dropped_during_cut,
            hot_content_share=driver.hot_share(top=1),
            cell_stress=max_db / mean_db if mean_db else 0.0,
            top_cell_share=max_db / total_records,
            metrics=registry.to_dict(),
        )
    finally:
        engine.shutdown()
