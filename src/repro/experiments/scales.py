"""Experiment scales.

The paper simulates 585 machines holding 10.5M files (~18,000 per machine)
and grows SALADs to 10,000 leaves.  A pure-Python reproduction keeps the
*machine* counts (which drive all the SALAD statistics) and scales the
per-machine *file* counts, which enter every result only through sums and
means.  Three presets:

- ``small``  -- seconds; used by the test suite.
- ``default`` -- tens of seconds per figure; used by the benchmarks.
- ``full``   -- the paper's machine counts (585 / 10,000 leaves); minutes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.workload.generator import CorpusSpec


@dataclass(frozen=True)
class ExperimentScale:
    """Scale knobs shared by all experiments."""

    name: str
    machines: int
    mean_files_per_machine: float
    #: Largest SALAD grown in the Fig. 14 experiment.
    growth_max_leaves: int
    #: System sizes compared in the Fig. 15 CDFs.
    fig15_small: int
    fig15_large: int

    def corpus_spec(self) -> CorpusSpec:
        return CorpusSpec(
            machines=self.machines,
            mean_files_per_machine=self.mean_files_per_machine,
        )


SMALL = ExperimentScale(
    name="small",
    machines=64,
    mean_files_per_machine=20,
    growth_max_leaves=200,
    fig15_small=64,
    fig15_large=200,
)

DEFAULT = ExperimentScale(
    name="default",
    machines=292,
    mean_files_per_machine=40,
    growth_max_leaves=2000,
    fig15_small=292,
    fig15_large=2000,
)

FULL = ExperimentScale(
    name="full",
    machines=585,
    mean_files_per_machine=60,
    growth_max_leaves=10_000,
    fig15_small=585,
    fig15_large=10_000,
)

SCALES: Dict[str, ExperimentScale] = {s.name: s for s in (SMALL, DEFAULT, FULL)}

#: The paper's Lambda sweep (Figs. 7-15 all compare these).
PAPER_LAMBDAS = (1.5, 2.0, 2.5)

#: The paper's minimum-file-size x-axis: 1 B to 1 GB, factor 8 per step.
PAPER_THRESHOLDS = tuple(8**k for k in range(11))  # 1 ... 8^10 = 1 GiB


def get_scale(name: str) -> ExperimentScale:
    try:
        return SCALES[name]
    except KeyError:
        raise KeyError(
            f"unknown scale {name!r}; choose from {sorted(SCALES)}"
        ) from None
