"""Dataset statistics (the in-text table of paper section 5).

Paper: "The scanned systems contain 10,514,105 files in 730,871 directories,
totaling 685 GB of file data.  There were 4,060,748 distinct file contents
totaling 368 GB of file data, implying that coalescing duplicates could
ideally reclaim up to 46% of all consumed space."

This experiment prints the same statistics for the synthetic corpus, whose
*fractions* (not absolute sizes -- the corpus is scaled) should match.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import format_bytes, render_kv
from repro.experiments.scales import ExperimentScale
from repro.workload.corpus import CorpusSummary
from repro.workload.generator import generate_corpus

#: The paper's reference values.
PAPER_MACHINES = 585
PAPER_TOTAL_FILES = 10_514_105
PAPER_TOTAL_BYTES = 685 * 2**30
PAPER_DISTINCT_FILES = 4_060_748
PAPER_DISTINCT_BYTES = 368 * 2**30
PAPER_DUPLICATE_BYTE_FRACTION = 0.46


@dataclass
class DatasetStatsResult:
    summary: CorpusSummary

    def render(self) -> str:
        s = self.summary
        return render_kv(
            "Dataset statistics (paper section 5 in-text; fractions should match)",
            {
                "machines": f"{s.machine_count} (paper {PAPER_MACHINES})",
                "total files": f"{s.total_files:,} (paper {PAPER_TOTAL_FILES:,})",
                "total bytes": f"{format_bytes(s.total_bytes)} (paper 685G)",
                "distinct contents": f"{s.distinct_contents:,} (paper {PAPER_DISTINCT_FILES:,})",
                "distinct bytes": f"{format_bytes(s.distinct_bytes)} (paper 368G)",
                "distinct file fraction": f"{1 - s.duplicate_file_fraction:.3f} (paper 0.386)",
                "duplicate byte fraction": f"{s.duplicate_byte_fraction:.3f} (paper 0.46)",
                "mean file size": f"{format_bytes(s.mean_file_size)} (paper ~65K)",
            },
        )


def run(scale: ExperimentScale, seed: int = 0) -> DatasetStatsResult:
    corpus = generate_corpus(scale.corpus_spec(), seed=seed)
    return DatasetStatsResult(summary=corpus.summary())
