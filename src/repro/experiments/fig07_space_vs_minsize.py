"""Fig. 7: consumed space vs. minimum file size eligible for coalescing.

Paper findings to reproduce:

- the "ideal" and DFC curves are flat for thresholds below ~4 KB (small
  files hold few bytes), then climb toward the un-coalesced total;
- Lambda = 2.5 achieves nearly all possible space reclamation;
- larger Lambda reclaims strictly more than smaller Lambda.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import format_bytes, render_table
from repro.experiments.scales import ExperimentScale
from repro.experiments.threshold_sweep import ThresholdSweepResult, run_threshold_sweep


@dataclass
class Fig07Result:
    sweep: ThresholdSweepResult

    def render(self) -> str:
        return render_table(
            "Fig. 7: consumed space vs. minimum file size for coalescing",
            "min size",
            self.sweep.thresholds,
            self.sweep.consumed_series(),
            x_formatter=lambda v: format_bytes(v),
            value_formatter=lambda v: format_bytes(v),
        )


def run(
    scale: ExperimentScale,
    seed: int = 0,
    sweep: ThresholdSweepResult = None,
) -> Fig07Result:
    if sweep is None:
        sweep = run_threshold_sweep(scale, seed=seed)
    return Fig07Result(sweep=sweep)
