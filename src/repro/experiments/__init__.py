"""Experiments: one module per table/figure of the paper's section 5.

- :mod:`repro.experiments.dfc_run` -- the shared pipeline: corpus -> SALAD
  build -> record insertion -> match collection -> space accounting.
- :mod:`repro.experiments.dataset_stats` -- the in-text dataset statistics.
- :mod:`repro.experiments.threshold_sweep` -- the minimum-file-size sweep
  shared by Figs. 7, 9, 10, 11, and 12.
- :mod:`repro.experiments.fig07_space_vs_minsize` ... fig15 -- per-figure
  result shaping and rendering.
- :mod:`repro.experiments.runner` -- CLI that regenerates everything.
"""

from repro.experiments.dfc_run import DfcConfig, DfcRun

__all__ = ["DfcConfig", "DfcRun"]
