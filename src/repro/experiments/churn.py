"""Churn experiment: DFC effectiveness under continuous join/leave churn.

The paper evaluates static failure snapshots (Fig. 8); desktop fleets churn
*continuously* ("desktop machines are not always on", section 1).  This
extension drives Poisson crash/recovery churn while records are being
inserted, sweeping the per-machine failure rate, and measures how much
duplicate space the DFC still discovers -- the dynamic counterpart of
Fig. 8, exercising the section 4.5 maintenance machinery (refresh,
timeouts, re-introduction) along the way.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.analysis.reporting import render_table
from repro.experiments.dfc_run import DfcConfig, DfcRun
from repro.experiments.scales import ExperimentScale
from repro.salad.maintenance import RefreshDriver
from repro.sim.failure import ChurnSchedule
from repro.workload.corpus import Corpus
from repro.workload.generator import generate_corpus


@dataclass
class ChurnResult:
    rates: Tuple[float, ...]  # failures per machine per time unit
    reclaimed_fraction: Dict[float, float]
    ideal_fraction: float
    entries_flushed: Dict[float, int]

    def render(self) -> str:
        series = {
            "reclaimed %": [
                round(100 * self.reclaimed_fraction[r], 1) for r in self.rates
            ],
            "entries flushed": [self.entries_flushed[r] for r in self.rates],
        }
        table = render_table(
            "Churn: reclaimed space vs. failure rate (with recovery)",
            "fail rate",
            self.rates,
            series,
            x_formatter=lambda r: f"{r:.3f}",
            value_formatter=lambda v: f"{v:,.1f}" if isinstance(v, float) else f"{v:,}",
        )
        return f"{table}\nideal: {100 * self.ideal_fraction:.1f}%"


def run(
    scale: ExperimentScale,
    rates: Sequence[float] = (0.0, 0.005, 0.02, 0.05),
    downtime: float = 30.0,
    horizon: float = 200.0,
    seed: int = 0,
    corpus: Corpus = None,
) -> ChurnResult:
    """Sweep Poisson failure rates; machines recover after *downtime*.

    Records are inserted in batches spread across the horizon, so machines
    fail and recover *during* dissemination; a refresh driver keeps leaf
    tables honest throughout.
    """
    if corpus is None:
        spec = scale.corpus_spec()
        corpus = generate_corpus(spec, seed=seed)
    ideal = corpus.summary().duplicate_byte_fraction

    reclaimed: Dict[float, float] = {}
    flushed: Dict[float, int] = {}
    for index, rate in enumerate(rates):
        # Same seed for every rate: identical corpus, SALAD, and routing, so
        # the sweep isolates the effect of churn alone.
        run_ = DfcRun(corpus, DfcConfig(target_redundancy=2.5, seed=seed))
        run_.build()
        scheduler = run_.salad.network.scheduler
        rng = random.Random(seed + 100 + index)

        if rate > 0:
            churn = ChurnSchedule(scheduler)
            churn.poisson_failures(
                list(run_.salad.leaves.values()),
                rate=rate,
                horizon=horizon,
                rng=rng,
                recover_after=downtime,
            )
        driver = RefreshDriver(run_.salad, period=20.0, timeout=50.0)
        driver.start()

        # Spread the record batches across the churn horizon.
        machines = list(corpus.machines)
        batches = 10
        per_batch = (len(machines) + batches - 1) // batches
        start_time = scheduler.now
        for b in range(batches):
            batch_machines = machines[b * per_batch : (b + 1) * per_batch]
            target_time = start_time + (b + 1) * horizon / batches
            scheduler.run(until=target_time)
            payload = {
                run_.leaf_of_machine[m.machine_index]: run_.records_for_machine(
                    m.machine_index
                )
                for m in batch_machines
            }
            run_.salad.insert_records(payload, settle=False)
        scheduler.run(until=start_time + horizon + 3 * downtime)
        driver.stop()
        run_.salad.network.run()

        reclaimed[rate] = run_.reclaimed_fraction()
        flushed[rate] = driver.stats.entries_flushed

    return ChurnResult(
        rates=tuple(rates),
        reclaimed_fraction=reclaimed,
        ideal_fraction=ideal,
        entries_flushed=flushed,
    )
