"""Fig. 12: CDF of machines by database size (no minimum file size).

Paper findings to reproduce: small coefficients of variation but *bimodal*
distributions -- machines disagree slightly about the system size L, and the
step discontinuity of Eq. 6 turns that into two distinct cell-ID widths,
hence two distinct storage loads ("the differences in storage load among
machines is due primarily to slight variations in machines' estimates of L,
filtered through the step discontinuity in the calculation of W").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.cdf import Cdf, cdf_series
from repro.analysis.reporting import render_table
from repro.experiments.scales import ExperimentScale
from repro.experiments.threshold_sweep import ThresholdSweepResult, run_threshold_sweep

#: The paper's measured coefficients of variation.
PAPER_COV = {1.5: 0.28, 2.0: 0.31, 2.5: 2.4e-5}


@dataclass
class Fig12Result:
    cdfs: Dict[str, Cdf]
    cov: Dict[float, float]

    def bimodality_ratio(self, label: str) -> float:
        """Max adjacent jump between deciles, a crude bimodality signal."""
        cdf = self.cdfs[label]
        deciles = [cdf.quantile(i / 10) for i in range(1, 11)]
        jumps = [b - a for a, b in zip(deciles, deciles[1:])]
        spread = max(deciles) - min(deciles)
        return max(jumps) / spread if spread else 0.0

    def render(self) -> str:
        quantiles = [i / 10 for i in range(1, 11)]
        series = {
            label: [cdf.quantile(q) for q in quantiles]
            for label, cdf in self.cdfs.items()
        }
        table = render_table(
            "Fig. 12: CDF of machines by database size (rows are quantiles)",
            "cum.freq",
            quantiles,
            series,
            x_formatter=lambda q: f"{q:.1f}",
            value_formatter=lambda v: f"{v:,.0f}",
        )
        cov = ", ".join(f"CoV({lam})={val:.3f}" for lam, val in self.cov.items())
        return f"{table}\n{cov} (paper: 0.28, 0.31, ~0)"


def run(
    scale: ExperimentScale,
    seed: int = 0,
    sweep: ThresholdSweepResult = None,
    db_backend: str = None,
    db_dir: str = None,
) -> Fig12Result:
    """``db_backend``/``db_dir`` thread through to the per-leaf record
    stores (used only when this figure runs its own sweep); the backends
    are contract-identical, so the CDFs are backend-independent."""
    if sweep is None:
        sweep = run_threshold_sweep(scale, seed=seed, db_backend=db_backend, db_dir=db_dir)
    samples = {f"Lambda={lam}": sweep.database_sizes[lam] for lam in sweep.lambdas}
    cdfs = cdf_series(samples)
    cov = {lam: Cdf.from_samples(sweep.database_sizes[lam]).cov for lam in sweep.lambdas}
    return Fig12Result(cdfs=cdfs, cov=cov)
