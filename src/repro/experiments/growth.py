"""SALAD growth engine shared by Figs. 14 and 15.

Starts from a singleton SALAD and incrementally adds leaves (section 4.4
joins), snapshotting the distribution of leaf-table sizes at requested
system sizes.  Fig. 14 plots the mean against L; Fig. 15 plots the CDFs at
two particular values of L.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.registry import MetricsRegistry
from repro.perf.parallel import parallel_map
from repro.salad.salad import SaladConfig
from repro.salad.sharded import make_salad


@dataclass
class GrowthSnapshot:
    system_size: int
    leaf_table_sizes: List[int]

    @property
    def mean(self) -> float:
        if not self.leaf_table_sizes:
            return 0.0
        return sum(self.leaf_table_sizes) / len(self.leaf_table_sizes)


@dataclass
class GrowthResult:
    target_redundancy: float
    dimensions: int
    snapshots: List[GrowthSnapshot]
    #: Telemetry registry dump (repro.obs), harvested just before the run's
    #: engine shut down; merge with ``MetricsRegistry.merge_dict``.  Tagged
    #: telemetry: contains wall-clock histograms, so the runner keeps it
    #: out of --json output.
    metrics: Optional[dict] = field(default=None, metadata={"telemetry": True})

    def snapshot_at(self, system_size: int) -> GrowthSnapshot:
        for snap in self.snapshots:
            if snap.system_size == system_size:
                return snap
        raise KeyError(f"no snapshot at system size {system_size}")


def growth_sample_points(max_leaves: int, points: int = 24) -> List[int]:
    """Evenly spaced sample sizes from ~max/points up to max."""
    step = max(1, max_leaves // points)
    sizes = list(range(step, max_leaves + 1, step))
    if sizes[-1] != max_leaves:
        sizes.append(max_leaves)
    return sizes


def run_growth(
    target_redundancy: float,
    max_leaves: int,
    sample_sizes: Sequence[int] = None,
    dimensions: int = 2,
    seed: int = 0,
    shard_workers: Optional[int] = None,
) -> GrowthResult:
    """Grow one SALAD to *max_leaves*, snapshotting leaf-table sizes.

    ``shard_workers`` selects the sub-cube sharded engine (trace-identical
    to single-process on these deterministic workloads; see
    :mod:`repro.salad.sharded`) -- the knob that makes the 100k-leaf
    Fig. 14 target reachable.
    """
    if sample_sizes is None:
        sample_sizes = growth_sample_points(max_leaves)
    wanted = sorted(set(s for s in sample_sizes if s <= max_leaves))
    salad = make_salad(
        SaladConfig(
            target_redundancy=target_redundancy,
            dimensions=dimensions,
            seed=seed,
            shard_workers=shard_workers,
        )
    )
    try:
        snapshots: List[GrowthSnapshot] = []
        for size in wanted:
            salad.build(size)
            snapshots.append(
                GrowthSnapshot(
                    system_size=size, leaf_table_sizes=salad.leaf_table_sizes()
                )
            )
        # Harvest telemetry before shutdown: a dead engine reports nothing.
        registry = MetricsRegistry()
        salad.collect_metrics(registry)
        metrics = registry.to_dict()
    finally:
        salad.shutdown()
    return GrowthResult(
        target_redundancy=target_redundancy,
        dimensions=dimensions,
        snapshots=snapshots,
        metrics=metrics,
    )


def _growth_one(task):
    """One Lambda's growth run (module-level so process pools can pickle it)."""
    lam, max_leaves, sample_sizes, dimensions, seed, shard_workers = task
    return run_growth(lam, max_leaves, sample_sizes, dimensions, seed, shard_workers)


def run_growth_suite(
    lambdas: Sequence[float],
    max_leaves: int,
    sample_sizes: Sequence[int] = None,
    dimensions: int = 2,
    seed: int = 0,
    workers: Optional[int] = None,
    shard_workers: Optional[int] = None,
) -> Dict[float, GrowthResult]:
    """Per-Lambda growth runs; independent, so ``workers`` fans them out.

    ``workers`` and ``shard_workers`` compose safely: inside a pool worker
    the sharded engine cannot spawn children and silently degrades to
    single-process, so the two knobs are alternatives in practice
    (parallelize across Lambdas *or* shard within one big run).
    """
    sizes = tuple(sample_sizes) if sample_sizes is not None else None
    tasks = [
        (lam, max_leaves, sizes, dimensions, seed, shard_workers) for lam in lambdas
    ]
    results = parallel_map(_growth_one, tasks, workers=workers, min_items=2)
    return dict(zip(lambdas, results))
