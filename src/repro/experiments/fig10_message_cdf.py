"""Fig. 10: CDF of machines by message count (no minimum file size).

Paper findings to reproduce: smooth curves with coefficients of variation
CoV(1.5) = 0.64, CoV(2.0) = 0.39, CoV(2.5) = 0.39 -- "machines share the
communication load relatively evenly, especially as Lambda is increased".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.cdf import Cdf, cdf_series
from repro.analysis.reporting import render_table
from repro.experiments.scales import ExperimentScale
from repro.experiments.threshold_sweep import ThresholdSweepResult, run_threshold_sweep

#: The paper's measured coefficients of variation.
PAPER_COV = {1.5: 0.64, 2.0: 0.39, 2.5: 0.39}


@dataclass
class Fig10Result:
    cdfs: Dict[str, Cdf]
    cov: Dict[float, float]

    def render(self) -> str:
        quantiles = [i / 10 for i in range(1, 11)]
        series = {}
        for label, cdf in self.cdfs.items():
            series[label] = [cdf.quantile(q) for q in quantiles]
        table = render_table(
            "Fig. 10: CDF of machines by message count (rows are quantiles)",
            "cum.freq",
            quantiles,
            series,
            x_formatter=lambda q: f"{q:.1f}",
            value_formatter=lambda v: f"{v:,.0f}",
        )
        cov = ", ".join(
            f"CoV({lam})={val:.2f} (paper {PAPER_COV.get(lam, float('nan')):.2f})"
            for lam, val in self.cov.items()
        )
        return f"{table}\n{cov}"


def run(
    scale: ExperimentScale,
    seed: int = 0,
    sweep: ThresholdSweepResult = None,
) -> Fig10Result:
    if sweep is None:
        sweep = run_threshold_sweep(scale, seed=seed)
    samples = {f"Lambda={lam}": sweep.message_totals[lam] for lam in sweep.lambdas}
    cdfs = cdf_series(samples)
    cov = {lam: Cdf.from_samples(sweep.message_totals[lam]).cov for lam in sweep.lambdas}
    return Fig10Result(cdfs=cdfs, cov=cov)
