"""CLI for regenerating every table and figure of the paper's section 5.

Usage::

    repro-experiments --scale default              # everything
    repro-experiments --scale full --only fig07 fig08
    python -m repro.experiments.runner --only dataset fig14

Shared work is reused: Figs. 7, 9, 10, 11, and 12 come from one threshold
sweep per Lambda; Figs. 14 and 15 come from one growth run per Lambda.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from typing import Any, Dict, List

from repro.experiments import (
    ablation_blocks,
    ablation_dimensionality,
    attack_check,
    churn,
    dataset_stats,
    fig07_space_vs_minsize,
    fig08_space_vs_failure,
    fig09_messages_vs_minsize,
    fig10_message_cdf,
    fig11_dbsize_vs_minsize,
    fig12_dbsize_cdf,
    fig13_space_vs_dblimit,
    fig14_leaftable_vs_size,
    fig15_leaftable_cdf,
    fig_topology,
    fig_tradeoff,
    model_check,
)
from repro.experiments.growth import growth_sample_points, run_growth_suite
from repro.obs.registry import MetricsRegistry
from repro.obs.report import build_run_report, print_summary, write_run_report
from repro.obs.spans import reset_spans, span
from repro.perf import set_default_workers
from repro.experiments.scales import PAPER_LAMBDAS, SCALES, get_scale
from repro.experiments.threshold_sweep import run_threshold_sweep
from repro.obs import tracing
from repro.salad.salad import (
    ENVELOPE_CODECS,
    resolve_trace_sample_rate,
    set_detailed_metrics,
    set_envelope_codec,
    set_trace_invariants,
    set_trace_sample_rate,
    validate_shard_workers,
)
from repro.salad.storage import BACKENDS, set_default_db_backend

SWEEP_FIGURES = {"fig07", "fig09", "fig10", "fig11", "fig12"}
GROWTH_FIGURES = {"fig14", "fig15"}
ALL_EXPERIMENTS = [
    "dataset",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig-topology",
    "fig-tradeoff",
    "model",
    "attack",
    "ablation-blocks",
    "ablation-dim",
    "churn",
]


def _jsonable(value: Any) -> Any:
    """Recursively convert an experiment result into JSON-compatible data.

    Dataclasses become dicts, non-string dict keys become strings, bytes
    become hex, and anything else unencodable becomes its repr -- enough to
    persist every result type the experiments produce.

    Fields tagged ``metadata={"telemetry": True}`` are skipped: they carry
    harvested registry dumps for the RunReport, which include wall-clock
    histograms -- machine-dependent data that would break the guarantee
    that ``--json`` output is byte-identical across runs and worker counts.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
            if not f.metadata.get("telemetry")
        }
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def run_experiments_raw(names: List[str], scale_name: str, seed: int = 0) -> Dict[str, Any]:
    """Run the named experiments; returns the raw result object per name."""
    rendered = run_experiments(names, scale_name, seed=seed, raw=True)
    return rendered


def run_experiments(
    names: List[str],
    scale_name: str,
    seed: int = 0,
    raw: bool = False,
    db_backend: str = None,
    db_dir: str = None,
    shard_workers: int = None,
    registry: MetricsRegistry = None,
    topology: str = None,
    traffic: str = None,
    replication_factor: int = None,
) -> Dict[str, Any]:
    """Run the named experiments; returns rendered output (or raw results) per name.

    ``db_backend``/``db_dir`` select the per-leaf record-store backend for
    the database-centric experiments (the shared threshold sweep feeding
    Figs. 7/9-12, and Fig. 13's capacity runs); every backend reports
    identical numbers, the durable ones just bound RAM at full scale.
    ``shard_workers`` runs each simulation on the sub-cube sharded engine
    (repro.salad.sharded) -- trace-identical on the deterministic workloads,
    so every reported number is unchanged; it threads through the growth,
    threshold-sweep, Fig. 8, and Fig. 13 runs.  ``registry`` collects
    telemetry (repro.obs) from the runs that harvest it -- the shared sweep
    and growth engines, and the topology experiment -- for a
    ``--metrics-out`` RunReport.  ``topology``/``traffic`` are the
    fig-topology spec strings (see repro.sim.topology.parse_topology and
    repro.workload.traffic.parse_traffic); other experiments ignore them.
    ``replication_factor`` restricts the fig-tradeoff sweep to one R
    (None = the default 1..4 sweep); other experiments ignore it.
    """
    scale = get_scale(scale_name)
    outputs: Dict[str, Any] = {}

    sweep = None
    if SWEEP_FIGURES & set(names):
        with span("threshold_sweep"):
            sweep = run_threshold_sweep(
                scale,
                seed=seed,
                db_backend=db_backend,
                db_dir=db_dir,
                shard_workers=shard_workers,
            )
        if registry is not None:
            for dump in sweep.metrics.values():
                registry.merge_dict(dump)

    growth = None
    if GROWTH_FIGURES & set(names):
        sample_sizes = sorted(
            set(growth_sample_points(scale.growth_max_leaves))
            | {scale.fig15_small, scale.fig15_large}
        )
        with span("growth_suite"):
            growth = run_growth_suite(
                PAPER_LAMBDAS,
                scale.growth_max_leaves,
                sample_sizes,
                seed=seed,
                shard_workers=shard_workers,
            )
        if registry is not None:
            for result in growth.values():
                if result.metrics:
                    registry.merge_dict(result.metrics)

    for name in names:
        with span(name):
            if name == "dataset":
                result = dataset_stats.run(scale, seed=seed)
            elif name == "fig07":
                result = fig07_space_vs_minsize.run(scale, seed, sweep)
            elif name == "fig08":
                result = fig08_space_vs_failure.run(
                    scale, seed=seed, shard_workers=shard_workers
                )
            elif name == "fig09":
                result = fig09_messages_vs_minsize.run(scale, seed, sweep)
            elif name == "fig10":
                result = fig10_message_cdf.run(scale, seed, sweep)
            elif name == "fig11":
                result = fig11_dbsize_vs_minsize.run(scale, seed, sweep)
            elif name == "fig12":
                result = fig12_dbsize_cdf.run(
                    scale, seed, sweep, db_backend=db_backend, db_dir=db_dir
                )
            elif name == "fig13":
                result = fig13_space_vs_dblimit.run(
                    scale,
                    seed=seed,
                    db_backend=db_backend,
                    db_dir=db_dir,
                    shard_workers=shard_workers,
                )
            elif name == "fig14":
                result = fig14_leaftable_vs_size.run(scale, PAPER_LAMBDAS, seed, growth)
            elif name == "fig15":
                result = fig15_leaftable_cdf.run(scale, PAPER_LAMBDAS, seed, growth)
            elif name == "fig-topology":
                result = fig_topology.run(
                    scale,
                    seed=seed,
                    topology=topology,
                    traffic=traffic,
                    shard_workers=shard_workers,
                )
                if registry is not None and result.metrics:
                    registry.merge_dict(result.metrics)
            elif name == "fig-tradeoff":
                result = fig_tradeoff.run(
                    scale, seed=seed, replication=replication_factor
                )
                if registry is not None and result.metrics:
                    registry.merge_dict(result.metrics)
            elif name == "model":
                result = model_check.run(scale, seed=seed)
            elif name == "attack":
                result = attack_check.run(scale, seed=seed)
            elif name == "ablation-blocks":
                result = ablation_blocks.run(scale, seed=seed)
            elif name == "ablation-dim":
                result = ablation_dimensionality.run(scale, seed=seed)
            elif name == "churn":
                result = churn.run(scale, seed=seed)
            else:
                raise ValueError(f"unknown experiment {name!r}")
        outputs[name] = result if raw else result.render()
    return outputs


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the tables/figures of Douceur et al. (ICDCS 2002)."
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="default",
        help="experiment scale (see repro.experiments.scales)",
    )
    parser.add_argument(
        "--only",
        nargs="+",
        choices=ALL_EXPERIMENTS,
        default=None,
        help="run only these experiments (default: all)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for batch-parallel phases (0 = one per CPU); "
        "results are byte-identical at any worker count",
    )
    parser.add_argument(
        "--shard-workers",
        type=int,
        default=None,
        metavar="N",
        help="shard each SALAD simulation across N worker processes "
        "(power of two; 0 = auto, default: single-process); trace-identical "
        "to the single-process engine, so results are unchanged",
    )
    parser.add_argument(
        "--envelope-codec",
        choices=ENVELOPE_CODECS,
        default=None,
        help="cross-shard envelope wire format for sharded runs (default: "
        "binary, the compact struct-packed codec; pickle reproduces the "
        "pre-codec cost model -- traces are identical either way)",
    )
    parser.add_argument(
        "--db-backend",
        choices=sorted(BACKENDS),
        default="memory",
        help="record-store backend per leaf (memory = all-RAM; sqlite/wal "
        "spill to disk with crash recovery; results are identical)",
    )
    parser.add_argument(
        "--db-dir",
        metavar="DIR",
        default=None,
        help="directory for durable record stores (default: a tempdir)",
    )
    parser.add_argument(
        "--topology",
        metavar="SPEC",
        default=None,
        help="network topology for the fig-topology experiment: a preset "
        "(one-site, campus, corporate) or 'sites=4,racks=2,rack=1,lan=2,"
        "wan=10,quantum=1.0' (default: corporate); other experiments keep "
        "the flat fabric",
    )
    parser.add_argument(
        "--traffic",
        metavar="SPEC",
        default=None,
        help="skewed traffic for the fig-topology experiment: "
        "'alpha=1.1,contents=512,rate=16,waves=20,median=8000,sigma=2.1' "
        "(Zipf popularity x Poisson arrivals; defaults shown)",
    )
    parser.add_argument(
        "--replication-factor",
        type=int,
        default=None,
        metavar="R",
        help="restrict the fig-tradeoff sweep to one replication factor "
        "(default: sweep R in 1..4); other experiments ignore this",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the raw result data (series, not just tables) as JSON",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write a RunReport (repro.obs: merged metrics registry, phase "
        "tree, environment) as JSON and print a summary table on stderr",
    )
    parser.add_argument(
        "--trace-sample-rate",
        type=float,
        default=None,
        metavar="RATE",
        help="causal-trace sampling rate in [0,1] for every simulation the "
        "run builds (deterministic per-record hash; 0 = off, the default); "
        "sampled timelines land in the RunReport's traces section",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write sampled causal traces as Chrome trace-event JSON "
        "(open in Perfetto: ui.perfetto.dev)",
    )
    parser.add_argument(
        "--trace-invariants",
        action="store_true",
        help="run the opt-in invariant tracer inside every simulation and "
        "feed violation counters into the metrics (retains every message "
        "in memory: meant for small/smoke scales)",
    )
    args = parser.parse_args(argv)
    if args.workers < 0:
        parser.error(f"--workers must be >= 0 (0 = auto): {args.workers}")
    if args.replication_factor is not None and args.replication_factor < 1:
        parser.error(
            f"--replication-factor must be >= 1: {args.replication_factor}"
        )
    # Fail fast on malformed topology/traffic specs (the experiment parses
    # them again itself; this just turns typos into argparse errors).
    from repro.sim.topology import parse_topology
    from repro.workload.traffic import parse_traffic

    try:
        parse_topology(args.topology)
        parse_traffic(args.traffic)
    except ValueError as exc:
        parser.error(str(exc))
    if args.shard_workers is not None:
        try:
            validate_shard_workers(args.shard_workers)
        except (TypeError, ValueError) as exc:
            parser.error(str(exc))
    set_default_workers(args.workers)
    if args.envelope_codec is not None:
        set_envelope_codec(args.envelope_codec)
    # Session default so every Salad built anywhere in the run (including
    # experiments that build their own) picks up the chosen backend; the
    # database-centric experiments additionally get it threaded explicitly.
    set_default_db_backend(args.db_backend, args.db_dir)
    set_trace_invariants(args.trace_invariants)
    if args.trace_sample_rate is not None:
        try:
            set_trace_sample_rate(args.trace_sample_rate)
        except (TypeError, ValueError) as exc:
            parser.error(str(exc))
    # Detailed record-flow counters cost hot-path time, so only runs that
    # actually write a report pay for them.
    set_detailed_metrics(bool(args.metrics_out))

    registry = MetricsRegistry() if args.metrics_out else None
    names = args.only or ALL_EXPERIMENTS
    # A CLI run owns the process span buffer: discard anything a previous
    # in-process run left behind (library callers invoking main() twice)
    # so the report's phase tree covers exactly this run.
    reset_spans()
    start = time.time()
    if args.json:
        raw = run_experiments(
            names,
            args.scale,
            seed=args.seed,
            raw=True,
            db_backend=args.db_backend,
            db_dir=args.db_dir,
            shard_workers=args.shard_workers,
            registry=registry,
            topology=args.topology,
            traffic=args.traffic,
            replication_factor=args.replication_factor,
        )
        outputs = {name: result.render() for name, result in raw.items()}
        payload = {
            "scale": args.scale,
            "seed": args.seed,
            "results": {name: _jsonable(result) for name, result in raw.items()},
        }
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=1)
        print(f"raw results written to {args.json}")
    else:
        outputs = run_experiments(
            names,
            args.scale,
            seed=args.seed,
            db_backend=args.db_backend,
            db_dir=args.db_dir,
            shard_workers=args.shard_workers,
            registry=registry,
            topology=args.topology,
            traffic=args.traffic,
            replication_factor=args.replication_factor,
        )
    for name in names:
        print(f"\n{'=' * 72}\n[{name}]")
        print(outputs[name])
    print(f"\ncompleted {len(names)} experiments in {time.time() - start:.1f}s")
    trace_rate = resolve_trace_sample_rate(None)
    trace_events = tracing.take_events() if trace_rate > 0.0 else []
    if args.trace_out:
        out = tracing.export_chrome_trace(trace_events, args.trace_out)
        timelines = tracing.build_timelines(trace_events)
        print(
            f"trace: {len(trace_events)} events across {len(timelines)} "
            f"sampled records written to {out} (open in Perfetto)"
        )
    if args.metrics_out:
        report = build_run_report(
            registry,
            env={
                "scale": args.scale,
                "seed": args.seed,
                "experiments": ",".join(names),
                "workers": args.workers,
                "shard_workers": args.shard_workers,
                "envelope_codec": args.envelope_codec,
                "db_backend": args.db_backend,
                "topology": args.topology,
                "traffic": args.traffic,
                "trace_invariants": args.trace_invariants or None,
            },
            traces=(
                {"sample_rate": trace_rate, "events": trace_events}
                if trace_rate > 0.0
                else None
            ),
        )
        write_run_report(args.metrics_out, report)
        print_summary(report)
        print(f"run report written to {args.metrics_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
