"""The minimum-file-size threshold sweep shared by Figs. 7, 9, 10, 11, 12.

One DFC run per Lambda: build a SALAD of all machines, then insert file
records in descending size buckets, snapshotting after each bucket.  The
snapshot after inserting all files of size >= t equals an independent run
with minimum-coalescing-size t, so a single pass yields every threshold
point of Figs. 7 (consumed space), 9 (mean messages), and 11 (mean database
size); the final state (threshold 1, i.e. no threshold) provides the CDFs of
Figs. 10 and 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.dfc_run import DfcConfig, DfcRun, SweepPoint
from repro.experiments.scales import PAPER_LAMBDAS, PAPER_THRESHOLDS, ExperimentScale
from repro.obs.registry import MetricsRegistry
from repro.perf.parallel import parallel_map
from repro.workload.corpus import Corpus, CorpusSummary
from repro.workload.generator import generate_corpus


@dataclass
class ThresholdSweepResult:
    """Everything Figs. 7 and 9-12 need, for one corpus across Lambdas."""

    corpus_summary: CorpusSummary
    thresholds: Tuple[int, ...]
    lambdas: Tuple[float, ...]
    #: per-Lambda sweep points, ascending threshold order.
    points: Dict[float, List[SweepPoint]]
    #: per-Lambda, per-machine total message counts at no threshold.
    message_totals: Dict[float, List[int]]
    #: per-Lambda, per-machine database sizes at no threshold.
    database_sizes: Dict[float, List[int]]
    #: per-Lambda telemetry registry dump (repro.obs), harvested just before
    #: each run's engine shut down.  Merge into a session registry with
    #: ``MetricsRegistry.merge_dict``.  Tagged telemetry: contains
    #: wall-clock histograms, so the runner keeps it out of --json output.
    metrics: Dict[float, dict] = field(
        default_factory=dict, metadata={"telemetry": True}
    )

    @property
    def ideal_consumed(self) -> List[int]:
        """The "ideal" series of Fig. 7 (same for every Lambda)."""
        any_lambda = self.lambdas[0]
        return [p.ideal_consumed_bytes for p in self.points[any_lambda]]

    def consumed_series(self) -> Dict[str, List[int]]:
        out: Dict[str, List[int]] = {"ideal": self.ideal_consumed}
        for lam in self.lambdas:
            out[f"Lambda={lam}"] = [p.consumed_bytes for p in self.points[lam]]
        return out

    def message_series(self) -> Dict[str, List[float]]:
        return {
            f"Lambda={lam}": [p.mean_messages for p in self.points[lam]]
            for lam in self.lambdas
        }

    def database_series(self) -> Dict[str, List[float]]:
        return {
            f"Lambda={lam}": [p.mean_database_records for p in self.points[lam]]
            for lam in self.lambdas
        }


def _sweep_one_lambda(task):
    """One Lambda's full DFC run (module-level so process pools can pickle it)."""
    corpus, lam, thresholds, seed, db_backend, db_dir, shard_workers = task
    run = DfcRun(
        corpus,
        DfcConfig(
            target_redundancy=lam,
            seed=seed,
            db_backend=db_backend,
            db_dir=db_dir,
            shard_workers=shard_workers,
        ),
    )
    try:
        run.build()
        points = run.insert_sweep(list(thresholds))
        # Harvest telemetry before close(): a shut-down engine reports nothing.
        registry = MetricsRegistry()
        run.collect_metrics(registry)
        return lam, points, run.message_totals(), run.database_sizes(), registry.to_dict()
    finally:
        run.close()


def run_threshold_sweep(
    scale: ExperimentScale,
    lambdas: Sequence[float] = PAPER_LAMBDAS,
    thresholds: Sequence[int] = PAPER_THRESHOLDS,
    seed: int = 0,
    corpus: Corpus = None,
    workers: Optional[int] = None,
    db_backend: Optional[str] = None,
    db_dir: Optional[str] = None,
    shard_workers: Optional[int] = None,
) -> ThresholdSweepResult:
    """Run the sweep at the given scale (shared by Figs. 7, 9, 10, 11, 12).

    The per-Lambda runs are independent simulations (each builds its own
    SALAD from the shared corpus), so with ``workers`` they fan out across a
    process pool; results are identical to the serial loop in any mode.
    ``db_backend``/``db_dir`` select the per-leaf record-store backend
    (contract-identical, so every reported number is unchanged; the durable
    backends bound RAM at full scale).  ``shard_workers`` shards each
    SALAD across processes (repro.salad.sharded; trace-identical, so also
    number-preserving) -- when both knobs are set, pool workers are daemonic
    and the sharded engine degrades to single-process inside them.
    """
    if corpus is None:
        corpus = generate_corpus(scale.corpus_spec(), seed=seed)
    tasks = [
        (corpus, lam, tuple(thresholds), seed, db_backend, db_dir, shard_workers)
        for lam in lambdas
    ]
    results = parallel_map(_sweep_one_lambda, tasks, workers=workers, min_items=2)
    points: Dict[float, List[SweepPoint]] = {}
    message_totals: Dict[float, List[int]] = {}
    database_sizes: Dict[float, List[int]] = {}
    metrics: Dict[float, dict] = {}
    for lam, pts, totals, sizes, registry_dump in results:
        points[lam] = pts
        message_totals[lam] = totals
        database_sizes[lam] = sizes
        metrics[lam] = registry_dump
    return ThresholdSweepResult(
        corpus_summary=corpus.summary(),
        thresholds=tuple(sorted(set(thresholds))),
        lambdas=tuple(lambdas),
        points=points,
        message_totals=message_totals,
        database_sizes=database_sizes,
        metrics=metrics,
    )
