"""The flagship-scale SALAD run: 10^5 leaves, ~10^6 records, bounded RSS.

Section 5 of the paper simulates a 10^5-machine deployment; this driver is
the repo's equivalent stress run, exercising every flagship-path
optimization at once:

- **amortized width maintenance** (the leaf's incrementally maintained
  survivor partition -- zero ``survivor_scans``) plus **deferred width
  recalculation** (Fig. 6 coalesced to settle-round boundaries during the
  bulk-join growth storm; opt-out via ``--eager-width``);
- the **paging WAL backend** (``--db-backend wal-paged``), which keeps
  record bodies on disk behind a key->offset index and a small LRU, so
  peak RSS stays bounded while a million records accumulate;
- the **sub-cube sharded engine** (``--shard-workers``), whose per-worker
  phase trees land in the RunReport's ``shards[*].phases``.

Growth runs in geometric stages and insert in waves, each under its own
span, so the report shows where the wall-clock went at every scale step.
The environment block records the peak RSS of the driver and (for sharded
runs) its reaped workers, plus the actual scale reached -- the committed
report at ``docs/flagship_report.json`` is regenerated with this CLI.

Usage::

    python -m repro.experiments.flagship --smoke --metrics-out smoke.json
    python -m repro.experiments.flagship --db-backend wal-paged \
        --shard-workers 4 --metrics-out docs/flagship_report.json
"""

from __future__ import annotations

import argparse
import resource
import sys
import time
from typing import Dict, List, Optional

from repro.core.fingerprint import Fingerprint
from repro.obs import tracing
from repro.obs.registry import MetricsRegistry
from repro.obs.report import build_run_report, print_summary, write_run_report
from repro.obs.spans import phase, reset_spans, span
from repro.salad.records import SaladRecord
from repro.salad.salad import (
    ENVELOPE_CODECS,
    SaladConfig,
    resolve_trace_sample_rate,
    set_detailed_metrics,
    set_envelope_codec,
    set_trace_sample_rate,
    validate_shard_workers,
)
from repro.salad.sharded import make_salad
from repro.salad.storage import BACKENDS

FULL_LEAVES = 100_000
FULL_RECORDS = 1_000_000
SMOKE_LEAVES = 96
SMOKE_RECORDS = 960

#: Leaves per insert_records call: bounds the coordinator-side record batch
#: (and its pickled envelope to shard workers) regardless of system size.
CHUNK_LEAVES = 4096


def growth_stages(target: int, first: int = 1000) -> List[int]:
    """Geometric growth checkpoints: first, 2*first, ... , target."""
    stages = []
    size = min(first, target)
    while size < target:
        stages.append(size)
        size *= 2
    stages.append(target)
    return stages


def _wave_records(
    identifiers: List[int], wave: int, per_leaf: int, pool: int
) -> Dict[int, List[SaladRecord]]:
    """Deterministic synthetic records: wave x leaf -> per_leaf records.

    Content ids are drawn from a pool of ``pool`` values by a cheap integer
    hash, so duplicate groups form across leaves (the MATCH traffic the
    paper's workload is about) without any RNG state to keep in sync.
    """
    by_leaf: Dict[int, List[SaladRecord]] = {}
    for identifier in identifiers:
        records = []
        for i in range(per_leaf):
            content = ((identifier * 2654435761 + wave * 40503 + i) ^ 0x9E3779B9) % pool
            fingerprint = Fingerprint(
                size=1024 + content, content_digest=content.to_bytes(20, "big")
            )
            records.append(SaladRecord(fingerprint=fingerprint, location=identifier))
        by_leaf[identifier] = records
    return by_leaf


def run_flagship(
    leaves: int,
    records: int,
    seed: int = 0,
    db_backend: Optional[str] = "wal-paged",
    db_dir: Optional[str] = None,
    shard_workers: Optional[int] = None,
    eager_width: bool = False,
    reference_width: bool = False,
    registry: Optional[MetricsRegistry] = None,
) -> dict:
    """Grow to *leaves*, insert ~*records*; returns run facts for the report.

    The return dict carries the observables the committed report and the
    bench section read: wall-clock per phase comes from the span tree (not
    from here), worker phase trees ride on ``"worker_phases"``.
    """
    config = SaladConfig(
        dimensions=2,
        seed=seed,
        db_backend=db_backend,
        db_dir=db_dir,
        shard_workers=shard_workers,
        reference_width=reference_width,
        deferred_width_recalc=not eager_width and not reference_width,
        detailed_metrics=registry is not None,
    )
    sim = make_salad(config)
    per_leaf = max(1, records // leaves)
    waves = min(per_leaf, 4)
    pool = max(records // 4, 16)  # ~4 copies per content => duplicate groups
    try:
        with phase("growth") as growth_span:
            for stage in growth_stages(leaves):
                with span(f"grow_to_{stage}", ops=stage):
                    sim.build(stage)
                tracing.heartbeat("growth", leaves=stage)
            growth_span.set_ops(leaves)

        inserted_total = 0
        with phase("insert") as insert_span:
            identifiers = sorted(sim.alive_identifiers())
            base, extra = divmod(per_leaf, waves)
            for wave in range(waves):
                count = base + (1 if wave < extra else 0)
                if count == 0:
                    continue
                with span(f"wave_{wave}") as wave_span:
                    wave_inserted = 0
                    for start in range(0, len(identifiers), CHUNK_LEAVES):
                        chunk = identifiers[start : start + CHUNK_LEAVES]
                        batch = _wave_records(chunk, wave, count, pool)
                        wave_inserted += sim.insert_records(batch)
                    wave_span.set_ops(wave_inserted)
                inserted_total += wave_inserted
                tracing.heartbeat(
                    "insert", wave=wave, inserted_total=inserted_total
                )
            insert_span.set_ops(inserted_total)

        with phase("harvest"):
            if registry is None:
                registry = MetricsRegistry()
            # Salad returns the registry; ShardedSimulation returns the
            # per-worker registry dumps (already merged into *registry*).
            harvested = sim.collect_metrics(registry)
            facts = {
                "leaves": leaves,
                "alive_leaves": sim.alive_count(),
                "records_requested": records,
                "records_inserted": inserted_total,
                "total_stored": sim.total_stored_records(),
                "widths": sim.width_distribution(),
                "worker_phases": list(getattr(sim, "worker_phases", []) or []),
                "shard_dumps": harvested if isinstance(harvested, list) else None,
                # Single-process: the engine's recorder drains here.
                # Sharded: workers drained theirs into the metrics reply and
                # the coordinator accumulated them; drain so close() does
                # not re-adopt the same events into the orphan buffer.
                "trace_events": tracing.take_events()
                + (
                    sim.take_trace_events()
                    if hasattr(sim, "take_trace_events")
                    else []
                ),
            }
    finally:
        sim.shutdown()
    return facts


def _peak_rss_mib(who: int) -> float:
    # ru_maxrss is KiB on Linux.
    return resource.getrusage(who).ru_maxrss / 1024.0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Flagship-scale SALAD run (growth + insert, full telemetry)."
    )
    parser.add_argument("--leaves", type=int, default=FULL_LEAVES)
    parser.add_argument("--records", type=int, default=FULL_RECORDS)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI tier: {SMOKE_LEAVES} leaves / {SMOKE_RECORDS} records "
        "(overrides --leaves/--records)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--db-backend",
        choices=sorted(BACKENDS),
        default="wal-paged",
        help="record-store backend per leaf (default: wal-paged, the backend "
        "that bounds peak RSS at this scale)",
    )
    parser.add_argument("--db-dir", metavar="DIR", default=None)
    parser.add_argument(
        "--shard-workers",
        type=int,
        default=None,
        metavar="N",
        help="shard across N worker processes (power of two; 0 = auto); "
        "per-worker phase trees land in the report's shards section",
    )
    parser.add_argument(
        "--envelope-codec",
        choices=ENVELOPE_CODECS,
        default=None,
        help="cross-shard envelope wire format (default: binary; pickle "
        "reproduces the pre-codec cost model for comparison runs)",
    )
    parser.add_argument(
        "--eager-width",
        action="store_true",
        help="disable deferred width recalculation (the flagship default "
        "coalesces Fig. 6 runs to settle-round boundaries)",
    )
    parser.add_argument(
        "--reference-width",
        action="store_true",
        help="commit width changes via the full-table survivor scan (the "
        "pre-change oracle path; implies --eager-width)",
    )
    parser.add_argument("--metrics-out", metavar="PATH", default=None)
    parser.add_argument(
        "--trace-sample-rate",
        type=float,
        default=None,
        metavar="RATE",
        help="causal-trace sampling rate in [0,1]: a deterministic hash of "
        "each record's routing id selects the sampled fraction (0 = off; "
        "sampling never perturbs the simulated message trace)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write sampled causal traces as Chrome trace-event JSON "
        "(open in Perfetto: ui.perfetto.dev)",
    )
    parser.add_argument(
        "--flight-recorder",
        metavar="PATH",
        default=None,
        help="append heartbeat + recent-trace-event JSONL here during the "
        "run (watch live with `python -m repro.obs tail PATH`)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.leaves, args.records = SMOKE_LEAVES, SMOKE_RECORDS
    if args.leaves < 1 or args.records < 1:
        parser.error("--leaves and --records must be positive")
    if args.shard_workers is not None:
        try:
            validate_shard_workers(args.shard_workers)
        except (TypeError, ValueError) as exc:
            parser.error(str(exc))
    set_detailed_metrics(bool(args.metrics_out))
    if args.envelope_codec is not None:
        set_envelope_codec(args.envelope_codec)
    if args.trace_sample_rate is not None:
        try:
            set_trace_sample_rate(args.trace_sample_rate)
        except (TypeError, ValueError) as exc:
            parser.error(str(exc))
    if args.flight_recorder:
        tracing.install_flight_recorder(args.flight_recorder)

    registry = MetricsRegistry() if args.metrics_out else None
    # A CLI run owns the process span buffer: discard anything a previous
    # in-process run left behind so the report covers exactly this run.
    reset_spans()
    start = time.time()
    facts = run_flagship(
        args.leaves,
        args.records,
        seed=args.seed,
        db_backend=args.db_backend,
        db_dir=args.db_dir,
        shard_workers=args.shard_workers,
        eager_width=args.eager_width,
        reference_width=args.reference_width,
        registry=registry,
    )
    elapsed = time.time() - start
    print(
        f"flagship: {facts['alive_leaves']:,} leaves, "
        f"{facts['records_inserted']:,} records inserted "
        f"({facts['total_stored']:,} stored) in {elapsed:.1f}s"
    )
    trace_rate = resolve_trace_sample_rate(None)
    trace_events = facts["trace_events"]
    if args.flight_recorder:
        tracing.heartbeat(
            "done",
            leaves=facts["alive_leaves"],
            records_inserted=facts["records_inserted"],
            wall_seconds=round(elapsed, 2),
        )
        tracing.uninstall_flight_recorder()
    if args.trace_out:
        out = tracing.export_chrome_trace(trace_events, args.trace_out)
        timelines = tracing.build_timelines(trace_events)
        print(
            f"trace: {len(trace_events)} events across {len(timelines)} "
            f"sampled records written to {out} (open in Perfetto)"
        )
    if args.metrics_out:
        report = build_run_report(
            registry,
            env={
                "experiment": "flagship",
                "scale": "smoke" if args.smoke else "full",
                "leaves": facts["alive_leaves"],
                "records_inserted": facts["records_inserted"],
                "seed": args.seed,
                "db_backend": args.db_backend,
                "shard_workers": args.shard_workers,
                "envelope_codec": args.envelope_codec,
                "deferred_width_recalc": not args.eager_width
                and not args.reference_width,
                "reference_width": args.reference_width or None,
                "wall_seconds": elapsed,
                "peak_rss_mib": round(_peak_rss_mib(resource.RUSAGE_SELF), 1),
                "children_peak_rss_mib": round(
                    _peak_rss_mib(resource.RUSAGE_CHILDREN), 1
                ),
            },
            shards=facts["shard_dumps"],
            shard_phases=facts["worker_phases"] or None,
            traces=(
                {"sample_rate": trace_rate, "events": trace_events}
                if trace_rate > 0.0
                else None
            ),
        )
        write_run_report(args.metrics_out, report)
        print_summary(report)
        print(f"run report written to {args.metrics_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
