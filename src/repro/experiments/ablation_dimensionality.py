"""Ablation: the SALAD dimensionality trade-off (sections 4.3 and 4.7).

The paper's guidance: "not only does increasing a SALAD's dimensionality
increase the loss probability for a given redundancy factor (Eq. 14), but
also it increases the susceptibility of the system to attack.  We therefore
suggest constructing a SALAD with a dimensionality no higher than that
needed to achieve leaf tables of a manageably small size."

This ablation sweeps D and measures the three sides of the trade:

- mean leaf table size (falls with D: O(D * lambda^(1-1/D) * L^(1/D)));
- record loss probability (rises with D: ~ D * e^-lambda);
- record insertion traffic (routing takes up to D hops).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.reporting import render_table
from repro.core.fingerprint import synthetic_fingerprint
from repro.experiments.scales import ExperimentScale
from repro.salad.model import expected_leaf_table_size, loss_probability
from repro.salad.records import SaladRecord
from repro.salad.salad import Salad, SaladConfig


@dataclass
class DimensionalityResult:
    dimensions: Tuple[int, ...]
    system_size: int
    target_redundancy: float
    mean_leaf_table: Dict[int, float]
    predicted_leaf_table: Dict[int, float]
    measured_loss: Dict[int, float]
    predicted_loss: Dict[int, float]
    record_messages: Dict[int, float]

    def render(self) -> str:
        series = {
            "leaf table": [self.mean_leaf_table[d] for d in self.dimensions],
            "table (Eq.13)": [self.predicted_leaf_table[d] for d in self.dimensions],
            "loss": [round(self.measured_loss[d], 3) for d in self.dimensions],
            "loss (Eq.14)": [round(self.predicted_loss[d], 3) for d in self.dimensions],
            "msgs/record": [round(self.record_messages[d], 1) for d in self.dimensions],
        }
        return render_table(
            f"Ablation: dimensionality trade-off (L={self.system_size}, "
            f"Lambda={self.target_redundancy})",
            "D",
            self.dimensions,
            series,
            x_formatter=str,
            value_formatter=lambda v: f"{v:,.3g}",
        )


def run(
    scale: ExperimentScale,
    dimensions: Sequence[int] = (1, 2, 3),
    target_redundancy: float = 2.5,
    record_count: int = 1500,
    seed: int = 0,
) -> DimensionalityResult:
    system_size = scale.machines
    mean_table: Dict[int, float] = {}
    predicted_table: Dict[int, float] = {}
    measured_loss: Dict[int, float] = {}
    predicted_loss: Dict[int, float] = {}
    record_messages: Dict[int, float] = {}

    for d in dimensions:
        salad = Salad(
            SaladConfig(target_redundancy=target_redundancy, dimensions=d, seed=seed)
        )
        salad.build(system_size)
        sizes = salad.leaf_table_sizes()
        mean_table[d] = sum(sizes) / len(sizes)
        predicted_table[d] = expected_leaf_table_size(system_size, target_redundancy, d)
        predicted_loss[d] = loss_probability(target_redundancy, d, system_size)

        rng = random.Random(seed + 1)
        leaves = salad.alive_leaves()
        records: List[SaladRecord] = []
        batches: Dict[int, List[SaladRecord]] = {}
        for i in range(record_count):
            leaf = rng.choice(leaves)
            record = SaladRecord(
                synthetic_fingerprint(4096 + i, 50_000_000 * d + i), leaf.identifier
            )
            records.append(record)
            batches.setdefault(leaf.identifier, []).append(record)
        before = salad.network.messages_sent
        salad.insert_records(batches)
        record_messages[d] = (salad.network.messages_sent - before) / record_count

        stored = set()
        for leaf in leaves:
            for record in leaf.database.records():
                stored.add((record.fingerprint, record.location))
        lost = sum(
            1 for r in records if (r.fingerprint, r.location) not in stored
        )
        measured_loss[d] = lost / record_count

    return DimensionalityResult(
        dimensions=tuple(dimensions),
        system_size=system_size,
        target_redundancy=target_redundancy,
        mean_leaf_table=mean_table,
        predicted_leaf_table=predicted_table,
        measured_loss=measured_loss,
        predicted_loss=predicted_loss,
        record_messages=record_messages,
    )
