"""Fig. 15: CDF of machines by leaf table size, at two system sizes.

Paper findings to reproduce:

- at Lambda = 1.5 a small but significant fraction of machines have nearly
  empty leaf tables (join lossiness);
- for larger Lambda the curves are tight (close agreement about L);
- at Lambda = 2.5, L = 10,000, lg(L/Lambda) sits near an integer, so leaves'
  slightly different estimates of L straddle the Eq. 6 step and the
  distribution goes bimodal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.analysis.cdf import Cdf
from repro.analysis.reporting import render_table
from repro.experiments.growth import GrowthResult, run_growth_suite
from repro.experiments.scales import PAPER_LAMBDAS, ExperimentScale


@dataclass
class Fig15Result:
    small_size: int
    large_size: int
    lambdas: Tuple[float, ...]
    cdfs_small: Dict[float, Cdf]
    cdfs_large: Dict[float, Cdf]

    def nearly_empty_fraction(self, lam: float, which: str = "small", below: int = 5) -> float:
        cdf = (self.cdfs_small if which == "small" else self.cdfs_large)[lam]
        return cdf.at(below)

    def _render_one(self, title: str, cdfs: Dict[float, Cdf]) -> str:
        quantiles = [i / 10 for i in range(1, 11)]
        series = {
            f"Lambda={lam}": [cdf.quantile(q) for q in quantiles]
            for lam, cdf in cdfs.items()
        }
        return render_table(
            title,
            "cum.freq",
            quantiles,
            series,
            x_formatter=lambda q: f"{q:.1f}",
            value_formatter=lambda v: f"{v:,.0f}",
        )

    def render(self) -> str:
        a = self._render_one(
            f"Fig. 15a: CDF of machines by leaf table size (L={self.small_size})",
            self.cdfs_small,
        )
        b = self._render_one(
            f"Fig. 15b: CDF of machines by leaf table size (L={self.large_size})",
            self.cdfs_large,
        )
        empty = ", ".join(
            f"Lambda={lam}: {self.nearly_empty_fraction(lam):.1%}"
            for lam in self.lambdas
        )
        return f"{a}\n\n{b}\nnearly-empty tables at L={self.small_size}: {empty}"


def run(
    scale: ExperimentScale,
    lambdas: Sequence[float] = PAPER_LAMBDAS,
    seed: int = 0,
    growth: Dict[float, GrowthResult] = None,
) -> Fig15Result:
    small, large = scale.fig15_small, scale.fig15_large
    if growth is None:
        growth = run_growth_suite(
            lambdas, large, sample_sizes=[small, large], seed=seed
        )
    cdfs_small: Dict[float, Cdf] = {}
    cdfs_large: Dict[float, Cdf] = {}
    for lam in lambdas:
        result = growth[lam]
        cdfs_small[lam] = Cdf.from_samples(result.snapshot_at(small).leaf_table_sizes)
        cdfs_large[lam] = Cdf.from_samples(result.snapshot_at(large).leaf_table_sizes)
    return Fig15Result(
        small_size=small,
        large_size=large,
        lambdas=tuple(lambdas),
        cdfs_small=cdfs_small,
        cdfs_large=cdfs_large,
    )
