"""Fig. 8: consumed space vs. machine failure probability.

The paper "tested the resilience of the DFC system to machine failure by
randomly failing the simulated machines", with the headline "With
Lambda = 2.5, even when machines fail half of the time, the system can still
reclaim 38% of used space, comparing favorably to the optimal value of 46%."

Failure model: desktops "fail half of the time" in the duty-cycle sense --
each message is lost with probability p because its recipient is down at
delivery time.  (Permanently crashing a p-fraction of machines cannot match
Fig. 8: the dead machines' own files would cap reclaim at ~23% for p = 0.5.)
The :func:`run_crash_ablation` variant measures that harsher model too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.reporting import format_bytes, render_table
from repro.experiments.dfc_run import DfcConfig, DfcRun
from repro.experiments.scales import PAPER_LAMBDAS, ExperimentScale
from repro.perf.parallel import parallel_map
from repro.workload.corpus import Corpus
from repro.workload.generator import generate_corpus

#: The paper's x-axis: failure probabilities 0 to 0.9.
PAPER_FAILURE_PROBABILITIES = tuple(i / 10 for i in range(10))


@dataclass
class Fig08Result:
    probabilities: Tuple[float, ...]
    lambdas: Tuple[float, ...]
    consumed: Dict[float, List[int]]  # per Lambda
    total_bytes: int
    reclaimed_at_half: Dict[float, float]  # reclaimed fraction at p = 0.5

    def consumed_series(self) -> Dict[str, List[int]]:
        return {f"Lambda={lam}": self.consumed[lam] for lam in self.lambdas}

    def render(self) -> str:
        table = render_table(
            "Fig. 8: consumed space vs. machine failure probability",
            "p(fail)",
            self.probabilities,
            self.consumed_series(),
            x_formatter=lambda p: f"{p:.1f}",
            value_formatter=lambda v: format_bytes(v),
        )
        extra = ", ".join(
            f"Lambda={lam}: {frac:.0%}" for lam, frac in self.reclaimed_at_half.items()
        )
        return f"{table}\nreclaimed at p=0.5 (paper: 38% at Lambda=2.5): {extra}"


def _run_one_point(task):
    """One (Lambda, p) simulation point (module-level for process pools).

    Each point is a fully independent DFC run, so the whole lambdas x
    probabilities grid fans out across workers without any shared state.
    """
    corpus, lam, i, p, seed, crash, shard_workers = task
    run_ = DfcRun(
        corpus,
        DfcConfig(target_redundancy=lam, seed=seed + i, shard_workers=shard_workers),
    )
    try:
        run_.build()
        if crash:
            run_.crash_machines(p)
        else:
            run_.set_failure_probability(p)
        run_.insert_all()
        return lam, i, run_.consumed_bytes(), run_.reclaimed_fraction()
    finally:
        run_.close()


def _run_grid(
    corpus: Corpus,
    lambdas: Sequence[float],
    probabilities: Sequence[float],
    seed: int,
    crash: bool,
    workers: Optional[int],
    shard_workers: Optional[int] = None,
) -> Fig08Result:
    tasks = [
        (corpus, lam, i, p, seed, crash, shard_workers)
        for lam in lambdas
        for i, p in enumerate(probabilities)
    ]
    results = parallel_map(_run_one_point, tasks, workers=workers, min_items=2)
    consumed: Dict[float, List[int]] = {lam: [0] * len(probabilities) for lam in lambdas}
    reclaimed_at_half: Dict[float, float] = {}
    for lam, i, bytes_, reclaimed in results:
        consumed[lam][i] = bytes_
        if abs(probabilities[i] - 0.5) < 1e-9:
            reclaimed_at_half[lam] = reclaimed
    return Fig08Result(
        probabilities=tuple(probabilities),
        lambdas=tuple(lambdas),
        consumed=consumed,
        total_bytes=corpus.total_bytes,
        reclaimed_at_half=reclaimed_at_half,
    )


def run(
    scale: ExperimentScale,
    lambdas: Sequence[float] = PAPER_LAMBDAS,
    probabilities: Sequence[float] = PAPER_FAILURE_PROBABILITIES,
    seed: int = 0,
    corpus: Corpus = None,
    workers: Optional[int] = None,
    shard_workers: Optional[int] = None,
) -> Fig08Result:
    """``shard_workers`` shards each point's SALAD across processes
    (number-preserving for crash runs, which are deterministic; duty-cycle
    loss runs use per-shard loss substreams, statistically equivalent)."""
    if corpus is None:
        corpus = generate_corpus(scale.corpus_spec(), seed=seed)
    return _run_grid(
        corpus,
        lambdas,
        probabilities,
        seed,
        crash=False,
        workers=workers,
        shard_workers=shard_workers,
    )


def run_crash_ablation(
    scale: ExperimentScale,
    lambdas: Sequence[float] = PAPER_LAMBDAS,
    probabilities: Sequence[float] = PAPER_FAILURE_PROBABILITIES,
    seed: int = 0,
    corpus: Corpus = None,
    workers: Optional[int] = None,
    shard_workers: Optional[int] = None,
) -> Fig08Result:
    """Ablation: permanent crash-stop failures instead of duty-cycle loss.

    Harsher than the paper's model; crashed machines' files still count as
    consumed but can never be coalesced.
    """
    if corpus is None:
        corpus = generate_corpus(scale.corpus_spec(), seed=seed)
    return _run_grid(
        corpus,
        lambdas,
        probabilities,
        seed,
        crash=True,
        workers=workers,
        shard_workers=shard_workers,
    )
