"""Fig. 11: mean database size per machine vs. minimum file size.

Paper finding to reproduce: "As with the message count, setting this
threshold to 4 Kbytes halves the mean database size" -- record counts track
file counts, which are dominated by small files.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import format_bytes, render_table
from repro.experiments.scales import ExperimentScale
from repro.experiments.threshold_sweep import ThresholdSweepResult, run_threshold_sweep


@dataclass
class Fig11Result:
    sweep: ThresholdSweepResult

    def render(self) -> str:
        return render_table(
            "Fig. 11: mean database size (records) vs. minimum file size",
            "min size",
            self.sweep.thresholds,
            self.sweep.database_series(),
            x_formatter=lambda v: format_bytes(v),
            value_formatter=lambda v: f"{v:,.1f}",
        )


def run(
    scale: ExperimentScale,
    seed: int = 0,
    sweep: ThresholdSweepResult = None,
) -> Fig11Result:
    if sweep is None:
        sweep = run_threshold_sweep(scale, seed=seed)
    return Fig11Result(sweep=sweep)
