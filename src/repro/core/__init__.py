"""The paper's primary contribution: the Duplicate-File Coalescing core.

- :mod:`repro.core.convergent` -- convergent encryption (section 3,
  Eqs. 1-4): identical plaintexts produce identical ciphertexts irrespective
  of the users' keys, so untrusted hosts can detect and coalesce duplicates.
- :mod:`repro.core.keyring` -- per-user key management and the ciphertext
  metadata set M_f of Eq. 3.
- :mod:`repro.core.fingerprint` -- file fingerprints (size prepended to a
  20-byte content hash, section 4.1).
- :mod:`repro.core.security_model` -- empirical realization of the section
  3.1 security theorem in the random-oracle model.
"""

from repro.core.convergent import (
    ConvergentCiphertext,
    NotAuthorizedError,
    convergent_decrypt,
    convergent_encrypt,
)
from repro.core.fingerprint import Fingerprint, fingerprint_of
from repro.core.keyring import User, UserDirectory

__all__ = [
    "ConvergentCiphertext",
    "Fingerprint",
    "NotAuthorizedError",
    "User",
    "UserDirectory",
    "convergent_decrypt",
    "convergent_encrypt",
    "fingerprint_of",
]
