"""Users, their key pairs, and directories of authorized readers.

Every Farsite user ``u`` holds a public/private key pair ``(K_u, K'_u)``
(paper section 2).  Convergent encryption attaches to each file a metadata
set ``M_f = { mu_u = F_{K_u}(H(P_f)) : u in U_f }`` (Eq. 3) -- one entry per
authorized reader, each an encryption of the file's hash key under that
reader's public key.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.crypto.rsa import RSAKeyPair, RSAPublicKey, generate_keypair


@dataclass
class User:
    """A Farsite user: a name and an RSA key pair."""

    name: str
    keypair: RSAKeyPair

    @property
    def public_key(self) -> RSAPublicKey:
        return self.keypair.public

    def unlock_hash_key(self, encrypted_key: bytes) -> bytes:
        """Decrypt one metadata entry mu_u back into the hash key H(P_f)."""
        return self.keypair.decrypt(encrypted_key)

    @classmethod
    def create(cls, name: str, rng: Optional[random.Random] = None, bits: int = 512) -> "User":
        """Generate a fresh user with a new key pair."""
        return cls(name=name, keypair=generate_keypair(bits=bits, rng=rng))


@dataclass
class UserDirectory:
    """A registry of users, for looking up public keys by name.

    In real Farsite the directory groups certify user keys; the simulation
    only needs the lookup.
    """

    _users: Dict[str, User] = field(default_factory=dict)

    def add(self, user: User) -> None:
        if user.name in self._users:
            raise ValueError(f"user {user.name!r} already registered")
        self._users[user.name] = user

    def create_user(self, name: str, rng: Optional[random.Random] = None) -> User:
        """Generate, register, and return a fresh user."""
        user = User.create(name, rng=rng)
        self.add(user)
        return user

    def get(self, name: str) -> User:
        try:
            return self._users[name]
        except KeyError:
            raise KeyError(f"no such user: {name!r}") from None

    def public_keys(self, names: Iterable[str]) -> Dict[str, RSAPublicKey]:
        """Public keys of the given users, keyed by name."""
        return {name: self.get(name).public_key for name in names}

    def __len__(self) -> int:
        return len(self._users)

    def __contains__(self, name: str) -> bool:
        return name in self._users
