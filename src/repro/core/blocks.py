"""Block-level convergent encryption and deduplication.

The paper's measurement tool hashed "each 64-Kbyte block of all files"
(section 5), and its related-work section cites LBFS [28], which identifies
identical *portions* of different files.  This module extends the
whole-file DFC machinery to blocks:

- :func:`split_fixed` -- the scanner's fixed 64-KB blocking;
- :func:`split_content_defined` -- LBFS-style content-defined chunking with
  a rolling hash, so an insertion near the front of a file shifts block
  boundaries instead of re-writing every block;
- :class:`BlockManifest` / :func:`encrypt_blocks` -- per-block convergent
  encryption: each block is encrypted with the hash of its own plaintext,
  so identical blocks coalesce across files *and* across users, exactly
  like whole files do under Eq. 2.

The ablation experiment :mod:`repro.experiments.ablation_blocks` quantifies
how much more space block-level coalescing reclaims on partially similar
files (versioned documents) than the paper's whole-file scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.fingerprint import Fingerprint, fingerprint_of
from repro.crypto.hashing import convergence_key
from repro.crypto.modes import decrypt_ctr, encrypt_ctr

#: The paper's scanner block size.
PAPER_BLOCK_SIZE = 64 * 1024


def split_fixed(data: bytes, block_size: int = PAPER_BLOCK_SIZE) -> List[bytes]:
    """Fixed-size blocking (the paper's scanner).  Last block may be short."""
    if block_size < 1:
        raise ValueError(f"block size must be positive: {block_size}")
    return [data[i : i + block_size] for i in range(0, len(data), block_size)] or [b""]


# -- content-defined chunking (LBFS style) -----------------------------------
#
# A 64-entry-window rolling sum ("buzhash"-like) selects breakpoints where
# the hash matches a mask, giving an expected chunk size of 2^mask_bits;
# minimum and maximum sizes bound pathological inputs.

_WINDOW = 64
# Pseudo-random byte mixing table, fixed for reproducibility.
_MIX = [((i * 2654435761) ^ (i << 7) ^ 0x9E3779B9) & 0xFFFFFFFF for i in range(256)]


def split_content_defined(
    data: bytes,
    target_size: int = 8 * 1024,
    min_size: Optional[int] = None,
    max_size: Optional[int] = None,
) -> List[bytes]:
    """Content-defined chunking with a rolling window hash.

    Breakpoints depend only on local content, so inserting bytes into a file
    changes O(1) chunks rather than all downstream blocks -- the property
    LBFS exploits to find shared portions of similar files.
    """
    if target_size < 256:
        raise ValueError(f"target size too small: {target_size}")
    min_size = min_size if min_size is not None else target_size // 4
    max_size = max_size if max_size is not None else target_size * 4
    if not 0 < min_size <= target_size <= max_size:
        raise ValueError("need 0 < min_size <= target_size <= max_size")
    mask = (1 << max(1, target_size.bit_length() - 1)) - 1

    chunks: List[bytes] = []
    start = 0
    n = len(data)
    while start < n:
        end = min(start + max_size, n)
        cut = end
        if end - start > min_size:
            state = 0
            window_start = start
            for i in range(start, end):
                state = (state + _MIX[data[i]]) & 0xFFFFFFFF
                if i - window_start >= _WINDOW:
                    state = (state - _MIX[data[i - _WINDOW]]) & 0xFFFFFFFF
                if i - start + 1 >= min_size and (state & mask) == mask:
                    cut = i + 1
                    break
        chunks.append(data[start:cut])
        start = cut
    return chunks or [b""]


# -- block-level convergent encryption ----------------------------------------


@dataclass(frozen=True)
class EncryptedBlock:
    """One convergently encrypted block: ciphertext plus its fingerprint."""

    ciphertext: bytes
    fingerprint: Fingerprint


@dataclass(frozen=True)
class BlockManifest:
    """Recipe for reassembling a file from its encrypted blocks.

    ``keys`` holds the per-block hash keys; in a full system each key would
    itself be encrypted under the readers' public keys (as whole-file
    convergent encryption does for its single key) -- the storage cost is
    O(blocks) either way, and the tests exercise the recovery path.
    """

    block_fingerprints: Tuple[Fingerprint, ...]
    keys: Tuple[bytes, ...]

    @property
    def block_count(self) -> int:
        return len(self.block_fingerprints)


def encrypt_blocks(blocks: Iterable[bytes]) -> Tuple[BlockManifest, List[EncryptedBlock]]:
    """Convergently encrypt each block (Eq. 2 applied per block)."""
    fingerprints: List[Fingerprint] = []
    keys: List[bytes] = []
    encrypted: List[EncryptedBlock] = []
    for block in blocks:
        key = convergence_key(block)
        ciphertext = encrypt_ctr(key, block)
        fingerprint = fingerprint_of(ciphertext)
        fingerprints.append(fingerprint)
        keys.append(key)
        encrypted.append(EncryptedBlock(ciphertext=ciphertext, fingerprint=fingerprint))
    return (
        BlockManifest(block_fingerprints=tuple(fingerprints), keys=tuple(keys)),
        encrypted,
    )


def decrypt_blocks(
    manifest: BlockManifest,
    block_store: Mapping[Fingerprint, bytes],
) -> bytes:
    """Reassemble a file from a content-addressed block store."""
    out = bytearray()
    for fingerprint, key in zip(manifest.block_fingerprints, manifest.keys):
        ciphertext = block_store[fingerprint]
        out.extend(decrypt_ctr(key, ciphertext))
    return bytes(out)


def deduplicated_bytes(manifests: Iterable[BlockManifest]) -> Tuple[int, int]:
    """(logical, physical) byte totals across files sharing a block store.

    Logical counts every block of every file; physical counts each distinct
    block once -- the block-level analogue of the corpus summary.
    """
    logical = 0
    distinct: Dict[Fingerprint, int] = {}
    for manifest in manifests:
        for fingerprint in manifest.block_fingerprints:
            logical += fingerprint.size
            distinct.setdefault(fingerprint, fingerprint.size)
    return logical, sum(distinct.values())
