"""Convergent encryption (paper section 3, Eqs. 1-4).

The construction, for file plaintext ``P_f`` and authorized readers ``U_f``:

1. Compute the hash key ``h = H(P_f)``.
2. Encrypt the data with the hash as the symmetric key:
   ``c_f = E_h(P_f)``                                  (Eq. 2)
3. For each authorized reader ``u``, encrypt the hash under the reader's
   public key: ``mu_u = F_{K_u}(h)``; the metadata set is
   ``M_f = { mu_u : u in U_f }``                       (Eq. 3)
4. The ciphertext is the tuple ``C_f = <c_f, M_f>``    (Eq. 1)

Decryption by reader ``u``: recover ``h = F^-1_{K'_u}(mu_u)`` with the
private key, then ``P_f = E^-1_h(c_f)``                (Eq. 4)

Because the data ciphertext is fully determined by the data plaintext,
identical files encrypt to identical ``c_f`` regardless of who encrypted
them -- which is exactly what lets untrusted file hosts coalesce duplicates
(they compare and deduplicate ``c_f``, never seeing ``P_f`` or any private
key).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from random import Random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.crypto.hashing import CONVERGENCE_KEY_BYTES, convergence_key
from repro.crypto.modes import bulk_encrypt_ctr, decrypt_ctr, encrypt_ctr
from repro.crypto.rsa import RSAPublicKey

from repro.core.keyring import User


class NotAuthorizedError(Exception):
    """Raised when a user without a metadata entry attempts decryption."""


def metadata_rng(plaintext: bytes, reader: str) -> Random:
    """A deterministic RNG for one reader's metadata encryption.

    The RSA padding nonce in ``mu_u`` needs randomness, but seeding it from
    process-global entropy makes pipeline runs irreproducible -- and under a
    parallel executor, dependent on worker scheduling.  Deriving the stream
    from ``(plaintext, reader)`` keeps every metadata entry deterministic and
    *independent of execution order*, so serial and parallel batch
    encryptions produce byte-identical ciphertext tuples.  (Determinism here
    costs nothing the construction did not already concede: the data
    ciphertext is deterministic by design, Eq. 2.)
    """
    digest = hashlib.sha256(b"metadata-rng:" + reader.encode() + b":" + plaintext)
    return Random(int.from_bytes(digest.digest()[:16], "big"))


@dataclass(frozen=True)
class ConvergentCiphertext:
    """The tuple ``C_f = <c_f, M_f>`` of Eq. 1.

    ``data`` is the convergently encrypted file content ``c_f``;
    ``metadata`` maps each authorized reader's name to ``mu_u``, the hash key
    encrypted under that reader's public key.
    """

    data: bytes
    metadata: Mapping[str, bytes]

    @property
    def readers(self) -> Iterable[str]:
        return self.metadata.keys()

    def metadata_bytes(self) -> int:
        """Space consumed by per-user key metadata.

        The paper notes coalesced files cost "a small amount of space per
        user's key" beyond the single data copy; this is that amount.
        """
        return sum(len(mu) for mu in self.metadata.values())

    def add_reader(self, name: str, encrypted_key: bytes) -> "ConvergentCiphertext":
        """Return a copy with one more authorized reader.

        The caller must supply ``mu_u`` produced by someone who already knows
        the hash key (see :func:`reencrypt_key_for`).
        """
        merged = dict(self.metadata)
        merged[name] = encrypted_key
        return ConvergentCiphertext(data=self.data, metadata=merged)


def convergent_encrypt(
    plaintext: bytes,
    reader_keys: Mapping[str, RSAPublicKey],
    rng: Optional[Random] = None,
    key_bytes: int = CONVERGENCE_KEY_BYTES,
) -> ConvergentCiphertext:
    """Encrypt *plaintext* so every reader in *reader_keys* can decrypt it.

    The data ciphertext depends only on the plaintext and uses the bulk CTR
    kernel; the metadata entries are randomized per-reader RSA encryptions of
    the hash key.  When no *rng* is supplied, each entry draws from a
    deterministic per-``(plaintext, reader)`` stream (:func:`metadata_rng`),
    so repeated and parallel runs reproduce exactly.
    """
    if not reader_keys:
        raise ValueError("a convergently encrypted file needs at least one reader")
    hash_key = convergence_key(plaintext, key_bytes=key_bytes)
    data = bulk_encrypt_ctr(hash_key, plaintext)
    metadata: Dict[str, bytes] = {
        name: public_key.encrypt(
            hash_key, rng=rng if rng is not None else metadata_rng(plaintext, name)
        )
        for name, public_key in reader_keys.items()
    }
    return ConvergentCiphertext(data=data, metadata=metadata)


def _encrypt_one(args: Tuple[bytes, Mapping[str, RSAPublicKey], int]) -> ConvergentCiphertext:
    plaintext, reader_keys, key_bytes = args
    return convergent_encrypt(plaintext, reader_keys, key_bytes=key_bytes)


def convergent_encrypt_many(
    plaintexts: Sequence[bytes],
    reader_keys: Mapping[str, RSAPublicKey],
    key_bytes: int = CONVERGENCE_KEY_BYTES,
    workers: Optional[int] = 1,
) -> List[ConvergentCiphertext]:
    """Batch-encrypt many files for one reader set.

    With ``workers > 1`` the batch fans out over a process pool; because
    every per-file ciphertext (data *and* metadata, via :func:`metadata_rng`)
    is a pure function of the plaintext, the result list is byte-identical to
    the serial loop, in input order.
    """
    from repro.perf import parallel_map

    return parallel_map(
        _encrypt_one,
        [(plaintext, reader_keys, key_bytes) for plaintext in plaintexts],
        workers=workers,
    )


def convergent_decrypt(ciphertext: ConvergentCiphertext, user: User) -> bytes:
    """Decrypt per Eq. 4: unlock the hash key, then the data."""
    try:
        mu = ciphertext.metadata[user.name]
    except KeyError:
        raise NotAuthorizedError(
            f"user {user.name!r} is not an authorized reader of this file"
        ) from None
    hash_key = user.unlock_hash_key(mu)
    return decrypt_ctr(hash_key, ciphertext.data)


def verify_convergent(ciphertext: ConvergentCiphertext, plaintext: bytes) -> bool:
    """Check whether *ciphertext* is the convergent encryption of *plaintext*.

    This is the "controlled leak" the paper accepts: anyone holding a
    candidate plaintext can confirm a match without any key.  The security
    theorem (section 3.1) says this is the *only* leak.
    """
    hash_key = convergence_key(plaintext, key_bytes=_infer_key_bytes(ciphertext))
    return encrypt_ctr(hash_key, plaintext) == ciphertext.data


def _infer_key_bytes(ciphertext: ConvergentCiphertext) -> int:
    # All key sizes produce the same-length c_f, so the default suffices for
    # verification unless a caller consistently uses another width.
    return CONVERGENCE_KEY_BYTES


def reencrypt_key_for(
    plaintext: bytes,
    new_reader: RSAPublicKey,
    rng: Optional[Random] = None,
    key_bytes: int = CONVERGENCE_KEY_BYTES,
) -> bytes:
    """Produce ``mu_u`` for a new authorized reader, given the plaintext.

    Any current reader (who can recover the plaintext and hence the hash key)
    can grant access to another user by publishing this value.
    """
    hash_key = convergence_key(plaintext, key_bytes=key_bytes)
    if rng is None:
        rng = metadata_rng(plaintext, f"reencrypt:{new_reader.n}:{new_reader.e}")
    return new_reader.encrypt(hash_key, rng=rng)
