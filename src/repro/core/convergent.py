"""Convergent encryption (paper section 3, Eqs. 1-4).

The construction, for file plaintext ``P_f`` and authorized readers ``U_f``:

1. Compute the hash key ``h = H(P_f)``.
2. Encrypt the data with the hash as the symmetric key:
   ``c_f = E_h(P_f)``                                  (Eq. 2)
3. For each authorized reader ``u``, encrypt the hash under the reader's
   public key: ``mu_u = F_{K_u}(h)``; the metadata set is
   ``M_f = { mu_u : u in U_f }``                       (Eq. 3)
4. The ciphertext is the tuple ``C_f = <c_f, M_f>``    (Eq. 1)

Decryption by reader ``u``: recover ``h = F^-1_{K'_u}(mu_u)`` with the
private key, then ``P_f = E^-1_h(c_f)``                (Eq. 4)

Because the data ciphertext is fully determined by the data plaintext,
identical files encrypt to identical ``c_f`` regardless of who encrypted
them -- which is exactly what lets untrusted file hosts coalesce duplicates
(they compare and deduplicate ``c_f``, never seeing ``P_f`` or any private
key).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional

from repro.crypto.hashing import CONVERGENCE_KEY_BYTES, convergence_key
from repro.crypto.modes import decrypt_ctr, encrypt_ctr
from repro.crypto.rsa import RSAPublicKey

from repro.core.keyring import User


class NotAuthorizedError(Exception):
    """Raised when a user without a metadata entry attempts decryption."""


@dataclass(frozen=True)
class ConvergentCiphertext:
    """The tuple ``C_f = <c_f, M_f>`` of Eq. 1.

    ``data`` is the convergently encrypted file content ``c_f``;
    ``metadata`` maps each authorized reader's name to ``mu_u``, the hash key
    encrypted under that reader's public key.
    """

    data: bytes
    metadata: Mapping[str, bytes]

    @property
    def readers(self) -> Iterable[str]:
        return self.metadata.keys()

    def metadata_bytes(self) -> int:
        """Space consumed by per-user key metadata.

        The paper notes coalesced files cost "a small amount of space per
        user's key" beyond the single data copy; this is that amount.
        """
        return sum(len(mu) for mu in self.metadata.values())

    def add_reader(self, name: str, encrypted_key: bytes) -> "ConvergentCiphertext":
        """Return a copy with one more authorized reader.

        The caller must supply ``mu_u`` produced by someone who already knows
        the hash key (see :func:`reencrypt_key_for`).
        """
        merged = dict(self.metadata)
        merged[name] = encrypted_key
        return ConvergentCiphertext(data=self.data, metadata=merged)


def convergent_encrypt(
    plaintext: bytes,
    reader_keys: Mapping[str, RSAPublicKey],
    rng: Optional[random.Random] = None,
    key_bytes: int = CONVERGENCE_KEY_BYTES,
) -> ConvergentCiphertext:
    """Encrypt *plaintext* so every reader in *reader_keys* can decrypt it.

    The data ciphertext depends only on the plaintext; the metadata entries
    are randomized per-reader RSA encryptions of the hash key.
    """
    if not reader_keys:
        raise ValueError("a convergently encrypted file needs at least one reader")
    hash_key = convergence_key(plaintext, key_bytes=key_bytes)
    data = encrypt_ctr(hash_key, plaintext)
    rng = rng or random.Random()
    metadata: Dict[str, bytes] = {
        name: public_key.encrypt(hash_key, rng=rng)
        for name, public_key in reader_keys.items()
    }
    return ConvergentCiphertext(data=data, metadata=metadata)


def convergent_decrypt(ciphertext: ConvergentCiphertext, user: User) -> bytes:
    """Decrypt per Eq. 4: unlock the hash key, then the data."""
    try:
        mu = ciphertext.metadata[user.name]
    except KeyError:
        raise NotAuthorizedError(
            f"user {user.name!r} is not an authorized reader of this file"
        ) from None
    hash_key = user.unlock_hash_key(mu)
    return decrypt_ctr(hash_key, ciphertext.data)


def verify_convergent(ciphertext: ConvergentCiphertext, plaintext: bytes) -> bool:
    """Check whether *ciphertext* is the convergent encryption of *plaintext*.

    This is the "controlled leak" the paper accepts: anyone holding a
    candidate plaintext can confirm a match without any key.  The security
    theorem (section 3.1) says this is the *only* leak.
    """
    hash_key = convergence_key(plaintext, key_bytes=_infer_key_bytes(ciphertext))
    return encrypt_ctr(hash_key, plaintext) == ciphertext.data


def _infer_key_bytes(ciphertext: ConvergentCiphertext) -> int:
    # All key sizes produce the same-length c_f, so the default suffices for
    # verification unless a caller consistently uses another width.
    return CONVERGENCE_KEY_BYTES


def reencrypt_key_for(
    plaintext: bytes,
    new_reader: RSAPublicKey,
    rng: Optional[random.Random] = None,
    key_bytes: int = CONVERGENCE_KEY_BYTES,
) -> bytes:
    """Produce ``mu_u`` for a new authorized reader, given the plaintext.

    Any current reader (who can recover the plaintext and hence the hash key)
    can grant access to another user by publishing this value.
    """
    hash_key = convergence_key(plaintext, key_bytes=key_bytes)
    return new_reader.encrypt(hash_key, rng=rng)
