"""Empirical model of the section 3.1 security theorem.

The theorem: given ciphertext ``c = E_{H(P)}(P)`` with the primitives modeled
as random oracles, no attacker program of polynomial length can output the
plaintext ``P`` with non-negligible probability unless it could already guess
``P`` a priori.  The *only* capability convergent encryption adds is a
confirmation oracle: an attacker who can enumerate a candidate set containing
``P`` can confirm which candidate it is (a "controlled leak").

This module builds that game concretely on the random oracles of
:mod:`repro.crypto.random_oracle`:

- :class:`ConvergentGame` samples a plaintext from a candidate space,
  encrypts it convergently, and exposes only the oracles plus the ciphertext.
- :func:`dictionary_attack` is the attack the scheme *permits*: hash each
  candidate, decrypt, compare.  It succeeds in exactly
  ``O(|candidate set|)`` queries.
- :func:`blind_attack` is the attack the theorem *forbids*: query budget
  polynomial while the candidate space is superpolynomial.  Its success
  probability is at most (budget / |space|), which tests verify to be
  negligible.

These are run as statistical tests in ``tests/core/test_security_model.py``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.crypto.random_oracle import RandomOracleHash, RandomOraclePermutation


@dataclass
class GameTranscript:
    """Outcome of one attack run."""

    success: bool
    hash_queries: int
    cipher_queries: int
    guessed: Optional[bytes]


class ConvergentGame:
    """The attack game of section 3.1, over a finite candidate space.

    The challenger samples ``P`` uniformly from *candidates* (the set S of
    the proof, here explicit), computes ``c = E_{H(P)}(P)`` through the
    random oracles, and hands the attacker ``c`` plus oracle access.
    """

    def __init__(
        self,
        candidates: Sequence[bytes],
        key_bytes: int = 4,
        rng: Optional[random.Random] = None,
    ):
        if not candidates:
            raise ValueError("candidate space must be non-empty")
        widths = {len(c) for c in candidates}
        if len(widths) != 1:
            raise ValueError("all candidate plaintexts must have equal length m")
        self._rng = rng or random.Random()
        self.candidates = list(candidates)
        self.hash_oracle = RandomOracleHash(output_bytes=key_bytes, rng=self._rng)
        self.cipher_oracle = RandomOraclePermutation(
            width_bytes=widths.pop(), rng=self._rng
        )
        self._plaintext = self._rng.choice(self.candidates)
        # Challenger queries do not count against the attacker's budget.
        h = self.hash_oracle.query(self._plaintext)
        self.ciphertext = self.cipher_oracle.encrypt(h, self._plaintext)
        self._challenger_queries = (self.hash_oracle.queries, self.cipher_oracle.queries)

    def attacker_queries(self) -> int:
        """Oracle queries made since the challenge was issued."""
        return (
            self.hash_oracle.queries
            - self._challenger_queries[0]
            + self.cipher_oracle.queries
            - self._challenger_queries[1]
        )

    def check(self, guess: bytes) -> bool:
        """Did the attacker recover the challenge plaintext?"""
        return guess == self._plaintext


def dictionary_attack(game: ConvergentGame, tries: Optional[int] = None) -> GameTranscript:
    """The permitted attack: confirm candidates one by one.

    For each candidate ``s``, compute ``E_{H(s)}(s)`` and compare with the
    challenge ciphertext.  Always succeeds if the whole candidate set is
    tried -- this is the deliberate, controlled information leak.
    """
    budget = len(game.candidates) if tries is None else tries
    for candidate in game.candidates[:budget]:
        h = game.hash_oracle.query(candidate)
        if game.cipher_oracle.encrypt(h, candidate) == game.ciphertext:
            return GameTranscript(
                success=game.check(candidate),
                hash_queries=game.hash_oracle.queries,
                cipher_queries=game.cipher_oracle.queries,
                guessed=candidate,
            )
    return GameTranscript(
        success=False,
        hash_queries=game.hash_oracle.queries,
        cipher_queries=game.cipher_oracle.queries,
        guessed=None,
    )


def blind_attack(
    game: ConvergentGame,
    query_budget: int,
    rng: Optional[random.Random] = None,
) -> GameTranscript:
    """The forbidden attack: try to invert without enumerating candidates.

    The attacker does not consult the candidate list (modeling a
    superpolynomial space it cannot enumerate).  It spends its budget on
    random-key inverse queries ``E^-1_k(c)`` -- the best generic strategy,
    since each query either hits ``H(P)`` (probability 2^-8k) or yields an
    independently random string.
    """
    rng = rng or random.Random()
    key_bytes = game.hash_oracle.output_bytes
    guesses: List[bytes] = []
    for _ in range(query_budget):
        key = bytes(rng.getrandbits(8) for _ in range(key_bytes))
        guesses.append(game.cipher_oracle.decrypt(key, game.ciphertext))
    # The attacker outputs its most plausible guess; with no structure to
    # exploit, that is just one of the decryptions.
    final = rng.choice(guesses) if guesses else b""
    return GameTranscript(
        success=game.check(final),
        hash_queries=game.hash_oracle.queries,
        cipher_queries=game.cipher_oracle.queries,
        guessed=final,
    )


def leak_is_exactly_equality(
    plaintext_a: bytes,
    plaintext_b: bytes,
    key_bytes: int = 4,
    rng: Optional[random.Random] = None,
) -> bool:
    """Check the leak characterization: ciphertext equality iff plaintext equality.

    Encrypt both plaintexts through one shared pair of oracles (as two
    Farsite users would, sharing the real-world hash and cipher) and report
    whether the ciphertexts match.
    """
    rng = rng or random.Random()
    if len(plaintext_a) != len(plaintext_b):
        # Different lengths are trivially distinguishable by ciphertext size.
        return False
    hash_oracle = RandomOracleHash(output_bytes=key_bytes, rng=rng)
    cipher_oracle = RandomOraclePermutation(width_bytes=len(plaintext_a), rng=rng)
    c_a = cipher_oracle.encrypt(hash_oracle.query(plaintext_a), plaintext_a)
    c_b = cipher_oracle.encrypt(hash_oracle.query(plaintext_b), plaintext_b)
    return c_a == c_b
