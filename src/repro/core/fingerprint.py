"""File fingerprints (paper section 4.1).

A fingerprint is formed by "hashing the file's (convergently encrypted)
content and prepending the file size to the hash value".  SALAD records are
keyed by fingerprint; two files with the same fingerprint have, with
overwhelming probability, identical content.  With 20-byte hashes, the
probability that F files contain even one pair of same-sized non-identical
files sharing a hash is about F^2 / 2^161 -- the paper rounds this to
F * 10^-24 for F files.

Prepending the size means two fingerprints can only collide if the files
have equal sizes, and it gives SALAD a total order on records in which
smaller files sort first -- which the database-size-limit experiment
(Fig. 13) exploits by evicting the lowest fingerprint (the smallest file).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import total_ordering
from typing import Iterable, List, Tuple

from repro.crypto.hashing import FINGERPRINT_HASH_BYTES, content_hash

# The batched paths bind the hash constructor locally; it must stay the same
# primitive as :func:`repro.crypto.hashing.content_hash` (SHA-1, 20 bytes).
_sha1 = hashlib.sha1

#: Bytes used to encode the file size prefix.  8 bytes covers any realistic
#: file (2^64 - 1 bytes).
SIZE_PREFIX_BYTES = 8

#: Total fingerprint width in bytes.
FINGERPRINT_BYTES = SIZE_PREFIX_BYTES + FINGERPRINT_HASH_BYTES

#: Batch-kernel lifetime totals (plain module ints on the hot path;
#: harvested into a MetricsRegistry by :func:`collect_metrics`).
_BATCH_CALLS = 0
_BATCH_ITEMS = 0
_BATCH_BYTES = 0


def collect_metrics(registry) -> None:
    """Harvest the fingerprint batch kernels' lifetime totals into *registry*."""
    registry.counter("core.fingerprint.batch_calls").inc(_BATCH_CALLS)
    registry.counter("core.fingerprint.batch_items").inc(_BATCH_ITEMS)
    registry.counter("core.fingerprint.batch_bytes").inc(_BATCH_BYTES)


@total_ordering
@dataclass(frozen=True)
class Fingerprint:
    """A file fingerprint: ``size || hash(content)``.

    Comparison order is the big-endian byte order of the encoded fingerprint,
    so fingerprints of smaller files compare lower (the size prefix
    dominates), matching the eviction rule of the Fig. 13 experiment.
    """

    size: int
    content_digest: bytes

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"file size cannot be negative: {self.size}")
        if self.size >= 1 << (8 * SIZE_PREFIX_BYTES):
            raise ValueError(f"file size too large to encode: {self.size}")
        if len(self.content_digest) != FINGERPRINT_HASH_BYTES:
            raise ValueError(
                f"content digest must be {FINGERPRINT_HASH_BYTES} bytes, "
                f"got {len(self.content_digest)}"
            )
        # Fingerprints key every database dict; precompute the hash once
        # instead of re-hashing (size, digest) per lookup.  object.__setattr__
        # sidesteps the frozen guard; equality still compares the fields.
        object.__setattr__(self, "_hash", hash((self.size, self.content_digest)))

    def __hash__(self) -> int:
        return self._hash

    def to_bytes(self) -> bytes:
        """Encode as ``size (8 bytes, big-endian) || digest (20 bytes)``."""
        encoded = self.__dict__.get("_encoded")
        if encoded is None:
            encoded = self.size.to_bytes(SIZE_PREFIX_BYTES, "big") + self.content_digest
            object.__setattr__(self, "_encoded", encoded)
        return encoded

    @classmethod
    def from_bytes(cls, data: bytes) -> "Fingerprint":
        if len(data) != FINGERPRINT_BYTES:
            raise ValueError(
                f"fingerprint must be {FINGERPRINT_BYTES} bytes, got {len(data)}"
            )
        return cls(
            size=int.from_bytes(data[:SIZE_PREFIX_BYTES], "big"),
            content_digest=data[SIZE_PREFIX_BYTES:],
        )

    def as_int(self) -> int:
        """The fingerprint as a big integer (used for SALAD cell-IDs)."""
        return int.from_bytes(self.to_bytes(), "big")

    def hash_as_int(self) -> int:
        """Just the content-hash portion as an integer.

        SALAD cell-IDs are taken from the *least significant* bits of the
        identifier; for fingerprints those come from the hash portion, which
        is uniformly distributed.  (The size prefix occupies the most
        significant bytes and never reaches the cell-ID.)
        """
        return int.from_bytes(self.content_digest, "big")

    def __lt__(self, other: "Fingerprint") -> bool:
        if not isinstance(other, Fingerprint):
            return NotImplemented
        return self.to_bytes() < other.to_bytes()

    def __repr__(self) -> str:
        return f"Fingerprint(size={self.size}, digest={self.content_digest.hex()[:12]}...)"


def fingerprint_of(content: bytes) -> Fingerprint:
    """Fingerprint real bytes: hash the content and prepend its size."""
    return Fingerprint(size=len(content), content_digest=content_hash(content))


def fingerprint_many(contents: Iterable[bytes]) -> List[Fingerprint]:
    """Fingerprint a batch of contents in one call.

    Identical to ``[fingerprint_of(c) for c in contents]`` but amortizes the
    per-call dispatch and is the unit of work handed to
    :class:`repro.perf.ParallelMap` by the DFC pipeline -- hashing is pure
    and order-independent, so a parallel map returns the same list.
    """
    global _BATCH_CALLS, _BATCH_ITEMS, _BATCH_BYTES
    hash_fn = _sha1
    out: List[Fingerprint] = []
    hashed_bytes = 0
    for content in contents:
        hashed_bytes += len(content)
        out.append(
            Fingerprint(size=len(content), content_digest=hash_fn(content).digest())
        )
    _BATCH_CALLS += 1
    _BATCH_ITEMS += len(out)
    _BATCH_BYTES += hashed_bytes
    return out


def synthetic_fingerprint_many(
    descriptors: Iterable[Tuple[int, int]]
) -> List[Fingerprint]:
    """Batch :func:`synthetic_fingerprint` over ``(size, content_id)`` pairs.

    The experiments fingerprint every file of every machine; doing it in one
    sweep keeps the hot loop free of per-file call overhead and gives the
    parallel executor a picklable unit of work.
    """
    global _BATCH_CALLS, _BATCH_ITEMS
    hash_fn = _sha1
    out: List[Fingerprint] = []
    for size, content_id in descriptors:
        token = b"synthetic:%d:%d" % (size, content_id)
        out.append(
            Fingerprint(size=size, content_digest=hash_fn(token).digest())
        )
    _BATCH_CALLS += 1
    _BATCH_ITEMS += len(out)
    return out


def synthetic_fingerprint(size: int, content_id: int) -> Fingerprint:
    """Fingerprint for a *synthetic* file identified by ``(size, content_id)``.

    The workload generator describes files by abstract content identity
    rather than by materialized bytes (materializing 685 GB would defeat the
    point of simulation).  Hashing the identity tuple yields exactly the
    uniformly distributed 20-byte digests the real scanner would produce,
    with equal contents mapping to equal fingerprints.
    """
    token = b"synthetic:%d:%d" % (size, content_id)
    return Fingerprint(size=size, content_digest=content_hash(token))
