"""Machine identity (paper section 2).

"Each machine has its own public/private key pair (separate from the key
pairs held by users), and each machine computes a large (20-byte) unique
identifier for itself from a cryptographically strong hash of its public
key.  Since the corresponding private key is known only by that machine, it
is the only machine that can sign a certificate that validates its own
identifier, making machine identifiers verifiable and unforgeable."

Certificates here are RSA signatures over the claimed identifier: signing is
RSA decryption of a hashed statement, verification is RSA encryption-side
recovery.  (Textbook RSA signatures suffice for the simulation; the payload
is a fixed-width hash.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.crypto.hashing import strong_hash
from repro.crypto.rsa import RSAKeyPair, RSAPublicKey, generate_keypair

IDENTIFIER_BYTES = 20


@dataclass(frozen=True)
class IdentityCertificate:
    """A self-signed claim that *public_key* owns *identifier*."""

    identifier: int
    public_key: RSAPublicKey
    signature: int

    def verify(self) -> bool:
        """Check the signature and that the identifier hashes correctly."""
        if identifier_of(self.public_key) != self.identifier:
            return False
        statement = _statement_digest(self.identifier, self.public_key)
        recovered = pow(self.signature, self.public_key.e, self.public_key.n)
        return recovered == statement


def identifier_of(public_key: RSAPublicKey) -> int:
    """The 20-byte machine identifier: hash of the public key."""
    return int.from_bytes(strong_hash(public_key.to_bytes()), "big")


def _statement_digest(identifier: int, public_key: RSAPublicKey) -> int:
    statement = identifier.to_bytes(IDENTIFIER_BYTES, "big") + public_key.to_bytes()
    return int.from_bytes(strong_hash(b"identity-cert:" + statement), "big")


class MachineIdentity:
    """A machine's key pair, identifier, and self-certification."""

    def __init__(self, keypair: Optional[RSAKeyPair] = None, rng: Optional[random.Random] = None):
        self.keypair = keypair or generate_keypair(rng=rng)
        self.identifier = identifier_of(self.keypair.public)

    @property
    def public_key(self) -> RSAPublicKey:
        return self.keypair.public

    def certificate(self) -> IdentityCertificate:
        """Sign a certificate validating this machine's own identifier."""
        digest = _statement_digest(self.identifier, self.public_key)
        # RSA signing: apply the private exponent to the digest.
        signature = pow(digest % self.public_key.n, self.keypair._d, self.public_key.n)
        return IdentityCertificate(
            identifier=self.identifier,
            public_key=self.public_key,
            signature=signature,
        )

    def __repr__(self) -> str:
        return f"<MachineIdentity {self.identifier:#042x}>"
