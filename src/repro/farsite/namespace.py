"""The hierarchical namespace, partitioned among directory groups.

"Directories are apportioned among groups of machines.  The machines in
each directory group jointly manage a region of the file-system namespace"
(section 2).  Paths are partitioned by the hash of their top-level
directory, so each region is served by one quorum-replicated group.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.crypto.hashing import strong_hash
from repro.farsite.directory_group import DirectoryEntry, DirectoryGroup


def _normalize(path: str) -> str:
    if not path.startswith("/"):
        raise ValueError(f"paths must be absolute: {path!r}")
    while "//" in path:
        path = path.replace("//", "/")
    return path.rstrip("/") or "/"


def _region_of(path: str) -> str:
    """The partition key: the top-level directory name."""
    parts = _normalize(path).split("/")
    return parts[1] if len(parts) > 1 and parts[1] else ""


class Namespace:
    """The global name space over a set of directory groups."""

    def __init__(self, groups: Sequence[DirectoryGroup]):
        if not groups:
            raise ValueError("a namespace needs at least one directory group")
        self.groups = list(groups)

    def group_for(self, path: str) -> DirectoryGroup:
        region = _region_of(path)
        index = int.from_bytes(strong_hash(region.encode())[:4], "big")
        return self.groups[index % len(self.groups)]

    # -- file metadata operations ----------------------------------------------

    def create(
        self,
        path: str,
        file_id: str,
        size: int,
        replica_hosts: Tuple[int, ...],
        readers: Tuple[str, ...],
    ) -> DirectoryEntry:
        path = _normalize(path)
        entry = DirectoryEntry(
            path=path,
            file_id=file_id,
            size=size,
            replica_hosts=replica_hosts,
            readers=readers,
        )
        self.group_for(path).put(entry)
        return entry

    def lookup(self, path: str) -> Optional[DirectoryEntry]:
        path = _normalize(path)
        return self.group_for(path).get(path)

    def remove(self, path: str) -> bool:
        path = _normalize(path)
        return self.group_for(path).delete(path)

    def set_replica_hosts(self, path: str, hosts: Tuple[int, ...]) -> None:
        path = _normalize(path)
        self.group_for(path).set_replica_hosts(path, hosts)

    def list_region(self, prefix: str) -> Tuple[str, ...]:
        """All paths under *prefix* (prefix must stay within one region)."""
        prefix = _normalize(prefix)
        return tuple(
            p for p in self.group_for(prefix).list(prefix) if p.startswith(prefix)
        )

    def all_paths(self) -> List[str]:
        seen = set()
        for group in self.groups:
            seen.update(group.list(""))
        return sorted(seen)
