"""Directory groups as quorum-replicated state machines (paper section 2).

"The machines in each directory group jointly manage a region of the
file-system namespace, and the Byzantine protocol guarantees that the
directory group operates correctly as long as fewer than one third of its
constituent machines fail in any arbitrary or malicious manner."

We implement the quorum semantics Farsite relies on: a group of 3f+1
replicas applies an operation only when at least 2f+1 members vote for the
same result, which tolerates up to f arbitrary (Byzantine) members.  (The
full Castro-Liskov view-change machinery [11] is outside the paper's scope;
the DFC subsystem needs the groups only as a correct metadata service.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple


class QuorumFailure(Exception):
    """No result achieved a 2f+1 quorum (too many faulty members)."""


@dataclass
class DirectoryEntry:
    """Metadata for one file in the namespace region."""

    path: str
    file_id: str
    size: int
    replica_hosts: Tuple[int, ...]  # machine identifiers of file hosts
    readers: Tuple[str, ...]


class _Replica:
    """One member of the group: a deterministic state machine over entries.

    A Byzantine member can be simulated by setting ``faulty``; it then
    returns corrupted results, which the quorum outvotes.
    """

    def __init__(self, member_id: int):
        self.member_id = member_id
        self.entries: Dict[str, DirectoryEntry] = {}
        self.faulty = False

    def apply(self, op: str, args: Tuple) -> Any:
        if self.faulty:
            return ("BYZANTINE", self.member_id, op)
        if op == "put":
            (entry,) = args
            self.entries[entry.path] = entry
            return ("ok", entry.path)
        if op == "get":
            (path,) = args
            entry = self.entries.get(path)
            return ("entry", entry)
        if op == "delete":
            (path,) = args
            existed = self.entries.pop(path, None) is not None
            return ("deleted", existed)
        if op == "list":
            (prefix,) = args
            names = tuple(sorted(p for p in self.entries if p.startswith(prefix)))
            return ("names", names)
        if op == "set_hosts":
            path, hosts = args
            entry = self.entries.get(path)
            if entry is None:
                return ("missing", path)
            self.entries[path] = DirectoryEntry(
                path=entry.path,
                file_id=entry.file_id,
                size=entry.size,
                replica_hosts=tuple(hosts),
                readers=entry.readers,
            )
            return ("ok", path)
        raise ValueError(f"unknown directory operation {op!r}")


class DirectoryGroup:
    """A 3f+1-member group executing operations by 2f+1 quorum vote."""

    def __init__(self, member_ids: List[int], fault_tolerance: int = 1):
        needed = 3 * fault_tolerance + 1
        if len(member_ids) < needed:
            raise ValueError(
                f"tolerating f={fault_tolerance} Byzantine members requires "
                f"{needed} replicas, got {len(member_ids)}"
            )
        self.fault_tolerance = fault_tolerance
        self.replicas = [_Replica(mid) for mid in member_ids]
        self.operations_applied = 0

    @property
    def quorum_size(self) -> int:
        return 2 * self.fault_tolerance + 1

    def corrupt_member(self, member_id: int) -> None:
        """Mark one member Byzantine (for fault-injection tests)."""
        for replica in self.replicas:
            if replica.member_id == member_id:
                replica.faulty = True
                return
        raise KeyError(f"no member {member_id}")

    def _execute(self, op: str, args: Tuple) -> Any:
        votes: Dict[str, Tuple[Any, int]] = {}
        for replica in self.replicas:
            result = replica.apply(op, args)
            key = repr(result)
            prior = votes.get(key)
            votes[key] = (result, (prior[1] if prior else 0) + 1)
        result, count = max(votes.values(), key=lambda rc: rc[1])
        if count < self.quorum_size:
            raise QuorumFailure(
                f"no {self.quorum_size}-quorum for {op}: best agreement {count}"
            )
        self.operations_applied += 1
        return result

    # -- public operations ------------------------------------------------------

    def put(self, entry: DirectoryEntry) -> None:
        self._execute("put", (entry,))

    def get(self, path: str) -> Optional[DirectoryEntry]:
        tag, entry = self._execute("get", (path,))
        return entry

    def delete(self, path: str) -> bool:
        tag, existed = self._execute("delete", (path,))
        return existed

    def list(self, prefix: str = "") -> Tuple[str, ...]:
        tag, names = self._execute("list", (prefix,))
        return names

    def set_replica_hosts(self, path: str, hosts: Tuple[int, ...]) -> None:
        tag, _ = self._execute("set_hosts", (path, hosts))
        if tag == "missing":
            raise KeyError(f"no such path: {path}")
