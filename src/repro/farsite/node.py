"""A complete Farsite participant and a whole-system deployment.

Paper section 2: "Every participating machine functions not only as a
client device for its local user but also both as a file host -- storing
replicas of encrypted file content on behalf of the system -- and as a
member of a directory group."

:class:`FarsiteNode` is that machine: a SALAD leaf (section 4) that also
hosts encrypted replicas (via an embedded :class:`FileHost`) and publishes
their fingerprints into the SALAD.  :class:`FarsiteDeployment` assembles a
whole system -- nodes joined into one SALAD over one simulated network,
directory groups of 3f+1 nodes, a partitioned namespace, a user registry --
and drives the full Duplicate-File-Coalescing cycle:

1. clients write convergently encrypted files to replica hosts;
2. every node publishes its replicas' fingerprints (Fig. 4);
3. match notifications identify duplicate groups;
4. relocation co-locates the groups' replicas and updates the namespace;
5. each host's Single-Instance Store coalesces, reclaiming the bytes.

This is the end-to-end system the paper describes; the statistics-scale
experiments in :mod:`repro.experiments` use the lighter abstract pipeline
instead (they never materialize file bytes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.fingerprint import Fingerprint
from repro.core.keyring import User, UserDirectory
from repro.farsite.client import FarsiteClient
from repro.farsite.directory_group import DirectoryGroup
from repro.farsite.file_host import FileHost
from repro.farsite.namespace import Namespace
from repro.farsite.relocation import RelocationPlan, RelocationPlanner
from repro.salad.leaf import SaladLeaf
from repro.salad.records import SaladRecord
from repro.salad.salad import Salad, SaladConfig
from repro.sim.network import Network

#: Directory-group size for fault tolerance f=1 (3f+1).
GROUP_SIZE = 4


class FarsiteNode(SaladLeaf):
    """A machine that is simultaneously a SALAD leaf and a file host."""

    def __init__(self, identifier: int, network: Network, **salad_kwargs):
        super().__init__(identifier, network, **salad_kwargs)
        self.host = FileHost(identifier)
        self._published: set = set()

    def publish_fingerprints(self, min_size: int = 0) -> int:
        """Insert a SALAD record for each stored replica (Fig. 4).

        Idempotent: already-published fingerprints are skipped, so the DFC
        cycle can run periodically as new files arrive.
        """
        published = 0
        for fingerprint in self.host.fingerprints():
            if fingerprint.size < min_size or fingerprint in self._published:
                continue
            self._published.add(fingerprint)
            self.insert_record(
                SaladRecord(fingerprint=fingerprint, location=self.identifier)
            )
            published += 1
        return published


@dataclass
class DfcCycleReport:
    """Outcome of one deployment-wide DFC cycle."""

    records_published: int
    duplicate_groups: int
    migrations: int
    bytes_moved: int
    logical_bytes: int
    physical_bytes: int

    @property
    def reclaimed_bytes(self) -> int:
        return self.logical_bytes - self.physical_bytes


class FarsiteDeployment:
    """A whole Farsite system over one simulated network."""

    def __init__(
        self,
        machine_count: int,
        target_redundancy: float = 2.5,
        replication_factor: int = 3,
        seed: int = 0,
    ):
        if machine_count < GROUP_SIZE:
            raise ValueError(
                f"a deployment needs at least {GROUP_SIZE} machines for one "
                f"directory group, got {machine_count}"
            )
        self._rng = random.Random(seed)
        self.replication_factor = replication_factor

        # The SALAD fabric; nodes are FarsiteNodes rather than bare leaves.
        self.salad = Salad(
            SaladConfig(target_redundancy=target_redundancy, seed=seed, notify_limit=4)
        )
        self.salad.create_leaf = self._create_node  # type: ignore[assignment]
        self.salad.build(machine_count)
        self.nodes: Dict[int, FarsiteNode] = {
            identifier: leaf  # type: ignore[misc]
            for identifier, leaf in self.salad.leaves.items()
        }

        # Directory groups: consecutive runs of GROUP_SIZE machines.
        identifiers = sorted(self.nodes)
        self.groups: List[DirectoryGroup] = []
        for start in range(0, len(identifiers) - GROUP_SIZE + 1, GROUP_SIZE):
            members = identifiers[start : start + GROUP_SIZE]
            self.groups.append(DirectoryGroup(members, fault_tolerance=1))
        self.namespace = Namespace(self.groups)
        self.users = UserDirectory()
        self.planner = RelocationPlanner(replication_factor=replication_factor)

    # -- assembly ---------------------------------------------------------------

    def _create_node(self, identifier: Optional[int] = None) -> FarsiteNode:
        """Leaf factory handed to the Salad (keeps join protocol intact)."""
        if identifier is None:
            identifier = self.salad._fresh_identifier()
        node = FarsiteNode(
            identifier,
            self.salad.network,
            target_redundancy=self.salad.config.target_redundancy,
            dimensions=self.salad.config.dimensions,
            damping=self.salad.config.damping,
            notify_limit=self.salad.config.notify_limit,
            rng=random.Random(self._rng.getrandbits(64)),
        )
        self.salad.leaves[identifier] = node
        return node

    @property
    def hosts(self) -> Dict[int, FileHost]:
        return {identifier: node.host for identifier, node in self.nodes.items()}

    def create_user(self, name: str) -> User:
        return self.users.create_user(name, rng=random.Random(self._rng.getrandbits(64)))

    def client_for(self, user: User) -> FarsiteClient:
        return FarsiteClient(
            user,
            self.users,
            self.namespace,
            self.hosts,
            replication_factor=self.replication_factor,
            rng=random.Random(self._rng.getrandbits(64)),
        )

    # -- the DFC cycle -------------------------------------------------------------

    def _duplicate_groups(self) -> Dict[Fingerprint, Dict[str, List[int]]]:
        """Duplicate groups from this cycle's match notifications.

        A node that received a match for fingerprint f contributes every
        replica it knows of under the file ids recorded in the namespace.
        """
        matched: Dict[Fingerprint, set] = {}
        for node in self.nodes.values():
            for payload in node.matches:
                members = matched.setdefault(payload.fingerprint, set())
                members.add(node.identifier)
                members.add(payload.other_machine)
        groups: Dict[Fingerprint, Dict[str, List[int]]] = {}
        for path in self.namespace.all_paths():
            entry = self.namespace.lookup(path)
            if entry is None:
                continue
            hosts = list(entry.replica_hosts)
            holder_hosts = [h for h in hosts if h in self.nodes]
            if not holder_hosts:
                continue
            sample_host = self.nodes[holder_hosts[0]].host
            replica = sample_host.replica_info(entry.file_id)
            if replica is None:
                continue
            fingerprint = replica.fingerprint
            members = matched.get(fingerprint)
            if members is None or not (set(hosts) & members):
                continue
            groups.setdefault(fingerprint, {})[entry.file_id] = hosts
        return {fp: files for fp, files in groups.items() if len(files) > 1}

    def _apply_migrations(self, plan: RelocationPlan) -> None:
        moved_by_file: Dict[str, List[Tuple[int, int]]] = {}
        for migration in plan.migrations:
            source = self.nodes[migration.source_host].host
            target = self.nodes[migration.target_host].host
            ciphertext = source.fetch_replica(migration.file_id)
            if not migration.copy:
                source.drop_replica(migration.file_id)
            target.store_replica(migration.file_id, ciphertext)
            moved_by_file.setdefault(migration.file_id, []).append(
                (migration.source_host, migration.target_host, migration.copy)
            )
        # Update namespace metadata to the new replica locations.
        for path in self.namespace.all_paths():
            entry = self.namespace.lookup(path)
            if entry is None or entry.file_id not in moved_by_file:
                continue
            hosts = list(entry.replica_hosts)
            for source, target, copy in moved_by_file[entry.file_id]:
                if copy:
                    if target not in hosts:
                        hosts.append(target)
                elif source in hosts:
                    hosts[hosts.index(source)] = target
            self.namespace.set_replica_hosts(path, tuple(hosts))

    def run_dfc_cycle(self, min_size: int = 0) -> DfcCycleReport:
        """Publish fingerprints, discover duplicates, relocate, coalesce."""
        published = 0
        for node in self.nodes.values():
            if node.alive:
                published += node.publish_fingerprints(min_size=min_size)
        self.salad.network.run()

        groups = self._duplicate_groups()
        plan = self.planner.plan(groups)
        self._apply_migrations(plan)

        logical = sum(node.host.logical_bytes for node in self.nodes.values())
        physical = sum(node.host.physical_bytes for node in self.nodes.values())
        return DfcCycleReport(
            records_published=published,
            duplicate_groups=len(groups),
            migrations=plan.moved_replicas,
            bytes_moved=plan.bytes_moved(),
            logical_bytes=logical,
            physical_bytes=physical,
        )
