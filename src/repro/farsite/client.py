"""The Farsite client write/read path (paper section 2 + section 3).

Write path: the client convergently encrypts the file under the public keys
of its authorized readers, registers metadata with the responsible directory
group, and ships the encrypted replica to each assigned file host.  Read
path: fetch a replica from any host, unlock the hash key with the user's
private key, decrypt.

This ties every substrate together: convergent encryption (core), user keys
(keyring), directory groups and namespace, replica placement, file hosts,
and SIS coalescing -- the complete DFC story minus SALAD (which discovers
*cross-host* duplicates; see :mod:`repro.farsite.relocation`).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.convergent import (
    ConvergentCiphertext,
    convergent_decrypt,
    convergent_encrypt,
)
from repro.core.keyring import User, UserDirectory
from repro.farsite.file_host import FileHost
from repro.farsite.namespace import Namespace


class NoReplicaAvailableError(Exception):
    """Every replica host for the file is unreachable."""


@dataclass
class WriteReceipt:
    path: str
    file_id: str
    replica_hosts: Tuple[int, ...]
    coalesced_on: Tuple[int, ...]  # hosts where the replica coalesced via SIS


class FarsiteClient:
    """A user's gateway to the distributed file system."""

    _file_counter = itertools.count(1)

    def __init__(
        self,
        user: User,
        users: UserDirectory,
        namespace: Namespace,
        hosts: Dict[int, FileHost],
        replication_factor: int = 3,
        rng: Optional[random.Random] = None,
    ):
        self.user = user
        self.users = users
        self.namespace = namespace
        self.hosts = hosts
        self.replication_factor = replication_factor
        self._rng = rng or random.Random(0)

    # -- write ------------------------------------------------------------------

    def write_file(
        self,
        path: str,
        plaintext: bytes,
        readers: Optional[Sequence[str]] = None,
        replica_hosts: Optional[Sequence[int]] = None,
    ) -> WriteReceipt:
        """Encrypt, register, and replicate one file."""
        reader_names = list(readers or []) + [self.user.name]
        reader_keys = self.users.public_keys(dict.fromkeys(reader_names))
        ciphertext = convergent_encrypt(plaintext, reader_keys, rng=self._rng)

        if replica_hosts is None:
            count = min(self.replication_factor, len(self.hosts))
            replica_hosts = self._rng.sample(list(self.hosts), count)
        file_id = f"file-{next(self._file_counter):08d}"

        coalesced = []
        for host_id in replica_hosts:
            if self.hosts[host_id].store_replica(file_id, ciphertext):
                coalesced.append(host_id)

        self.namespace.create(
            path,
            file_id=file_id,
            size=len(plaintext),
            replica_hosts=tuple(replica_hosts),
            readers=tuple(dict.fromkeys(reader_names)),
        )
        return WriteReceipt(
            path=path,
            file_id=file_id,
            replica_hosts=tuple(replica_hosts),
            coalesced_on=tuple(coalesced),
        )

    # -- read -------------------------------------------------------------------

    def read_file(self, path: str) -> bytes:
        """Fetch any live replica and decrypt it with this user's key."""
        entry = self.namespace.lookup(path)
        if entry is None:
            raise FileNotFoundError(path)
        last_error: Optional[Exception] = None
        for host_id in entry.replica_hosts:
            host = self.hosts.get(host_id)
            if host is None:
                continue
            try:
                ciphertext = host.fetch_replica(entry.file_id)
            except KeyError as exc:
                last_error = exc
                continue
            return convergent_decrypt(ciphertext, self.user)
        raise NoReplicaAvailableError(
            f"no reachable replica of {path!r}"
        ) from last_error

    def delete_file(self, path: str) -> None:
        entry = self.namespace.lookup(path)
        if entry is None:
            raise FileNotFoundError(path)
        for host_id in entry.replica_hosts:
            host = self.hosts.get(host_id)
            if host is not None:
                host.drop_replica(entry.file_id)
        self.namespace.remove(path)
