"""Farsite substrates the DFC subsystem lives inside (paper section 2).

The paper identifies four problems; convergent encryption and SALAD solve
the first two, and problems (3) and (4) are delegated to other Farsite
components, which this package implements so the pipeline runs end to end:

- :mod:`repro.farsite.machine_id` -- machine identity: key pair, 20-byte
  identifier from the public-key hash, self-signed certificates.
- :mod:`repro.farsite.sis` -- the Single-Instance Store [7]: coalesces
  identical (ciphertext) files while retaining separate-file semantics.
- :mod:`repro.farsite.file_host` -- file hosts storing encrypted replicas.
- :mod:`repro.farsite.directory_group` -- quorum-replicated directory
  groups (Byzantine fault model: < 1/3 faulty members).
- :mod:`repro.farsite.placement` -- availability-driven replica placement [14].
- :mod:`repro.farsite.relocation` -- problem (3): co-locate replicas of
  identical files so hosts can coalesce them.
- :mod:`repro.farsite.client` -- the client write/read path with per-user
  keys and convergent encryption.
- :mod:`repro.farsite.namespace` -- the hierarchical namespace partitioned
  among directory groups.
"""

from repro.farsite.client import FarsiteClient
from repro.farsite.directory_group import DirectoryGroup
from repro.farsite.file_host import FileHost
from repro.farsite.machine_id import MachineIdentity
from repro.farsite.namespace import Namespace
from repro.farsite.placement import place_replicas
from repro.farsite.relocation import RelocationPlanner
from repro.farsite.sis import SingleInstanceStore

__all__ = [
    "DirectoryGroup",
    "FarsiteClient",
    "FileHost",
    "MachineIdentity",
    "Namespace",
    "RelocationPlanner",
    "SingleInstanceStore",
    "place_replicas",
]
