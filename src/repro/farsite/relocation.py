"""Duplicate-file relocation (paper problem 3).

"Relocating the replicas of files with identical content to a common set of
storage machines."  SALAD tells the system *which* files are identical;
this planner decides *where* their replicas should live so the per-host
Single-Instance Store can coalesce them, and computes the migrations to get
there.

Strategy: for each duplicate group, pick the R canonical hosts that already
hold the most replicas of the group's content (minimizing data movement),
then relocate every other replica of the group onto the canonical set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.fingerprint import Fingerprint


@dataclass(frozen=True)
class Migration:
    """Move the replica of *file_id* from one host to another."""

    file_id: str
    fingerprint: Fingerprint
    source_host: int
    target_host: int


@dataclass
class RelocationPlan:
    """The migrations plus the final replica hosts per duplicate group."""

    canonical_hosts: Dict[Fingerprint, Tuple[int, ...]]
    migrations: List[Migration]

    @property
    def moved_replicas(self) -> int:
        return len(self.migrations)

    def bytes_moved(self) -> int:
        return sum(m.fingerprint.size for m in self.migrations)


class RelocationPlanner:
    """Plans co-location of identical files' replicas."""

    def __init__(self, replication_factor: int = 3):
        if replication_factor < 1:
            raise ValueError(f"replication factor must be >= 1: {replication_factor}")
        self.replication_factor = replication_factor

    def plan(
        self,
        groups: Dict[Fingerprint, Dict[str, Sequence[int]]],
    ) -> RelocationPlan:
        """Plan migrations for duplicate groups.

        *groups* maps each duplicate fingerprint to ``{file_id: hosts}`` --
        every logical file with that content and the hosts of its replicas.
        """
        canonical: Dict[Fingerprint, Tuple[int, ...]] = {}
        migrations: List[Migration] = []
        for fingerprint, files in groups.items():
            # Count existing replicas per host; the R best-covered hosts
            # become canonical (fewest replica moves).
            coverage: Dict[int, int] = {}
            for hosts in files.values():
                for host in hosts:
                    coverage[host] = coverage.get(host, 0) + 1
            ranked = sorted(coverage, key=lambda h: (-coverage[h], h))
            hosts_needed = min(self.replication_factor, len(ranked))
            chosen = tuple(ranked[:hosts_needed])
            canonical[fingerprint] = chosen

            for file_id, hosts in files.items():
                hosts = list(hosts)
                extra_sources = [h for h in hosts if h not in chosen]
                missing_targets = [h for h in chosen if h not in hosts]
                # Pair off: each missing canonical host receives a replica
                # from a non-canonical host (a move, not a copy).
                for source, target in zip(extra_sources, missing_targets):
                    migrations.append(
                        Migration(
                            file_id=file_id,
                            fingerprint=fingerprint,
                            source_host=source,
                            target_host=target,
                        )
                    )
        return RelocationPlan(canonical_hosts=canonical, migrations=migrations)

    def apply(
        self,
        plan: RelocationPlan,
        replica_hosts: Dict[str, List[int]],
    ) -> None:
        """Apply migrations to a mutable ``file_id -> hosts`` map."""
        for migration in plan.migrations:
            hosts = replica_hosts[migration.file_id]
            hosts.remove(migration.source_host)
            hosts.append(migration.target_host)
