"""Duplicate-file relocation (paper problem 3).

"Relocating the replicas of files with identical content to a common set of
storage machines."  SALAD tells the system *which* files are identical;
this planner decides *where* their replicas should live so the per-host
Single-Instance Store can coalesce them, and computes the migrations to get
there.

Strategy: for each duplicate group, pick the R canonical hosts that already
hold the most replicas of the group's content (minimizing data movement),
then relocate every other replica of the group onto the canonical set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.fingerprint import Fingerprint


@dataclass(frozen=True)
class Migration:
    """Move (or copy) the replica of *file_id* from one host to another.

    A *copy* leaves the source replica in place: it re-replicates a file
    that holds fewer replicas than the canonical set is wide, so the
    unpaired canonical hosts still receive the content.
    """

    file_id: str
    fingerprint: Fingerprint
    source_host: int
    target_host: int
    copy: bool = False


@dataclass
class RelocationPlan:
    """The migrations plus the final replica hosts per duplicate group."""

    canonical_hosts: Dict[Fingerprint, Tuple[int, ...]]
    migrations: List[Migration]
    #: Replica slots per duplicate group that *no* migration can fill: the
    #: group's files collectively span fewer than R distinct hosts, so the
    #: canonical set itself is short.  Keyed by fingerprint, value = missing
    #: slots per file (R - |canonical|).  Empty when every group spans R+.
    shortfalls: Dict[Fingerprint, int] = field(default_factory=dict)

    @property
    def moved_replicas(self) -> int:
        return sum(1 for m in self.migrations if not m.copy)

    @property
    def copied_replicas(self) -> int:
        return sum(1 for m in self.migrations if m.copy)

    def total_shortfall(self, group_sizes: Dict[Fingerprint, int]) -> int:
        """File-weighted missing replica slots across all short groups."""
        return sum(
            missing * group_sizes.get(fp, 1) for fp, missing in self.shortfalls.items()
        )

    def bytes_moved(self) -> int:
        return sum(m.fingerprint.size for m in self.migrations)


class RelocationPlanner:
    """Plans co-location of identical files' replicas."""

    def __init__(self, replication_factor: int = 3):
        if replication_factor < 1:
            raise ValueError(f"replication factor must be >= 1: {replication_factor}")
        self.replication_factor = replication_factor

    def plan(
        self,
        groups: Dict[Fingerprint, Dict[str, Sequence[int]]],
    ) -> RelocationPlan:
        """Plan migrations for duplicate groups.

        *groups* maps each duplicate fingerprint to ``{file_id: hosts}`` --
        every logical file with that content and the hosts of its replicas.
        """
        canonical: Dict[Fingerprint, Tuple[int, ...]] = {}
        migrations: List[Migration] = []
        shortfalls: Dict[Fingerprint, int] = {}
        for fingerprint, files in groups.items():
            # Count existing replicas per host; the R best-covered hosts
            # become canonical (fewest replica moves).
            coverage: Dict[int, int] = {}
            for hosts in files.values():
                for host in hosts:
                    coverage[host] = coverage.get(host, 0) + 1
            ranked = sorted(coverage, key=lambda h: (-coverage[h], h))
            hosts_needed = min(self.replication_factor, len(ranked))
            chosen = tuple(ranked[:hosts_needed])
            canonical[fingerprint] = chosen
            if hosts_needed < self.replication_factor:
                shortfalls[fingerprint] = self.replication_factor - hosts_needed

            for file_id, hosts in files.items():
                hosts = list(hosts)
                extra_sources = [h for h in hosts if h not in chosen]
                missing_targets = [h for h in chosen if h not in hosts]
                # Pair off: each missing canonical host receives a replica
                # from a non-canonical host (a move, not a copy).
                paired = list(zip(extra_sources, missing_targets))
                for source, target in paired:
                    migrations.append(
                        Migration(
                            file_id=file_id,
                            fingerprint=fingerprint,
                            source_host=source,
                            target_host=target,
                        )
                    )
                # A file holding fewer replicas than the canonical set is
                # wide leaves canonical hosts unpaired.  Those hosts get
                # *copies* sourced from a replica the file keeps, so the
                # file ends on the full canonical set instead of silently
                # staying under-replicated.
                unpaired = missing_targets[len(paired) :]
                if unpaired:
                    kept = [h for h in hosts if h in chosen]
                    kept += [target for _, target in paired]
                    if kept:
                        for target in unpaired:
                            migrations.append(
                                Migration(
                                    file_id=file_id,
                                    fingerprint=fingerprint,
                                    source_host=kept[0],
                                    target_host=target,
                                    copy=True,
                                )
                            )
        return RelocationPlan(
            canonical_hosts=canonical, migrations=migrations, shortfalls=shortfalls
        )

    def apply(
        self,
        plan: RelocationPlan,
        replica_hosts: Dict[str, List[int]],
    ) -> None:
        """Apply migrations to a mutable ``file_id -> hosts`` map.

        Moves drop the source replica; copies leave it in place (their
        source stays a live replica, so removing it would corrupt the map).
        """
        for migration in plan.migrations:
            hosts = replica_hosts[migration.file_id]
            if not migration.copy:
                hosts.remove(migration.source_host)
            if migration.target_host not in hosts:
                hosts.append(migration.target_host)
