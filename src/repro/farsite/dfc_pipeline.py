"""The complete Duplicate-File-Coalescing pipeline (paper section 1).

Closes the loop across all four of the paper's problems:

1. convergent encryption makes identical files identical ciphertext
   (modeled by deterministic per-content blobs, see
   :mod:`repro.workload.content`);
2. SALAD identifies files with identical content (the :class:`DfcRun`
   phase);
3. the relocation planner co-locates replicas of identical files on a
   common host set;
4. each host's Single-Instance Store coalesces them, reclaiming the bytes.

The pipeline verifies the accounting end to end: the bytes the SIS layer
physically reclaims must be at least the union-find prediction computed from
the SALAD match notifications (the number every figure-7/8/13 experiment
reports), and equals it whenever each content's discoveries form a single
connected component.

Memory note: this pipeline materializes file bytes, so drive it with small
corpora (the statistics-only experiments never materialize content).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.space import reclaimed_bytes_from_matches
from repro.core.fingerprint import Fingerprint, synthetic_fingerprint
from repro.experiments.dfc_run import DfcConfig, DfcRun
from repro.farsite.file_host import FileHost
from repro.farsite.relocation import RelocationPlan, RelocationPlanner
from repro.farsite.sis import SingleInstanceStore
from repro.obs.spans import phase, span
from repro.perf import parallel_map
from repro.salad.storage import resolve_db_backend, resolve_db_dir
from repro.workload.content import synthetic_content
from repro.workload.corpus import Corpus


def _materialize_file(args: Tuple[int, int]) -> Tuple[bytes, Fingerprint]:
    """Per-file unit of work: produce the (encrypted) blob and its fingerprint.

    The blob stands in for the convergent ciphertext ``c_f``; both it and the
    fingerprint (the same ``synthetic_fingerprint`` the SALAD records carry)
    are pure functions of ``(content_id, size)``, so a pool worker and the
    serial loop produce identical results.
    """
    content_id, size = args
    blob = synthetic_content(content_id, size)
    return blob, synthetic_fingerprint(size, content_id)


@dataclass
class PipelineReport:
    """End-to-end outcome of one DFC pass."""

    total_bytes: int
    predicted_reclaimed: int  # from SALAD matches (union-find)
    physically_reclaimed: int  # measured at the SIS layer after relocation
    migrations: int
    bytes_moved: int

    @property
    def consumed_bytes(self) -> int:
        return self.total_bytes - self.physically_reclaimed

    @property
    def reclaimed_fraction(self) -> float:
        return self.physically_reclaimed / self.total_bytes if self.total_bytes else 0.0


class DfcPipeline:
    """Corpus -> hosts -> SALAD -> relocation -> SIS coalescing."""

    def __init__(self, corpus: Corpus, config: DfcConfig = DfcConfig()):
        self.corpus = corpus
        self.config = config
        self.run = DfcRun(corpus, config)
        self.hosts: Dict[int, FileHost] = {}
        #: file_id -> (fingerprint, current replica hosts)
        self.replicas: Dict[str, Tuple[Fingerprint, List[int]]] = {}
        self.planner = RelocationPlanner(replication_factor=1)
        self._sis_dir: Optional[os.PathLike] = None
        # Lifetime stage totals, harvested by collect_metrics().
        self._migrations = 0
        self._bytes_moved = 0

    def _make_sis(self, host_id: int) -> SingleInstanceStore:
        """One SIS per host; durable (sqlite-blob-backed) when the run's
        record-store backend is durable, so blob bytes leave RAM too."""
        if resolve_db_backend(self.config.db_backend) == "memory":
            return SingleInstanceStore()
        if self._sis_dir is None:
            self._sis_dir = resolve_db_dir(self.config.db_dir) / f"sis-{os.getpid()}"
            self._sis_dir.mkdir(parents=True, exist_ok=True)
        return SingleInstanceStore(db_path=self._sis_dir / f"sis-host-{host_id:040x}.sqlite")

    def close_stores(self) -> None:
        """Flush and release every host's SIS (and the SALAD's leaf stores)."""
        for host in self.hosts.values():
            host.sis.close()
        self.run.salad.close_databases()

    # -- phase 1: load every machine's files onto its host ---------------------

    def load_hosts(self) -> None:
        """Create one file host per machine and store its (encrypted) files.

        Each file's blob is the deterministic stand-in for its convergently
        encrypted content; identical contents yield identical blobs, which
        is the property SIS coalescing keys on.  Materialization and
        fingerprinting fan out over ``config.workers`` processes; results
        are applied in file order, so the loaded state is independent of the
        worker count.
        """
        self.run.build()
        tasks: List[Tuple[str, int, Tuple[int, int]]] = []
        for machine in self.corpus.machines:
            host_id = self.run.leaf_of_machine[machine.machine_index]
            self.hosts[host_id] = FileHost(host_id, sis=self._make_sis(host_id))
            for index, stat in enumerate(machine.files):
                file_id = f"m{machine.machine_index}-f{index}"
                tasks.append((file_id, host_id, (stat.content_id, stat.size)))
        materialized = parallel_map(
            _materialize_file,
            [task[2] for task in tasks],
            workers=self.config.workers,
        )
        for (file_id, host_id, _), (blob, fingerprint) in zip(tasks, materialized):
            self.hosts[host_id].sis.store(file_id, blob)
            self.replicas[file_id] = (fingerprint, [host_id])

    # -- phase 2: SALAD discovery -----------------------------------------------

    def discover(self, min_size: int = 0) -> int:
        """Publish fingerprint records and collect match notifications."""
        return self.run.insert_all(min_size=min_size)

    # -- phase 3: relocation -----------------------------------------------------

    def _duplicate_groups(self) -> Dict[Fingerprint, Dict[str, Sequence[int]]]:
        """Groups of co-coalescible files from the SALAD's discoveries.

        A file joins its fingerprint's group iff its machine appeared in at
        least one match notification for that fingerprint; copies SALAD
        never matched stay where they are (that is the lossiness every
        space figure measures).  All matched copies of one fingerprint form
        a single group -- a relocation pass holding the notifications
        co-locates them all, so the physical reclaim can slightly *exceed*
        the union-find prediction when discovery found two disjoint
        components of the same content.
        """
        from repro.analysis.space import UnionFind

        matched_machines: Dict[Fingerprint, set] = {}
        for machine, payload in self.run.salad.collected_matches():
            members = matched_machines.setdefault(payload.fingerprint, set())
            members.add(machine)
            members.add(payload.other_machine)
        groups: Dict[Fingerprint, Dict[str, Sequence[int]]] = {}
        for file_id, (fingerprint, hosts) in self.replicas.items():
            members = matched_machines.get(fingerprint)
            if members is None or hosts[0] not in members:
                continue
            groups.setdefault(fingerprint, {})[file_id] = list(hosts)
        return {fp: files for fp, files in groups.items() if len(files) > 1}

    def relocate(self) -> RelocationPlan:
        """Plan and execute the migrations that co-locate duplicates."""
        plan = self.planner.plan(self._duplicate_groups())
        self._migrations += plan.moved_replicas
        self._bytes_moved += plan.bytes_moved()
        for migration in plan.migrations:
            source = self.hosts[migration.source_host]
            target = self.hosts[migration.target_host]
            blob = source.sis.read(migration.file_id)
            source.sis.delete(migration.file_id)
            target.sis.store(migration.file_id, blob)
            fingerprint, hosts = self.replicas[migration.file_id]
            hosts.remove(migration.source_host)
            hosts.append(migration.target_host)
        return plan

    # -- phase 4: accounting -------------------------------------------------------

    def report(self, plan: RelocationPlan) -> PipelineReport:
        total = sum(
            stats.logical_bytes
            for stats in (host.sis.stats() for host in self.hosts.values())
        )
        physical = sum(host.sis.stats().physical_bytes for host in self.hosts.values())
        predicted = reclaimed_bytes_from_matches(self.run.salad.collected_matches())
        return PipelineReport(
            total_bytes=total,
            predicted_reclaimed=predicted,
            physically_reclaimed=total - physical,
            migrations=plan.moved_replicas,
            bytes_moved=plan.bytes_moved(),
        )

    def execute(self, min_size: int = 0) -> PipelineReport:
        """Run all four phases (as one span tree) and return the report."""
        with phase("dfc.pipeline"):
            with span("load_hosts") as load_span:
                self.load_hosts()
                load_span.set_ops(len(self.replicas))
            with span("discover") as discover_span:
                discover_span.set_ops(self.discover(min_size=min_size))
            with span("relocate") as relocate_span:
                plan = self.relocate()
                relocate_span.set_ops(plan.moved_replicas)
            with span("report"):
                return self.report(plan)

    def collect_metrics(self, registry):
        """Harvest pipeline stage totals and the underlying SALAD; returns it."""
        registry.counter("dfc.pipeline.hosts").inc(len(self.hosts))
        registry.counter("dfc.pipeline.files_loaded").inc(len(self.replicas))
        registry.counter("dfc.pipeline.migrations").inc(self._migrations)
        registry.counter("dfc.pipeline.bytes_moved").inc(self._bytes_moved)
        self.run.collect_metrics(registry)
        return registry
