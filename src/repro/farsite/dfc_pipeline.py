"""The complete Duplicate-File-Coalescing pipeline (paper section 1).

Closes the loop across all four of the paper's problems:

1. convergent encryption makes identical files identical ciphertext
   (modeled by deterministic per-content blobs, see
   :mod:`repro.workload.content`);
2. SALAD identifies files with identical content (the :class:`DfcRun`
   phase);
3. the relocation planner co-locates replicas of identical files on a
   common host set;
4. each host's Single-Instance Store coalesces them, reclaiming the bytes.

The pipeline verifies the accounting end to end: the bytes the SIS layer
physically reclaims must be at least the union-find prediction computed from
the SALAD match notifications (the number every figure-7/8/13 experiment
reports), and equals it whenever each content's discoveries form a single
connected component.

Memory note: this pipeline materializes file bytes, so drive it with small
corpora (the statistics-only experiments never materialize content).
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.space import reclaimed_bytes_from_matches
from repro.core.fingerprint import Fingerprint, synthetic_fingerprint
from repro.experiments.dfc_run import DfcConfig, DfcRun
from repro.farsite.file_host import FileHost
from repro.farsite.placement import (
    PlacementProblem,
    file_availability,
    place_replicas,
)
from repro.farsite.relocation import RelocationPlan, RelocationPlanner
from repro.farsite.sis import SingleInstanceStore
from repro.obs.spans import phase, span
from repro.obs.tracing import heartbeat
from repro.perf import parallel_map
from repro.salad.storage import resolve_db_backend, resolve_db_dir
from repro.workload.content import synthetic_content
from repro.workload.corpus import Corpus


def _materialize_file(args: Tuple[int, int]) -> Tuple[bytes, Fingerprint]:
    """Per-file unit of work: produce the (encrypted) blob and its fingerprint.

    The blob stands in for the convergent ciphertext ``c_f``; both it and the
    fingerprint (the same ``synthetic_fingerprint`` the SALAD records carry)
    are pure functions of ``(content_id, size)``, so a pool worker and the
    serial loop produce identical results.
    """
    content_id, size = args
    blob = synthetic_content(content_id, size)
    return blob, synthetic_fingerprint(size, content_id)


@dataclass
class PipelineReport:
    """End-to-end outcome of one DFC pass."""

    total_bytes: int
    predicted_reclaimed: int  # from SALAD matches (union-find)
    physically_reclaimed: int  # measured at the SIS layer after relocation
    migrations: int
    bytes_moved: int
    #: Replicas per logical file the run placed (Farsite's R).
    replication_factor: int = 1
    #: Re-replication copies the planner emitted for under-replicated files.
    copies: int = 0
    #: File-weighted replica slots no migration could fill (short groups).
    shortfall: int = 0
    #: Availability of the worst/mean file over its *final* replica hosts
    #: (after relocation -- co-locating duplicates changes these, which is
    #: the durability cost the fig-tradeoff frontier charts).
    min_availability: float = 1.0
    mean_availability: float = 1.0

    @property
    def consumed_bytes(self) -> int:
        return self.total_bytes - self.physically_reclaimed

    @property
    def reclaimed_fraction(self) -> float:
        return self.physically_reclaimed / self.total_bytes if self.total_bytes else 0.0


class DfcPipeline:
    """Corpus -> hosts -> SALAD -> relocation -> SIS coalescing."""

    def __init__(
        self,
        corpus: Corpus,
        config: DfcConfig = DfcConfig(),
        machine_availability: Optional[Dict[int, float]] = None,
    ):
        self.corpus = corpus
        self.config = config
        self.run = DfcRun(corpus, config)
        self.hosts: Dict[int, FileHost] = {}
        #: file_id -> (fingerprint, current replica hosts)
        self.replicas: Dict[str, Tuple[Fingerprint, List[int]]] = {}
        #: file_id -> the owner machine's leaf (the one that publishes the
        #: record into the SALAD, independent of where replicas are placed).
        self.publishers: Dict[str, int] = {}
        #: host id -> uptime fraction, driving replica placement and the
        #: availability telemetry.  Synthesized deterministically from the
        #: seed unless *machine_availability* (keyed by corpus
        #: machine_index) overrides it.
        self.availability: Dict[int, float] = {}
        self._availability_override = (
            dict(machine_availability) if machine_availability else None
        )
        self.planner = RelocationPlanner(
            replication_factor=config.replication_factor
        )
        self._sis_dir: Optional[os.PathLike] = None
        # Lifetime stage totals, harvested by collect_metrics().
        self._migrations = 0
        self._copies = 0
        self._shortfall = 0
        self._bytes_moved = 0

    def _make_sis(self, host_id: int) -> SingleInstanceStore:
        """One SIS per host; durable (sqlite-blob-backed) when the run's
        record-store backend is durable, so blob bytes leave RAM too."""
        if resolve_db_backend(self.config.db_backend) == "memory":
            return SingleInstanceStore()
        if self._sis_dir is None:
            self._sis_dir = resolve_db_dir(self.config.db_dir) / f"sis-{os.getpid()}"
            self._sis_dir.mkdir(parents=True, exist_ok=True)
        return SingleInstanceStore(db_path=self._sis_dir / f"sis-host-{host_id:040x}.sqlite")

    def close_stores(self) -> None:
        """Flush and release every host's SIS (and the SALAD's leaf stores)."""
        for host in self.hosts.values():
            host.sis.close()
        self.run.salad.close_databases()

    # -- phase 1: load every machine's files onto its host ---------------------

    def load_hosts(self) -> None:
        """Create one file host per machine and store its (encrypted) files.

        Each file's blob is the deterministic stand-in for its convergently
        encrypted content; identical contents yield identical blobs, which
        is the property SIS coalescing keys on.  Materialization and
        fingerprinting fan out over ``config.workers`` processes; results
        are applied in file order, so the loaded state is independent of the
        worker count.

        With ``config.replication_factor`` R >= 2 each file's blob lands on
        R distinct hosts chosen by the availability-driven hill-climbing
        placement (the owner machine still publishes the SALAD record); R=1
        keeps the seed's owner-hosted single copy bit-identical.
        """
        self.run.build()
        avail_rng = random.Random((self.config.seed << 8) ^ 0x5AFE)
        tasks: List[Tuple[str, int, Tuple[int, int]]] = []
        for machine in self.corpus.machines:
            host_id = self.run.leaf_of_machine[machine.machine_index]
            self.hosts[host_id] = FileHost(host_id, sis=self._make_sis(host_id))
            if self._availability_override is not None:
                self.availability[host_id] = self._availability_override[
                    machine.machine_index
                ]
            else:
                # Heterogeneous desktop uptimes (paper section 2): most
                # machines are up most of the time, none are always up.
                self.availability[host_id] = 0.30 + 0.65 * avail_rng.random()
            for index, stat in enumerate(machine.files):
                file_id = f"m{machine.machine_index}-f{index}"
                tasks.append((file_id, host_id, (stat.content_id, stat.size)))
        with span("place_replicas") as place_span:
            assignment = self._place_replicas([t[0] for t in tasks], [t[1] for t in tasks])
            place_span.set_ops(len(assignment))
        materialized = parallel_map(
            _materialize_file,
            [task[2] for task in tasks],
            workers=self.config.workers,
        )
        for (file_id, owner, _), (blob, fingerprint) in zip(tasks, materialized):
            hosts = assignment[file_id]
            for host in hosts:
                self.hosts[host].sis.store(file_id, blob)
            self.replicas[file_id] = (fingerprint, list(hosts))
            self.publishers[file_id] = owner

    def _place_replicas(
        self, file_ids: Sequence[str], owners: Sequence[int]
    ) -> Dict[str, Tuple[int, ...]]:
        """R distinct hosts per file (owner-hosted single copy when R=1)."""
        r = self.config.replication_factor
        if r == 1:
            return {fid: (owner,) for fid, owner in zip(file_ids, owners)}
        machines = len(self.hosts)
        if r > machines:
            raise ValueError(
                f"replication factor {r} exceeds the {machines} available hosts"
            )
        # Uniform capacity with slack: the greedy pass always finds R free
        # distinct hosts, and the hill climb has room to rearrange.
        slots = -(-len(file_ids) * r // machines) + r
        problem = PlacementProblem(
            machine_availability=self.availability,
            machine_capacity={host: slots for host in self.hosts},
            file_ids=list(file_ids),
            replication_factor=r,
        )
        placement = place_replicas(
            problem,
            rng=random.Random(self.config.seed + 17),
            swap_rounds=min(2000, 8 * len(file_ids)),
        )
        return placement.assignment

    # -- phase 2: SALAD discovery -----------------------------------------------

    def discover(self, min_size: int = 0) -> int:
        """Publish fingerprint records and collect match notifications."""
        return self.run.insert_all(min_size=min_size)

    # -- phase 3: relocation -----------------------------------------------------

    def _duplicate_groups(self) -> Dict[Fingerprint, Dict[str, Sequence[int]]]:
        """Groups of co-coalescible files from the SALAD's discoveries.

        A file joins its fingerprint's group iff its machine appeared in at
        least one match notification for that fingerprint; copies SALAD
        never matched stay where they are (that is the lossiness every
        space figure measures).  All matched copies of one fingerprint form
        a single group -- a relocation pass holding the notifications
        co-locates them all, so the physical reclaim can slightly *exceed*
        the union-find prediction when discovery found two disjoint
        components of the same content.
        """
        from repro.analysis.space import UnionFind

        matched_machines: Dict[Fingerprint, set] = {}
        for machine, payload in self.run.salad.collected_matches():
            members = matched_machines.setdefault(payload.fingerprint, set())
            members.add(machine)
            members.add(payload.other_machine)
        groups: Dict[Fingerprint, Dict[str, Sequence[int]]] = {}
        for file_id, (fingerprint, hosts) in self.replicas.items():
            members = matched_machines.get(fingerprint)
            # Membership keys on the *publishing* machine (the one whose
            # SALAD record could have matched), not on wherever placement
            # happened to put the first replica.
            if members is None or self.publishers[file_id] not in members:
                continue
            groups.setdefault(fingerprint, {})[file_id] = list(hosts)
        return {fp: files for fp, files in groups.items() if len(files) > 1}

    def relocate(self) -> RelocationPlan:
        """Plan and execute the migrations that co-locate duplicates."""
        groups = self._duplicate_groups()
        plan = self.planner.plan(groups)
        group_sizes = {fp: len(files) for fp, files in groups.items()}
        self._migrations += plan.moved_replicas
        self._copies += plan.copied_replicas
        self._shortfall += plan.total_shortfall(group_sizes)
        self._bytes_moved += plan.bytes_moved()
        for migration in plan.migrations:
            source = self.hosts[migration.source_host]
            target = self.hosts[migration.target_host]
            blob = source.sis.read(migration.file_id)
            if not migration.copy:
                source.sis.delete(migration.file_id)
            target.sis.store(migration.file_id, blob)
            fingerprint, hosts = self.replicas[migration.file_id]
            if not migration.copy:
                hosts.remove(migration.source_host)
            if migration.target_host not in hosts:
                hosts.append(migration.target_host)
        return plan

    # -- phase 4: accounting -------------------------------------------------------

    def report(self, plan: Optional[RelocationPlan] = None) -> PipelineReport:
        """Final accounting; *plan* is None when relocation was skipped
        (the dedup-off arms of the fig-tradeoff sweep)."""
        total = sum(
            stats.logical_bytes
            for stats in (host.sis.stats() for host in self.hosts.values())
        )
        physical = sum(host.sis.stats().physical_bytes for host in self.hosts.values())
        predicted = reclaimed_bytes_from_matches(self.run.salad.collected_matches())
        min_avail, mean_avail = self.availability_stats()
        return PipelineReport(
            total_bytes=total,
            predicted_reclaimed=predicted,
            physically_reclaimed=total - physical,
            migrations=plan.moved_replicas if plan else 0,
            bytes_moved=plan.bytes_moved() if plan else 0,
            replication_factor=self.config.replication_factor,
            copies=plan.copied_replicas if plan else 0,
            shortfall=self._shortfall,
            min_availability=min_avail,
            mean_availability=mean_avail,
        )

    def availability_stats(self) -> Tuple[float, float]:
        """(min, mean) file availability over the *current* replica hosts."""
        if not self.replicas:
            return 1.0, 1.0
        values = [
            file_availability(hosts, self.availability)
            for _, hosts in self.replicas.values()
        ]
        return min(values), sum(values) / len(values)

    def execute(self, min_size: int = 0) -> PipelineReport:
        """Run all four phases (as one span tree) and return the report."""
        with phase("dfc.pipeline"):
            with span("load_hosts") as load_span:
                self.load_hosts()
                load_span.set_ops(len(self.replicas))
            heartbeat("dfc.load_hosts", replicas=len(self.replicas))
            with span("discover") as discover_span:
                discovered = self.discover(min_size=min_size)
                discover_span.set_ops(discovered)
            heartbeat("dfc.discover", matches=discovered)
            with span("relocate") as relocate_span:
                plan = self.relocate()
                relocate_span.set_ops(plan.moved_replicas)
            heartbeat("dfc.relocate", moved_replicas=plan.moved_replicas)
            with span("report"):
                return self.report(plan)

    def collect_metrics(self, registry):
        """Harvest pipeline stage totals and the underlying SALAD; returns it."""
        registry.counter("dfc.pipeline.hosts").inc(len(self.hosts))
        registry.counter("dfc.pipeline.files_loaded").inc(len(self.replicas))
        registry.counter("dfc.pipeline.migrations").inc(self._migrations)
        registry.counter("dfc.pipeline.copies").inc(self._copies)
        registry.counter("dfc.pipeline.shortfall").inc(self._shortfall)
        registry.counter("dfc.pipeline.bytes_moved").inc(self._bytes_moved)
        self.run.collect_metrics(registry)
        return registry
