"""File hosts (paper section 2).

Every participating machine functions as a file host, "storing replicas of
encrypted file content on behalf of the system".  A host never sees
plaintext: it stores convergently encrypted blobs, coalesces identical ones
through its Single-Instance Store, and keeps the per-user key metadata
(which is small) alongside each replica.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.convergent import ConvergentCiphertext
from repro.core.fingerprint import Fingerprint, fingerprint_of
from repro.farsite.sis import SingleInstanceStore


@dataclass
class ReplicaInfo:
    """Metadata a host keeps per stored replica."""

    file_id: str
    fingerprint: Fingerprint
    metadata: Dict[str, bytes]  # per-user encrypted hash keys (mu_u)


class FileHost:
    """One machine's replica store: SIS-backed encrypted blobs plus metadata."""

    def __init__(self, machine_identifier: int, sis: Optional[SingleInstanceStore] = None):
        self.machine_identifier = machine_identifier
        self.sis = sis if sis is not None else SingleInstanceStore()
        self._replicas: Dict[str, ReplicaInfo] = {}

    # -- replica management --------------------------------------------------

    def store_replica(self, file_id: str, ciphertext: ConvergentCiphertext) -> bool:
        """Store one file's encrypted replica; returns True if it coalesced.

        The host computes the fingerprint of the *ciphertext* -- it cannot
        (and need not) see plaintext.  Identical plaintexts produce identical
        ciphertexts under convergent encryption, so their replicas coalesce
        in the SIS.
        """
        coalesced = self.sis.store(file_id, ciphertext.data)
        self._replicas[file_id] = ReplicaInfo(
            file_id=file_id,
            fingerprint=fingerprint_of(ciphertext.data),
            metadata=dict(ciphertext.metadata),
        )
        return coalesced

    def fetch_replica(self, file_id: str) -> ConvergentCiphertext:
        info = self._replicas[file_id]
        return ConvergentCiphertext(data=self.sis.read(file_id), metadata=info.metadata)

    def drop_replica(self, file_id: str) -> None:
        if file_id in self._replicas:
            self.sis.delete(file_id)
            del self._replicas[file_id]

    def add_reader_key(self, file_id: str, user: str, encrypted_key: bytes) -> None:
        """Attach another authorized reader's mu_u to a stored replica."""
        self._replicas[file_id].metadata[user] = encrypted_key

    # -- DFC hooks -------------------------------------------------------------

    def fingerprints(self) -> List[Fingerprint]:
        """Fingerprints of all stored replicas (what the machine publishes
        into the SALAD)."""
        return [info.fingerprint for info in self._replicas.values()]

    def replica_ids(self) -> List[str]:
        return list(self._replicas)

    def replica_info(self, file_id: str) -> Optional[ReplicaInfo]:
        """Metadata for one stored replica, or None if absent."""
        return self._replicas.get(file_id)

    def holds_fingerprint(self, fingerprint: Fingerprint) -> List[str]:
        return [
            info.file_id
            for info in self._replicas.values()
            if info.fingerprint == fingerprint
        ]

    # -- space accounting ------------------------------------------------------

    @property
    def logical_bytes(self) -> int:
        return self.sis.stats().logical_bytes

    @property
    def physical_bytes(self) -> int:
        return self.sis.stats().physical_bytes

    @property
    def reclaimed_bytes(self) -> int:
        return self.sis.stats().reclaimed_bytes

    def __len__(self) -> int:
        return len(self._replicas)
