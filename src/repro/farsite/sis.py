"""Single-Instance Store (paper problem 4; Bolosky et al. [7]).

Coalesces identical files "while maintaining the semantics of separate
files": logically distinct files whose contents are identical share one
backing blob; writing through any link breaks the sharing (copy-on-write),
leaving every other link untouched.

In Farsite the stored contents are *convergently encrypted* ciphertexts, so
identical plaintexts -- even encrypted under different users' keys -- arrive
as identical blobs and coalesce (section 3: "store them in the space of a
single file (plus a small amount of space per user's key)").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.crypto.hashing import content_hash


class NoSuchFileError(KeyError):
    """The named link does not exist in this store."""


@dataclass
class _Blob:
    data: bytes
    link_count: int = 0


@dataclass
class SisStats:
    """Space accounting for one store."""

    logical_bytes: int = 0  # sum over links of their file size
    physical_bytes: int = 0  # sum over blobs of their size

    @property
    def reclaimed_bytes(self) -> int:
        return self.logical_bytes - self.physical_bytes


class SingleInstanceStore:
    """A content-addressed store with separate-file (link) semantics."""

    def __init__(self) -> None:
        self._blobs: Dict[bytes, _Blob] = {}
        self._links: Dict[str, bytes] = {}  # link name -> blob digest

    # -- write/read -----------------------------------------------------------

    def store(self, name: str, data: bytes) -> bool:
        """Store *data* under link *name*; returns True if it coalesced.

        If a blob with identical content already exists, the link shares it.
        Re-storing an existing name first releases its old blob.
        """
        if name in self._links:
            self._release(name)
        digest = content_hash(data)
        blob = self._blobs.get(digest)
        coalesced = blob is not None
        if blob is None:
            blob = _Blob(data=bytes(data))
            self._blobs[digest] = blob
        blob.link_count += 1
        self._links[name] = digest
        return coalesced

    def read(self, name: str) -> bytes:
        """Read through a link; separate-file semantics, shared storage."""
        return self._blobs[self._digest_of(name)].data

    def write(self, name: str, data: bytes) -> None:
        """Copy-on-write: writing one link never disturbs its sharers."""
        if name not in self._links:
            raise NoSuchFileError(name)
        self.store(name, data)

    def delete(self, name: str) -> None:
        if name not in self._links:
            raise NoSuchFileError(name)
        self._release(name)
        del self._links[name]

    # -- internals -------------------------------------------------------------

    def _digest_of(self, name: str) -> bytes:
        try:
            return self._links[name]
        except KeyError:
            raise NoSuchFileError(name) from None

    def _release(self, name: str) -> None:
        digest = self._links[name]
        blob = self._blobs[digest]
        blob.link_count -= 1
        if blob.link_count == 0:
            del self._blobs[digest]

    # -- introspection -----------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._links

    def __len__(self) -> int:
        return len(self._links)

    def link_count(self, name: str) -> int:
        """How many links share this file's blob (1 = not coalesced)."""
        return self._blobs[self._digest_of(name)].link_count

    def blob_count(self) -> int:
        return len(self._blobs)

    def stats(self) -> SisStats:
        logical = sum(len(self._blobs[d].data) for d in self._links.values())
        physical = sum(len(b.data) for b in self._blobs.values())
        return SisStats(logical_bytes=logical, physical_bytes=physical)
