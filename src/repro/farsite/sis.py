"""Single-Instance Store (paper problem 4; Bolosky et al. [7]).

Coalesces identical files "while maintaining the semantics of separate
files": logically distinct files whose contents are identical share one
backing blob; writing through any link breaks the sharing (copy-on-write),
leaving every other link untouched.

In Farsite the stored contents are *convergently encrypted* ciphertexts, so
identical plaintexts -- even encrypted under different users' keys -- arrive
as identical blobs and coalesce (section 3: "store them in the space of a
single file (plus a small amount of space per user's key)").

Blobs live in a pluggable backend: the default keeps them in RAM; passing
``db_path`` stores them in a single-file sqlite3 database (digest-keyed,
with link counts and sizes), so a DFC pipeline pass over a large corpus
holds only link metadata in memory -- the same RAM-bounding move the SALAD
record stores make in :mod:`repro.salad.storage`.
"""

from __future__ import annotations

import os
import sqlite3
from dataclasses import dataclass
from typing import Dict, Optional

from repro.crypto.hashing import content_hash


class NoSuchFileError(KeyError):
    """The named link does not exist in this store."""


@dataclass
class _Blob:
    data: bytes
    link_count: int = 0


class _MemoryBlobs:
    """The default blob backend: everything in RAM."""

    def __init__(self) -> None:
        self._blobs: Dict[bytes, _Blob] = {}

    def get(self, digest: bytes) -> bytes:
        return self._blobs[digest].data

    def size(self, digest: bytes) -> int:
        return len(self._blobs[digest].data)

    def add_link(self, digest: bytes, data: bytes) -> bool:
        """Reference *data* under *digest*; returns True if it coalesced."""
        blob = self._blobs.get(digest)
        coalesced = blob is not None
        if blob is None:
            blob = _Blob(data=bytes(data))
            self._blobs[digest] = blob
        blob.link_count += 1
        return coalesced

    def drop_link(self, digest: bytes) -> None:
        blob = self._blobs[digest]
        blob.link_count -= 1
        if blob.link_count == 0:
            del self._blobs[digest]

    def link_count(self, digest: bytes) -> int:
        return self._blobs[digest].link_count

    def __len__(self) -> int:
        return len(self._blobs)

    def physical_bytes(self) -> int:
        return sum(len(b.data) for b in self._blobs.values())

    def close(self) -> None:
        pass


class _SqliteBlobs:
    """Blob backend over a single-file sqlite3 database.

    One row per distinct content: ``(digest, data, size, link_count)``.
    The size column lets space accounting avoid loading blob bytes.
    """

    def __init__(self, path: os.PathLike):
        self._conn = sqlite3.connect(os.fspath(path))
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS blobs ("
            " digest BLOB PRIMARY KEY,"
            " data BLOB NOT NULL,"
            " size INTEGER NOT NULL,"
            " link_count INTEGER NOT NULL"
            ") WITHOUT ROWID"
        )
        self._conn.commit()

    def get(self, digest: bytes) -> bytes:
        row = self._conn.execute(
            "SELECT data FROM blobs WHERE digest = ?", (digest,)
        ).fetchone()
        if row is None:
            raise KeyError(digest)
        return row[0]

    def size(self, digest: bytes) -> int:
        row = self._conn.execute(
            "SELECT size FROM blobs WHERE digest = ?", (digest,)
        ).fetchone()
        if row is None:
            raise KeyError(digest)
        return row[0]

    def add_link(self, digest: bytes, data: bytes) -> bool:
        cursor = self._conn.execute(
            "UPDATE blobs SET link_count = link_count + 1 WHERE digest = ?", (digest,)
        )
        if cursor.rowcount:
            return True
        self._conn.execute(
            "INSERT INTO blobs (digest, data, size, link_count) VALUES (?, ?, ?, 1)",
            (digest, bytes(data), len(data)),
        )
        return False

    def drop_link(self, digest: bytes) -> None:
        self._conn.execute(
            "UPDATE blobs SET link_count = link_count - 1 WHERE digest = ?", (digest,)
        )
        self._conn.execute("DELETE FROM blobs WHERE digest = ? AND link_count <= 0", (digest,))

    def link_count(self, digest: bytes) -> int:
        row = self._conn.execute(
            "SELECT link_count FROM blobs WHERE digest = ?", (digest,)
        ).fetchone()
        if row is None:
            raise KeyError(digest)
        return row[0]

    def __len__(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM blobs").fetchone()[0]

    def physical_bytes(self) -> int:
        row = self._conn.execute("SELECT COALESCE(SUM(size), 0) FROM blobs").fetchone()
        return row[0]

    def close(self) -> None:
        self._conn.commit()
        self._conn.close()


@dataclass
class SisStats:
    """Space accounting for one store."""

    logical_bytes: int = 0  # sum over links of their file size
    physical_bytes: int = 0  # sum over blobs of their size

    @property
    def reclaimed_bytes(self) -> int:
        return self.logical_bytes - self.physical_bytes


class SingleInstanceStore:
    """A content-addressed store with separate-file (link) semantics.

    With ``db_path`` set, blob bytes live in sqlite instead of RAM; link
    metadata (name -> digest) stays in memory either way.  Observable
    behavior is identical across backends.
    """

    def __init__(self, db_path: Optional[os.PathLike] = None) -> None:
        self._blobs = _SqliteBlobs(db_path) if db_path is not None else _MemoryBlobs()
        self._links: Dict[str, bytes] = {}  # link name -> blob digest

    # -- write/read -----------------------------------------------------------

    def store(self, name: str, data: bytes) -> bool:
        """Store *data* under link *name*; returns True if it coalesced.

        If a blob with identical content already exists, the link shares it.
        Re-storing an existing name first releases its old blob.
        """
        if name in self._links:
            self._release(name)
        digest = content_hash(data)
        coalesced = self._blobs.add_link(digest, data)
        self._links[name] = digest
        return coalesced

    def read(self, name: str) -> bytes:
        """Read through a link; separate-file semantics, shared storage."""
        return self._blobs.get(self._digest_of(name))

    def write(self, name: str, data: bytes) -> None:
        """Copy-on-write: writing one link never disturbs its sharers."""
        if name not in self._links:
            raise NoSuchFileError(name)
        self.store(name, data)

    def delete(self, name: str) -> None:
        if name not in self._links:
            raise NoSuchFileError(name)
        self._release(name)
        del self._links[name]

    # -- internals -------------------------------------------------------------

    def _digest_of(self, name: str) -> bytes:
        try:
            return self._links[name]
        except KeyError:
            raise NoSuchFileError(name) from None

    def _release(self, name: str) -> None:
        self._blobs.drop_link(self._links[name])

    # -- introspection -----------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._links

    def __len__(self) -> int:
        return len(self._links)

    def link_count(self, name: str) -> int:
        """How many links share this file's blob (1 = not coalesced)."""
        return self._blobs.link_count(self._digest_of(name))

    def blob_count(self) -> int:
        return len(self._blobs)

    def stats(self) -> SisStats:
        logical = sum(self._blobs.size(d) for d in self._links.values())
        physical = self._blobs.physical_bytes()
        return SisStats(logical_bytes=logical, physical_bytes=physical)

    def close(self) -> None:
        """Release the blob backend (durable stores flush to disk)."""
        self._blobs.close()
