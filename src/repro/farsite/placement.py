"""File-replica placement (paper problem 3 substrate; Douceur-Wattenhofer [14]).

Farsite places R replicas of each file on machines with heterogeneous
availability; the placement goal of [14] is to maximize the worst-case (and
mean) file availability.  We implement the swap-based hill-climbing strategy
from that line of work:

1. start from a capacity-respecting greedy placement;
2. repeatedly *swap* replicas between the currently most-available and
   least-available files when doing so raises the minimum file availability.

File availability for failure-independent machines is
``1 - prod(1 - a_i)`` over the replica hosts' availabilities ``a_i``
(a file is available if any replica host is up).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class PlacementProblem:
    """Machines with availabilities/capacities, files needing R replicas."""

    machine_availability: Dict[int, float]  # machine id -> uptime fraction
    machine_capacity: Dict[int, int]  # machine id -> replica slots
    file_ids: Sequence[str]
    replication_factor: int = 3

    def __post_init__(self) -> None:
        if self.replication_factor < 1:
            raise ValueError(
                f"replication factor must be >= 1: {self.replication_factor}"
            )
        for mid, a in self.machine_availability.items():
            # An availability outside (0, 1] (including NaN, which fails
            # every comparison) would make file_availability return
            # out-of-range probabilities and silently corrupt every
            # min/mean-availability figure downstream.
            if not 0.0 < a <= 1.0:
                raise ValueError(f"availability of {mid:#x} must be in (0,1]: {a}")
        for mid, slots in self.machine_capacity.items():
            if slots < 0:
                raise ValueError(f"capacity of {mid:#x} must be >= 0: {slots}")
            if mid not in self.machine_availability:
                raise ValueError(f"machine {mid:#x} has capacity but no availability")
        total_capacity = sum(self.machine_capacity.values())
        demand = len(self.file_ids) * self.replication_factor
        if demand > total_capacity:
            raise ValueError(
                f"demand {demand} replica slots exceeds capacity {total_capacity}"
            )


def file_availability(hosts: Sequence[int], availability: Dict[int, float]) -> float:
    """P(at least one replica host is up), failure-independent machines."""
    down = 1.0
    for host in hosts:
        down *= 1.0 - availability[host]
    return 1.0 - down


@dataclass
class Placement:
    """A replica assignment: file id -> machine identifiers."""

    assignment: Dict[str, Tuple[int, ...]]
    availability: Dict[int, float]

    def file_availabilities(self) -> Dict[str, float]:
        return {
            fid: file_availability(hosts, self.availability)
            for fid, hosts in self.assignment.items()
        }

    @property
    def min_availability(self) -> float:
        avail = self.file_availabilities()
        return min(avail.values()) if avail else 1.0

    @property
    def mean_availability(self) -> float:
        avail = self.file_availabilities()
        return sum(avail.values()) / len(avail) if avail else 1.0


def place_replicas(
    problem: PlacementProblem,
    rng: Optional[random.Random] = None,
    swap_rounds: int = 2000,
) -> Placement:
    """Greedy placement plus min-availability hill climbing."""
    rng = rng or random.Random(0)
    capacity = dict(problem.machine_capacity)
    availability = problem.machine_availability
    r = problem.replication_factor

    # Greedy: place each file on the R highest-availability machines with
    # free capacity, round-robin so early files don't hoard the good hosts.
    machines_by_avail = sorted(availability, key=lambda m: -availability[m])
    assignment: Dict[str, List[int]] = {}
    cursor = 0
    for fid in problem.file_ids:
        hosts: List[int] = []
        scanned = 0
        while len(hosts) < r and scanned < 2 * len(machines_by_avail):
            machine = machines_by_avail[cursor % len(machines_by_avail)]
            cursor += 1
            scanned += 1
            if capacity[machine] > 0 and machine not in hosts:
                capacity[machine] -= 1
                hosts.append(machine)
        if len(hosts) < r:
            # Fall back to any machine with capacity.
            for machine in machines_by_avail:
                if capacity[machine] > 0 and machine not in hosts:
                    capacity[machine] -= 1
                    hosts.append(machine)
                    if len(hosts) == r:
                        break
        if len(hosts) < r:
            raise RuntimeError(f"could not place {r} replicas of {fid}")
        assignment[fid] = hosts

    # Hill climbing: swap one replica between the min-availability file and
    # a random other file when that raises the minimum of the pair.  Only
    # the two swapped files' availabilities change per round, so the cache
    # updates two entries instead of rescanning every file (the rescan made
    # the climb O(files x swap_rounds); same floats, same tie-breaks, so
    # the resulting assignment is identical under a fixed RNG).
    fids = list(assignment)
    avail = {fid: file_availability(assignment[fid], availability) for fid in fids}
    for _ in range(swap_rounds):
        if len(fids) < 2:
            break
        low = min(fids, key=lambda f: avail[f])
        high = rng.choice(fids)
        if high == low:
            continue
        improved = _try_swap(assignment[low], assignment[high], availability)
        if improved is not None:
            assignment[low], assignment[high] = improved
            avail[low] = file_availability(assignment[low], availability)
            avail[high] = file_availability(assignment[high], availability)

    return Placement(
        assignment={fid: tuple(hosts) for fid, hosts in assignment.items()},
        availability=dict(availability),
    )


def _try_swap(
    low_hosts: List[int],
    high_hosts: List[int],
    availability: Dict[int, float],
) -> Optional[Tuple[List[int], List[int]]]:
    """Best single host swap that raises min(pair availability), if any."""
    base = min(
        file_availability(low_hosts, availability),
        file_availability(high_hosts, availability),
    )
    best = None
    best_gain = 0.0
    for i, lo in enumerate(low_hosts):
        for j, hi in enumerate(high_hosts):
            if hi in low_hosts or lo in high_hosts:
                continue
            new_low = low_hosts[:i] + [hi] + low_hosts[i + 1 :]
            new_high = high_hosts[:j] + [lo] + high_hosts[j + 1 :]
            new_min = min(
                file_availability(new_low, availability),
                file_availability(new_high, availability),
            )
            gain = new_min - base
            if gain > best_gain:
                best_gain = gain
                best = (new_low, new_high)
    return best
