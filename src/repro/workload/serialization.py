"""Corpus persistence: save and load corpora as compact JSON.

Lets a scanned or generated corpus be shared and re-analyzed without
re-running the (seeded) generator or re-scanning disks -- the moral
equivalent of the paper's recorded scan dataset.  The format is versioned
and self-describing:

.. code-block:: json

    {"format": "repro-corpus", "version": 1,
     "machines": [{"index": 0, "files": [[content_id, size], ...]}, ...]}
"""

from __future__ import annotations

import gzip
import json
from typing import IO

from repro.workload.corpus import Corpus, FileStat, MachineScan

FORMAT_NAME = "repro-corpus"
FORMAT_VERSION = 1


class CorpusFormatError(ValueError):
    """The file is not a recognizable corpus dump."""


def corpus_to_dict(corpus: Corpus) -> dict:
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "machines": [
            {
                "index": machine.machine_index,
                "files": [[f.content_id, f.size] for f in machine.files],
            }
            for machine in corpus.machines
        ],
    }


def corpus_from_dict(data: dict) -> Corpus:
    if not isinstance(data, dict) or data.get("format") != FORMAT_NAME:
        raise CorpusFormatError("not a repro corpus dump")
    if data.get("version") != FORMAT_VERSION:
        raise CorpusFormatError(
            f"unsupported corpus format version: {data.get('version')!r}"
        )
    machines = []
    for machine in data["machines"]:
        files = [
            FileStat(content_id=int(content_id), size=int(size))
            for content_id, size in machine["files"]
        ]
        machines.append(MachineScan(machine_index=int(machine["index"]), files=files))
    return Corpus(machines=machines)


def _open(path: str, mode: str) -> IO:
    if path.endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def save_corpus(corpus: Corpus, path: str) -> None:
    """Write a corpus to *path* (gzip-compressed if it ends in .gz)."""
    with _open(path, "w") as f:
        json.dump(corpus_to_dict(corpus), f, separators=(",", ":"))


def load_corpus(path: str) -> Corpus:
    """Read a corpus written by :func:`save_corpus`."""
    with _open(path, "r") as f:
        return corpus_from_dict(json.load(f))
