"""Statistical distributions underlying the synthetic corpus.

Calibration targets come from the paper (section 5) and the authors' file-
system measurement studies [8, 13]:

- File sizes are approximately lognormal with a median of a few kilobytes
  and a mean near 65 KB (685 GB / 10.5M files), i.e. a heavy upper tail.
- Cross-machine duplication is highly skewed: most duplicated contents exist
  on a handful of machines, while operating-system and application files
  appear on nearly every machine.  We model group copy-counts with a
  bounded Zipf distribution plus an explicit "system content" class that is
  present on all machines.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import List, Sequence


def lognormal_size(
    rng: random.Random,
    median: float,
    sigma: float,
    min_size: int = 1,
    max_size: int = 1 << 31,
) -> int:
    """A file size drawn from a clamped lognormal distribution.

    *median* is the distribution median (e**mu); *sigma* is the shape in
    ln-space.  The mean is ``median * exp(sigma**2 / 2)``.
    """
    if median <= 0 or sigma < 0:
        raise ValueError(f"median must be positive and sigma non-negative")
    size = rng.lognormvariate(math.log(median), sigma)
    return max(min_size, min(max_size, int(round(size))))


class BoundedZipf:
    """Zipf-distributed integers on [lo, hi]: P(k) proportional to k**-alpha.

    Sampling is inverse-CDF over precomputed cumulative weights, O(log n)
    per draw.
    """

    def __init__(self, lo: int, hi: int, alpha: float):
        if lo < 1 or hi < lo:
            raise ValueError(f"need 1 <= lo <= hi, got [{lo}, {hi}]")
        if alpha <= 0:
            raise ValueError(f"alpha must be positive: {alpha}")
        self.lo = lo
        self.hi = hi
        self.alpha = alpha
        self._cumulative: List[float] = []
        total = 0.0
        for k in range(lo, hi + 1):
            total += k**-alpha
            self._cumulative.append(total)
        self._total = total

    def sample(self, rng: random.Random) -> int:
        u = rng.random() * self._total
        idx = bisect.bisect_left(self._cumulative, u)
        return self.lo + min(idx, len(self._cumulative) - 1)

    def mean(self) -> float:
        """Exact mean of the bounded distribution."""
        num = sum(k * k**-self.alpha for k in range(self.lo, self.hi + 1))
        return num / self._total


def poisson_count(rng: random.Random, rate: float) -> int:
    """A Poisson-distributed count with mean *rate* (arrivals per window).

    Knuth's product-of-uniforms method, O(rate) per draw; rates above the
    exp() underflow range are split additively (Poisson(a+b) is the sum of
    independent Poisson(a) and Poisson(b)).
    """
    if rate < 0:
        raise ValueError(f"rate must be non-negative: {rate}")
    count = 0
    while rate > 500:
        count += _poisson_knuth(rng, 500.0)
        rate -= 500.0
    return count + _poisson_knuth(rng, rate)


def _poisson_knuth(rng: random.Random, rate: float) -> int:
    if rate == 0:
        return 0
    limit = math.exp(-rate)
    count = 0
    product = rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count


def machine_file_count(
    rng: random.Random, mean_files: float, spread_sigma: float = 0.5
) -> int:
    """Per-machine file count: lognormal spread around the mean.

    Desktop file systems vary widely in size [13]; a lognormal multiplier
    with sigma ~0.5 reproduces that variation without extreme outliers.
    """
    if mean_files <= 0:
        raise ValueError(f"mean file count must be positive: {mean_files}")
    # E[lognormal(mu, sigma)] = exp(mu + sigma^2/2) = 1 when mu = -sigma^2/2.
    multiplier = rng.lognormvariate(-spread_sigma**2 / 2, spread_sigma)
    return max(1, int(round(mean_files * multiplier)))


def weighted_sample_without_replacement(
    rng: random.Random, population: Sequence[int], count: int
) -> List[int]:
    """Uniform sample of *count* distinct items (thin wrapper, clamped)."""
    count = min(count, len(population))
    return rng.sample(list(population), count)
