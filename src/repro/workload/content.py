"""Deterministic synthetic file contents.

The corpus describes files abstractly as ``(content_id, size)``; when an
experiment needs actual bytes (to exercise the Single-Instance Store or the
encryption path end to end), this module materializes them: equal content
identities yield byte-identical data, different identities yield different
data, and generation is cheap (one hash seed expanded by repetition).

The materialized bytes stand in for the *convergently encrypted* blob of the
file: under convergent encryption, identical plaintexts produce identical
ciphertexts, so identity of these blobs is exactly the property every
downstream component (fingerprinting, SIS coalescing) relies on.
"""

from __future__ import annotations

import hashlib

_SEED_BYTES = 64


def synthetic_content(content_id: int, size: int) -> bytes:
    """Deterministic bytes for a synthetic content identity.

    The construction mirrors :func:`repro.core.fingerprint.synthetic_fingerprint`:
    a hash of the ``(size, content_id)`` token, expanded by counter-mode
    hashing to the requested length.
    """
    if size < 0:
        raise ValueError(f"size cannot be negative: {size}")
    if size == 0:
        return b""
    token = b"synthetic-content:%d:%d" % (size, content_id)
    out = bytearray()
    counter = 0
    while len(out) < size:
        out.extend(hashlib.sha512(token + counter.to_bytes(8, "big")).digest())
        counter += 1
    return bytes(out[:size])
