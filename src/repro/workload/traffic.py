"""Skewed live traffic: Zipf content popularity x Poisson arrivals.

The corpus generator models a *standing* population of files; this module
models the *publish stream* that feeds the DFC/SALAD insert path while the
system is up.  Two classic ingredients (the same pair that drives discrete
CDN simulations):

- **Zipf content popularity** -- each arrival publishes one content drawn
  from a bounded Zipf over a fixed catalog, so a handful of hot contents
  (OS images, shared applications) account for most publishes.  Equal
  contents yield equal fingerprints (``synthetic_fingerprint``), so hot
  contents become hot *duplicate clusters* that stress the few SALAD cells
  owning their fingerprints -- exactly the load-concentration effect
  fig_topology measures.
- **Poisson arrivals** -- the number of publishes per driver wave is
  Poisson-distributed around ``arrival_rate``, the memoryless model of
  independent desktops deciding to write files.

Calibration follows the paper's measurement studies [8]/[13] through the
same lognormal size model the corpus generator uses (kilobyte medians,
sigma ~2 heavy tail; see :class:`repro.workload.generator.CorpusSpec`), and
the publisher machine is drawn uniformly -- every desktop writes; *what*
they write is what is skewed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.fingerprint import synthetic_fingerprint
from repro.salad.records import SaladRecord
from repro.workload.distributions import BoundedZipf, lognormal_size, poisson_count


@dataclass(frozen=True)
class TrafficSpec:
    """Shape of the skewed publish stream."""

    #: Catalog size: distinct publishable contents.
    contents: int = 512
    #: Zipf exponent of content popularity (1.0-1.2 is the classic CDN
    #: range; the corpus generator's 2.2 models copy *counts*, not request
    #: popularity, so the default here is deliberately flatter).
    zipf_alpha: float = 1.1
    #: Mean publishes per wave (Poisson).
    arrival_rate: float = 16.0
    #: Driver waves (each wave inserts, then settles to quiescence).
    waves: int = 20
    #: Lognormal size calibration, matching CorpusSpec's shared-content
    #: class ([8]/[13]: kilobyte median, heavy tail).
    median_size: int = 8000
    sigma: float = 2.1
    max_size: int = 64_000_000

    def __post_init__(self) -> None:
        if self.contents < 1:
            raise ValueError(f"need at least one content: {self.contents}")
        if self.arrival_rate < 0:
            raise ValueError(f"arrival rate must be >= 0: {self.arrival_rate}")
        if self.waves < 1:
            raise ValueError(f"need at least one wave: {self.waves}")


class SkewedTraffic:
    """Generates per-wave insert batches against a fixed machine population.

    Deterministic given (spec, locations, seed): content sizes are derived
    per content id, and one RNG stream drives arrival counts, content
    draws, and publisher choices in a fixed order.
    """

    def __init__(
        self,
        spec: TrafficSpec,
        locations: Sequence[int],
        seed: int = 0,
    ):
        if not locations:
            raise ValueError("need at least one publisher machine")
        self.spec = spec
        self._locations = list(locations)
        self._rng = random.Random(seed)
        self._zipf = BoundedZipf(1, spec.contents, spec.zipf_alpha)
        self._sizes: Dict[int, int] = {}
        self._size_seed = seed
        #: Total arrivals generated so far.
        self.arrivals = 0
        #: Publish count per content id (hot-cluster accounting).
        self.content_counts: Dict[int, int] = {}

    def _content_size(self, content: int) -> int:
        size = self._sizes.get(content)
        if size is None:
            # Per-content substream: the size is a property of the content,
            # independent of when (or how often) it is published.
            rng = random.Random((self._size_seed << 32) ^ content)
            size = self._sizes[content] = lognormal_size(
                rng,
                self.spec.median_size,
                self.spec.sigma,
                max_size=self.spec.max_size,
            )
        return size

    def wave(self) -> Dict[int, List[SaladRecord]]:
        """One Poisson wave of publishes, batched per publisher machine."""
        batches: Dict[int, List[SaladRecord]] = {}
        count = poisson_count(self._rng, self.spec.arrival_rate)
        for _ in range(count):
            content = self._zipf.sample(self._rng)
            location = self._locations[self._rng.randrange(len(self._locations))]
            record = SaladRecord(
                fingerprint=synthetic_fingerprint(self._content_size(content), content),
                location=location,
            )
            batches.setdefault(location, []).append(record)
            self.content_counts[content] = self.content_counts.get(content, 0) + 1
        self.arrivals += count
        return batches

    def hot_share(self, top: int = 1) -> float:
        """Fraction of all arrivals that hit the *top* most-published contents."""
        if not self.arrivals:
            return 0.0
        counts = sorted(self.content_counts.values(), reverse=True)
        return sum(counts[:top]) / self.arrivals


_SPEC_KEYS = {"contents", "alpha", "rate", "waves", "median", "sigma"}


def parse_traffic(spec: Optional[str]) -> TrafficSpec:
    """Parse a CLI traffic spec (``alpha=1.2,rate=24,waves=10,...``).

    Keys: contents (catalog size), alpha (Zipf exponent), rate (mean
    arrivals/wave), waves, median (bytes), sigma.  None/"" -> defaults.
    """
    if spec is None or not spec.strip():
        return TrafficSpec()
    values: Dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, eq, raw = part.partition("=")
        key = key.strip()
        if not eq or key not in _SPEC_KEYS:
            raise ValueError(
                f"unknown traffic key {key!r} in {spec!r}; keys: "
                f"{sorted(_SPEC_KEYS)}"
            )
        try:
            values[key] = float(raw)
        except ValueError:
            raise ValueError(f"bad value for traffic key {key!r}: {raw!r}")
    return TrafficSpec(
        contents=int(values.get("contents", TrafficSpec.contents)),
        zipf_alpha=values.get("alpha", TrafficSpec.zipf_alpha),
        arrival_rate=values.get("rate", TrafficSpec.arrival_rate),
        waves=int(values.get("waves", TrafficSpec.waves)),
        median_size=int(values.get("median", TrafficSpec.median_size)),
        sigma=values.get("sigma", TrafficSpec.sigma),
    )
