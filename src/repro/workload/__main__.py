"""Workload CLI: generate, inspect, and convert corpora.

Usage::

    python -m repro.workload generate --machines 585 --files 60 -o corpus.json.gz
    python -m repro.workload stats corpus.json.gz
    python -m repro.workload scan /some/directory -o scanned.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.reporting import format_bytes, render_kv
from repro.workload.corpus import Corpus
from repro.workload.generator import CorpusSpec, generate_corpus
from repro.workload.serialization import load_corpus, save_corpus


def _summarize(corpus: Corpus) -> str:
    summary = corpus.summary()
    return render_kv(
        "Corpus statistics",
        {
            "machines": summary.machine_count,
            "total files": f"{summary.total_files:,}",
            "total bytes": format_bytes(summary.total_bytes),
            "distinct contents": f"{summary.distinct_contents:,}",
            "distinct bytes": format_bytes(summary.distinct_bytes),
            "duplicate byte fraction": f"{summary.duplicate_byte_fraction:.3f}",
            "distinct file fraction": f"{1 - summary.duplicate_file_fraction:.3f}",
            "mean file size": format_bytes(summary.mean_file_size),
        },
    )


def cmd_generate(args: argparse.Namespace) -> int:
    spec = CorpusSpec(
        machines=args.machines,
        mean_files_per_machine=args.files,
    )
    corpus = generate_corpus(spec, seed=args.seed)
    print(_summarize(corpus))
    if args.output:
        save_corpus(corpus, args.output)
        print(f"\nwritten to {args.output}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    corpus = load_corpus(args.corpus)
    print(_summarize(corpus))
    return 0


def cmd_scan(args: argparse.Namespace) -> int:
    from repro.workload.scanner import scan_directory

    scan = scan_directory(args.directory, max_files=args.max_files)
    corpus = Corpus(machines=[scan])
    print(_summarize(corpus))
    if args.output:
        save_corpus(corpus, args.output)
        print(f"\nwritten to {args.output}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workload",
        description="Generate, inspect, and convert DFC corpora.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a calibrated synthetic corpus")
    generate.add_argument("--machines", type=int, default=292)
    generate.add_argument("--files", type=float, default=40.0, help="mean files/machine")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("-o", "--output", help="write corpus JSON(.gz) here")
    generate.set_defaults(func=cmd_generate)

    stats = sub.add_parser("stats", help="print statistics of a saved corpus")
    stats.add_argument("corpus", help="corpus JSON(.gz) path")
    stats.set_defaults(func=cmd_stats)

    scan = sub.add_parser("scan", help="scan a real directory into a corpus")
    scan.add_argument("directory")
    scan.add_argument("--max-files", type=int, default=None)
    scan.add_argument("-o", "--output", help="write corpus JSON(.gz) here")
    scan.set_defaults(func=cmd_scan)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
