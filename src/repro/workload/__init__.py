"""Workload substrate: file-system content corpora.

The paper's evaluation uses proprietary scans of 585 Microsoft desktop file
systems (10,514,105 files, 685 GB, 46% of bytes duplicated).  That dataset is
not public, so this package substitutes a synthetic corpus generator
calibrated to the published aggregate statistics and the authors' published
file-system measurement studies [8, 13]: lognormal file sizes, Zipf-
distributed cross-machine duplication of shared content, per-machine unique
files, plus a small set of "system" contents present on every machine
(operating-system files).  See DESIGN.md for the substitution rationale.

- :mod:`repro.workload.corpus` -- corpus data model and statistics.
- :mod:`repro.workload.distributions` -- size and duplication distributions.
- :mod:`repro.workload.generator` -- the calibrated generator.
- :mod:`repro.workload.scanner` -- scan a real directory tree (what the
  paper's scanning program did), usable on any host.
"""

from repro.workload.corpus import Corpus, CorpusSummary, FileStat, MachineScan
from repro.workload.generator import CorpusSpec, generate_corpus

__all__ = [
    "Corpus",
    "CorpusSpec",
    "CorpusSummary",
    "FileStat",
    "MachineScan",
    "generate_corpus",
]
