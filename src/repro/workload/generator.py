"""Calibrated synthetic corpus generator.

The defaults are calibrated so a generated corpus reproduces the paper's
aggregate dataset statistics at any scale (see DESIGN.md for the
derivation):

- duplicate-byte fraction ~ 46% (paper: 685 GB total, 368 GB distinct);
- distinct-content fraction ~ 38.6% of files (paper: 4.06M / 10.51M);
- lognormal sizes with kilobyte medians and a heavy tail, overall mean
  around 65 KB;
- shared contents duplicated across machines with Zipf copy counts, plus a
  small "system content" class present on every machine (OS files).

Unique files carry a larger size spread than shared contents (big mailbox
and media files are rarely duplicated), which is what pushes duplicate
*bytes* (46%) below duplicate *files* (61%), as in the real measurements.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.sim.rng import SeedSequence
from repro.workload.corpus import Corpus, FileStat, MachineScan
from repro.workload.distributions import (
    BoundedZipf,
    lognormal_size,
    machine_file_count,
)


@dataclass(frozen=True)
class CorpusSpec:
    """Parameters of the synthetic corpus.

    The scale knobs are *machines* and *mean_files_per_machine*; everything
    else is shape, calibrated to the paper's aggregates.
    """

    machines: int = 585
    mean_files_per_machine: float = 60.0
    #: Fraction of file instances whose content is unique to one machine.
    unique_fraction: float = 0.21
    #: Zipf exponent for shared-content copy counts (2..machines).
    zipf_alpha: float = 2.2
    #: Number of contents present on *every* machine (OS/application files).
    system_contents: int = 8
    #: Lognormal size parameters for shared (duplicated) contents.
    shared_median_size: int = 8000
    shared_sigma: float = 2.1
    #: Lognormal size parameters for unique contents (heavier tail).
    unique_median_size: int = 5400
    unique_sigma: float = 2.42
    #: Lognormal size parameters for system contents (small binaries).
    system_median_size: int = 24_000
    system_sigma: float = 1.2
    min_file_size: int = 1
    max_file_size: int = 1 << 30
    #: Per-machine file-count spread (lognormal sigma).
    machine_spread: float = 0.5

    def __post_init__(self) -> None:
        if self.machines < 1:
            raise ValueError(f"need at least one machine: {self.machines}")
        if not 0.0 <= self.unique_fraction <= 1.0:
            raise ValueError(f"unique fraction must be in [0,1]: {self.unique_fraction}")
        if self.system_contents < 0:
            raise ValueError(f"system contents cannot be negative: {self.system_contents}")


def _unique_files_for_machine(
    args: Tuple[int, int, int, int, float, int, int],
) -> List[FileStat]:
    """Phase-3 worker: the unique (never-duplicated) files of one machine.

    Each machine draws from its own seed-derived stream
    (``unique-files/<machine>``), so machines are independent: the same
    machine always produces the same files whether this runs in the main
    process or a pool worker, and in any machine order.
    """
    count, first_content_id, stream_seed, median, sigma, min_size, max_size = args
    rng = random.Random(stream_seed)
    return [
        FileStat(
            content_id=first_content_id + i,
            size=lognormal_size(rng, median, sigma, min_size, max_size),
        )
        for i in range(count)
    ]


def generate_corpus(spec: CorpusSpec, seed: int = 0, workers: Optional[int] = None) -> Corpus:
    """Generate a corpus matching *spec*; deterministic for a given seed.

    The shared/system phases are sequential (cross-machine Zipf placement is
    inherently so), but unique-content synthesis -- the bulk of the files --
    runs per machine on independent derived streams, so ``workers > 1``
    parallelizes it with byte-identical output.
    """
    rng = random.Random(seed)
    next_content_id = 0

    def fresh_content() -> int:
        nonlocal next_content_id
        next_content_id += 1
        return next_content_id

    scans = [MachineScan(machine_index=i) for i in range(spec.machines)]

    # Per-machine target file counts.
    targets = [
        machine_file_count(rng, spec.mean_files_per_machine, spec.machine_spread)
        for _ in range(spec.machines)
    ]
    total_target = sum(targets)

    # 1) System contents: present on every machine.
    for _ in range(spec.system_contents):
        content = fresh_content()
        size = lognormal_size(
            rng,
            spec.system_median_size,
            spec.system_sigma,
            spec.min_file_size,
            spec.max_file_size,
        )
        stat = FileStat(content_id=content, size=size)
        for scan in scans:
            scan.files.append(stat)

    # 2) Shared contents with Zipf copy counts, until the shared budget of
    #    file instances is spent.
    shared_budget = max(
        0,
        int(total_target * (1.0 - spec.unique_fraction))
        - spec.system_contents * spec.machines,
    )
    if spec.machines >= 2:
        zipf = BoundedZipf(2, spec.machines, spec.zipf_alpha)
        placed = 0
        while placed < shared_budget:
            copies = min(zipf.sample(rng), shared_budget - placed)
            if copies < 1:
                break
            content = fresh_content()
            size = lognormal_size(
                rng,
                spec.shared_median_size,
                spec.shared_sigma,
                spec.min_file_size,
                spec.max_file_size,
            )
            stat = FileStat(content_id=content, size=size)
            for index in rng.sample(range(spec.machines), copies):
                scans[index].files.append(stat)
            placed += copies

    # 3) Unique contents: top each machine up to its target count.  Every
    #    machine gets a pre-allocated content-id range and its own derived
    #    stream, making the phase order-independent (and hence
    #    pool-parallelizable with identical output).
    seeds = SeedSequence(seed)
    tasks: List[Tuple[int, int, int, int, float, int, int]] = []
    for scan, target in zip(scans, targets):
        need = max(0, target - scan.file_count)
        first_id = next_content_id + 1
        next_content_id += need
        tasks.append(
            (
                need,
                first_id,
                seeds.derive(f"unique-files/{scan.machine_index}"),
                spec.unique_median_size,
                spec.unique_sigma,
                spec.min_file_size,
                spec.max_file_size,
            )
        )
    from repro.perf import parallel_map

    for scan, files in zip(scans, parallel_map(_unique_files_for_machine, tasks, workers=workers)):
        scan.files.extend(files)

    return Corpus(machines=scans)


def paper_scale_spec(scale: float = 1.0) -> CorpusSpec:
    """A spec at a fraction of the paper's full dataset scale.

    ``scale=1.0`` is 585 machines with the paper's ~18,000 files per machine
    (10.5M files total); ``scale=0.01`` keeps all 585 machines but divides
    the per-machine file count by 100, preserving every shape statistic the
    experiments depend on.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive: {scale}")
    return CorpusSpec(
        machines=585,
        mean_files_per_machine=max(4.0, 17_972 * scale),
        system_contents=max(1, int(round(30 * max(scale, 0.01)))),
    )
