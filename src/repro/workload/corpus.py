"""Corpus data model: file statistics per machine, aggregate statistics.

A corpus describes *what* each machine stores without materializing file
bytes: each file is a ``(content_id, size)`` pair, where equal content_ids
mean byte-identical contents.  Fingerprints derive deterministically from
``(size, content_id)`` via :func:`repro.core.fingerprint.synthetic_fingerprint`,
giving exactly the uniformly distributed 20-byte digests a real scanner
would produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Set, Tuple

from repro.core.fingerprint import Fingerprint, synthetic_fingerprint


@dataclass(frozen=True)
class FileStat:
    """One file on one machine: abstract content identity plus size."""

    content_id: int
    size: int

    def fingerprint(self) -> Fingerprint:
        """The SALAD fingerprint of this file's (encrypted) content."""
        return synthetic_fingerprint(self.size, self.content_id)


@dataclass
class MachineScan:
    """The scanned contents of one machine's file system."""

    machine_index: int
    files: List[FileStat] = field(default_factory=list)

    @property
    def file_count(self) -> int:
        return len(self.files)

    @property
    def total_bytes(self) -> int:
        return sum(f.size for f in self.files)

    def files_at_least(self, min_size: int) -> List[FileStat]:
        """Files eligible for coalescing under a minimum-size threshold."""
        return [f for f in self.files if f.size >= min_size]


@dataclass(frozen=True)
class CorpusSummary:
    """The aggregate statistics the paper reports for its dataset (section 5).

    Paper values for reference: 585 file systems, 10,514,105 files, 685 GB;
    4,060,748 distinct contents, 368 GB distinct; 46% of consumed space
    reclaimable by coalescing.
    """

    machine_count: int
    total_files: int
    total_bytes: int
    distinct_contents: int
    distinct_bytes: int

    @property
    def duplicate_byte_fraction(self) -> float:
        """Fraction of consumed space reclaimable by ideal coalescing."""
        if self.total_bytes == 0:
            return 0.0
        return 1.0 - self.distinct_bytes / self.total_bytes

    @property
    def duplicate_file_fraction(self) -> float:
        if self.total_files == 0:
            return 0.0
        return 1.0 - self.distinct_contents / self.total_files

    @property
    def mean_file_size(self) -> float:
        return self.total_bytes / self.total_files if self.total_files else 0.0


@dataclass
class Corpus:
    """A set of machine scans: the input to every DFC experiment."""

    machines: List[MachineScan]

    def __len__(self) -> int:
        return len(self.machines)

    def __iter__(self) -> Iterator[MachineScan]:
        return iter(self.machines)

    @property
    def total_files(self) -> int:
        return sum(m.file_count for m in self.machines)

    @property
    def total_bytes(self) -> int:
        return sum(m.total_bytes for m in self.machines)

    def content_instances(self) -> Dict[int, Tuple[int, List[int]]]:
        """Map content_id -> (size, list of machine indices holding it)."""
        out: Dict[int, Tuple[int, List[int]]] = {}
        for machine in self.machines:
            for f in machine.files:
                if f.content_id in out:
                    out[f.content_id][1].append(machine.machine_index)
                else:
                    out[f.content_id] = (f.size, [machine.machine_index])
        return out

    def summary(self) -> CorpusSummary:
        contents: Dict[int, int] = {}
        total_files = 0
        total_bytes = 0
        for machine in self.machines:
            for f in machine.files:
                total_files += 1
                total_bytes += f.size
                contents.setdefault(f.content_id, f.size)
        return CorpusSummary(
            machine_count=len(self.machines),
            total_files=total_files,
            total_bytes=total_bytes,
            distinct_contents=len(contents),
            distinct_bytes=sum(contents.values()),
        )

    def ideal_reclaimable_bytes(self, min_size: int = 0) -> int:
        """Bytes an omniscient coalescer reclaims, honoring a size threshold.

        For each content of size >= *min_size* with n instances, n - 1
        copies can be coalesced away.
        """
        reclaimed = 0
        seen: Dict[int, int] = {}
        for machine in self.machines:
            for f in machine.files:
                if f.size < min_size:
                    continue
                if f.content_id in seen:
                    reclaimed += f.size
                else:
                    seen[f.content_id] = f.size
        return reclaimed

    def fingerprint_to_content(self) -> Dict[Fingerprint, int]:
        """Reverse lookup used when mapping SALAD matches back to contents."""
        out: Dict[Fingerprint, int] = {}
        seen: Set[int] = set()
        for machine in self.machines:
            for f in machine.files:
                if f.content_id not in seen:
                    seen.add(f.content_id)
                    out[f.fingerprint()] = f.content_id
        return out
