"""Scan a real directory tree into a MachineScan.

This is what the paper's measurement tool did: "The program computed a ...
cryptographically strong hash of each ... block of all files on their
systems, and it recorded these hashes along with file sizes and other
attributes."  Running it over any directory yields a
:class:`repro.workload.corpus.MachineScan` whose content identities come
from real content hashes, so identical files on disk become identical
contents in the corpus.

Useful for trying the DFC pipeline on real data instead of the synthetic
corpus (see ``examples/corporate_dedup.py --scan``).
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from repro.workload.corpus import FileStat, MachineScan

#: Files larger than this are hashed in blocks (the paper hashed 64-KB
#: blocks); we hash whole contents block-wise to bound memory.
BLOCK_SIZE = 64 * 1024


def _hash_file(path: str) -> bytes:
    import hashlib

    hasher = hashlib.sha1()
    with open(path, "rb") as f:
        while True:
            block = f.read(BLOCK_SIZE)
            if not block:
                break
            hasher.update(block)
    return hasher.digest()


def scan_directory(
    root: str,
    machine_index: int = 0,
    max_files: Optional[int] = None,
    follow_symlinks: bool = False,
) -> MachineScan:
    """Walk *root*, fingerprinting every regular file."""
    files = []
    content_ids: Dict[bytes, int] = {}
    for dirpath, _dirnames, filenames in os.walk(root, followlinks=follow_symlinks):
        for name in filenames:
            path = os.path.join(dirpath, name)
            try:
                if not os.path.isfile(path) or os.path.islink(path):
                    continue
                size = os.path.getsize(path)
                digest = _hash_file(path)
            except OSError:
                continue  # unreadable file; the paper's scanner skipped these too
            content_id = content_ids.setdefault(
                digest, int.from_bytes(digest[:8], "big")
            )
            files.append(FileStat(content_id=content_id, size=size))
            if max_files is not None and len(files) >= max_files:
                return MachineScan(machine_index=machine_index, files=files)
    return MachineScan(machine_index=machine_index, files=files)
