"""Deterministic, stream-split randomness for simulations.

Every stochastic component (workload generation, identifier assignment,
failure injection, message jitter) draws from its own named stream derived
from one master seed, so adding randomness to one component never perturbs
another -- a standard requirement for credible systems simulation.
"""

from __future__ import annotations

import hashlib
import random


class SeedSequence:
    """Derives independent named random streams from a master seed.

    >>> seeds = SeedSequence(42)
    >>> a = seeds.stream("workload")
    >>> b = seeds.stream("failures")
    >>> a.random() != b.random()
    True
    >>> seeds.stream("workload").random() == SeedSequence(42).stream("workload").random()
    True
    """

    def __init__(self, master_seed: int):
        self.master_seed = master_seed

    def derive(self, name: str) -> int:
        """A 128-bit integer seed for the named stream."""
        digest = hashlib.sha256(f"{self.master_seed}/{name}".encode()).digest()
        return int.from_bytes(digest[:16], "big")

    def stream(self, name: str) -> random.Random:
        """A fresh ``random.Random`` for the named stream."""
        return random.Random(self.derive(name))

    def child(self, name: str) -> "SeedSequence":
        """A sub-sequence, for components that split further."""
        return SeedSequence(self.derive(name))
