"""Deterministic discrete-event schedulers.

Two interchangeable engines with one contract: events are ordered by
virtual time with FIFO tie-breaking, so runs are exactly reproducible.
Actions scheduled at the same timestamp execute in scheduling order, which
is what makes the SALAD protocols (where a leaf may send several messages
"simultaneously") deterministic.

- :class:`EventScheduler` -- the default engine, a *calendar queue*: events
  land in per-timestamp FIFO buckets and a small heap orders only the
  distinct timestamps.  Simulated networks produce thousands of events per
  timestep (every message sent at time t delivers at t + latency), so the
  per-event cost collapses to a dict lookup and a list append instead of a
  heap push/pop with record comparisons.  Event records are plain 3-slot
  lists, not dataclasses, keeping allocation light on the hot path.

- :class:`ReferenceEventScheduler` -- the seed's binary-heap engine, kept
  in-tree as the behavioral oracle.  ``tests/sim/test_events.py`` runs the
  full contract suite against both engines, and the golden-trace tests
  assert that whole SALAD workloads produce identical message traces under
  either one.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

Action = Callable[[], None]


class SimulationError(Exception):
    """Raised on scheduler misuse (e.g., scheduling into the past)."""


# Calendar-queue event entries are bare lists [time, action, cancelled]:
# index constants instead of attribute lookups on the hot path.
_TIME, _ACTION, _CANCELLED = 0, 1, 2


class EventHandle:
    """Handle returned by :meth:`EventScheduler.schedule`; supports cancel."""

    __slots__ = ("_entry",)

    def __init__(self, entry: list):
        self._entry = entry

    def cancel(self) -> None:
        self._entry[_CANCELLED] = True

    @property
    def cancelled(self) -> bool:
        return self._entry[_CANCELLED]

    @property
    def time(self) -> float:
        return self._entry[_TIME]


class _Bucket:
    """FIFO slot of one timestamp: entries plus a consumption cursor."""

    __slots__ = ("cursor", "entries")

    def __init__(self) -> None:
        self.cursor = 0
        self.entries: List[list] = []


class EventScheduler:
    """Calendar-queue event loop with virtual time.

    Buckets (one per distinct timestamp) are kept in a dict; a heap orders
    the timestamps.  Scheduling into the bucket currently being drained
    (delay 0) appends behind the cursor, preserving FIFO among
    same-timestamp events exactly as the reference heap engine does.
    """

    def __init__(self) -> None:
        self._buckets: Dict[float, _Bucket] = {}
        self._times: List[float] = []  # heap of bucket timestamps
        self._active: Optional[_Bucket] = None
        self._active_time: float = 0.0
        self.now: float = 0.0
        self.events_executed = 0

    def schedule(self, delay: float, action: Action) -> EventHandle:
        """Schedule *action* to run *delay* time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self.now + delay
        bucket = self._buckets.get(time)
        if bucket is None:
            bucket = _Bucket()
            self._buckets[time] = bucket
            heapq.heappush(self._times, time)
        entry = [time, action, False]
        bucket.entries.append(entry)
        return EventHandle(entry)

    def schedule_at(self, time: float, action: Action) -> EventHandle:
        """Schedule *action* at absolute virtual *time*."""
        return self.schedule(time - self.now, action)

    def __len__(self) -> int:
        return sum(
            sum(1 for entry in bucket.entries[bucket.cursor :] if not entry[_CANCELLED])
            for bucket in self._buckets.values()
        )

    def _front(self) -> Optional[_Bucket]:
        """The bucket holding the earliest pending event, or None.

        Advances cursors past cancelled entries and retires drained buckets.
        The active-bucket cache skips the heap on consecutive same-timestamp
        events (the common case: every message sent at time t delivers at
        t + latency); a bucket's heap entry is popped only when the bucket
        drains, so an active bucket is valid exactly while its timestamp is
        still the heap minimum -- an event scheduled at an earlier time
        (possible after a peek that did not advance ``now``) demotes it.
        """
        while True:
            bucket = self._active
            if bucket is not None and self._times and self._times[0] == self._active_time:
                entries = bucket.entries
                cursor = bucket.cursor
                length = len(entries)
                while cursor < length and entries[cursor][_CANCELLED]:
                    cursor += 1
                bucket.cursor = cursor
                if cursor < length:
                    return bucket
                del self._buckets[self._active_time]
                heapq.heappop(self._times)
                self._active = None
            else:
                self._active = None
            if not self._times:
                return None
            time = self._times[0]
            nxt = self._buckets.get(time)
            if nxt is None:  # stale heap entry (bucket re-created then drained)
                heapq.heappop(self._times)
                continue
            self._active = nxt
            self._active_time = time

    def step(self) -> bool:
        """Execute the next pending event; return False if none remain."""
        bucket = self._front()
        if bucket is None:
            return False
        entry = bucket.entries[bucket.cursor]
        bucket.cursor += 1
        self.now = entry[_TIME]
        entry[_ACTION]()
        self.events_executed += 1
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run until quiescence, virtual time *until*, or *max_events*.

        Returns the number of events executed by this call.
        """
        executed = 0
        front = self._front
        while True:
            bucket = front()
            if bucket is None:
                break
            entry = bucket.entries[bucket.cursor]
            if until is not None and entry[_TIME] > until:
                break
            if max_events is not None and executed >= max_events:
                break
            bucket.cursor += 1
            self.now = entry[_TIME]
            entry[_ACTION]()
            self.events_executed += 1
            executed += 1
        if until is not None and self.now < until and not self._has_pending_before(until):
            self.now = until
        return executed

    def _has_pending_before(self, time: float) -> bool:
        bucket = self._front()
        return bucket is not None and bucket.entries[bucket.cursor][_TIME] <= time

    def advance_to(self, time: float) -> None:
        """Advance ``now`` to *time*, running any events due on the way.

        Semantically ``run(until=time)`` (``now`` never moves backward),
        but O(1) when the calendar is empty: the sharded engine's
        per-worker scheduler advances exactly once per delivery window and
        never holds events, so the generic drain's bucket search and
        front-cache maintenance would be pure per-window overhead there.
        """
        if self._times:
            self.run(until=time)
        elif time > self.now:
            self.now = time


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    action: Action = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class _ReferenceEventHandle:
    """Handle returned by :meth:`ReferenceEventScheduler.schedule`."""

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class ReferenceEventScheduler:
    """The seed's priority-queue event loop, kept as the oracle engine.

    One ``(time, sequence, action)`` record per event on a single binary
    heap.  Semantically identical to :class:`EventScheduler`; roughly 2-4x
    slower on message-heavy workloads because every event pays a heap
    push/pop with record comparisons.
    """

    def __init__(self) -> None:
        self._queue: List[_Event] = []
        self._sequence = itertools.count()
        self.now: float = 0.0
        self.events_executed = 0

    def schedule(self, delay: float, action: Action) -> _ReferenceEventHandle:
        """Schedule *action* to run *delay* time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = _Event(time=self.now + delay, sequence=next(self._sequence), action=action)
        heapq.heappush(self._queue, event)
        return _ReferenceEventHandle(event)

    def schedule_at(self, time: float, action: Action) -> _ReferenceEventHandle:
        """Schedule *action* at absolute virtual *time*."""
        return self.schedule(time - self.now, action)

    def __len__(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)

    def step(self) -> bool:
        """Execute the next pending event; return False if none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            event.action()
            self.events_executed += 1
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run until quiescence, virtual time *until*, or *max_events*.

        Returns the number of events executed by this call.
        """
        executed = 0
        while self._queue:
            next_event = self._peek()
            if next_event is None:
                break
            if until is not None and next_event.time > until:
                break
            if max_events is not None and executed >= max_events:
                break
            self.step()
            executed += 1
        if until is not None and self.now < until and not self._has_pending_before(until):
            self.now = until
        return executed

    def _peek(self) -> Optional[_Event]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None

    def _has_pending_before(self, time: float) -> bool:
        event = self._peek()
        return event is not None and event.time <= time

    def advance_to(self, time: float) -> None:
        """Advance ``now`` to *time* (same contract as EventScheduler's)."""
        if self._queue:
            self.run(until=time)
        elif time > self.now:
            self.now = time
