"""Deterministic discrete-event scheduler.

A minimal but complete event engine: events are ``(time, sequence, action)``
triples ordered by time with FIFO tie-breaking, so runs are exactly
reproducible.  Actions scheduled at the same timestamp execute in scheduling
order, which is what makes the SALAD protocols (where a leaf may send several
messages "simultaneously") deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

Action = Callable[[], None]


class SimulationError(Exception):
    """Raised on scheduler misuse (e.g., scheduling into the past)."""


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    action: Action = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`EventScheduler.schedule`; supports cancel."""

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class EventScheduler:
    """Priority-queue event loop with virtual time."""

    def __init__(self) -> None:
        self._queue: List[_Event] = []
        self._sequence = itertools.count()
        self.now: float = 0.0
        self.events_executed = 0

    def schedule(self, delay: float, action: Action) -> EventHandle:
        """Schedule *action* to run *delay* time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = _Event(time=self.now + delay, sequence=next(self._sequence), action=action)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(self, time: float, action: Action) -> EventHandle:
        """Schedule *action* at absolute virtual *time*."""
        return self.schedule(time - self.now, action)

    def __len__(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)

    def step(self) -> bool:
        """Execute the next pending event; return False if none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            event.action()
            self.events_executed += 1
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run until quiescence, virtual time *until*, or *max_events*.

        Returns the number of events executed by this call.
        """
        executed = 0
        while self._queue:
            next_event = self._peek()
            if next_event is None:
                break
            if until is not None and next_event.time > until:
                break
            if max_events is not None and executed >= max_events:
                break
            self.step()
            executed += 1
        if until is not None and self.now < until and not self._has_pending_before(until):
            self.now = until
        return executed

    def _peek(self) -> Optional[_Event]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None

    def _has_pending_before(self, time: float) -> bool:
        event = self._peek()
        return event is not None and event.time <= time
