"""Measurement utilities: CDFs, coefficients of variation, histograms.

The paper reports cumulative distributions of machines by message count
(Fig. 10), database size (Fig. 12), and leaf table size (Fig. 15), and
characterizes load balance by the coefficient of variation CoV = sigma/mu
(citing Jain [21]).  These helpers compute those exact quantities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


def coefficient_of_variation(values: Sequence[float]) -> float:
    """CoV = population standard deviation / mean (0 for empty or zero-mean)."""
    values = list(values)
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    if mean == 0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return math.sqrt(variance) / mean


def mean(values: Sequence[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


@dataclass
class Cdf:
    """An empirical cumulative distribution over sample values.

    ``points()`` yields (value, cumulative_frequency) pairs suitable for
    plotting exactly the curves of Figs. 10, 12, and 15.
    """

    samples: List[float]

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "Cdf":
        return cls(samples=sorted(samples))

    def __len__(self) -> int:
        return len(self.samples)

    def points(self) -> List[Tuple[float, float]]:
        """Sorted (value, fraction of samples <= value) pairs."""
        n = len(self.samples)
        if n == 0:
            return []
        out: List[Tuple[float, float]] = []
        for i, v in enumerate(self.samples, start=1):
            if out and out[-1][0] == v:
                out[-1] = (v, i / n)
            else:
                out.append((v, i / n))
        return out

    def at(self, value: float) -> float:
        """Fraction of samples <= value."""
        lo, hi = 0, len(self.samples)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.samples[mid] <= value:
                lo = mid + 1
            else:
                hi = mid
        return lo / len(self.samples) if self.samples else 0.0

    def quantile(self, q: float) -> float:
        """The q-quantile (0 <= q <= 1) of the samples."""
        if not self.samples:
            raise ValueError("quantile of empty CDF")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0,1]: {q}")
        idx = min(len(self.samples) - 1, max(0, math.ceil(q * len(self.samples)) - 1))
        return self.samples[idx]

    @property
    def mean(self) -> float:
        return mean(self.samples)

    @property
    def cov(self) -> float:
        return coefficient_of_variation(self.samples)


def histogram(values: Iterable[float], bin_width: float) -> Dict[float, int]:
    """Counts per bin of the given width (bin key = left edge)."""
    if bin_width <= 0:
        raise ValueError(f"bin width must be positive: {bin_width}")
    bins: Dict[float, int] = {}
    for v in values:
        edge = math.floor(v / bin_width) * bin_width
        bins[edge] = bins.get(edge, 0) + 1
    return dict(sorted(bins.items()))


def geometric_thresholds(start: int, stop: int, factor: int = 8) -> List[int]:
    """Geometric sweep values, e.g. the file-size thresholds of Figs. 7/9/11.

    The paper's x-axes run 1, 8, 64, 512, 4K, 32K, 256K, 2M, ... -- a factor
    of 8 per step.
    """
    if start <= 0 or factor <= 1:
        raise ValueError("start must be positive and factor > 1")
    out = []
    v = start
    while v <= stop:
        out.append(v)
        v *= factor
    return out
