"""Message tracing and protocol-invariant checking.

Wraps a :class:`repro.sim.network.Network` so every send is recorded, then
validates structural invariants of the SALAD protocols over the trace:

- *record hop bound*: no record message exceeds the 2D hop budget;
- *record progress* (uniform-width systems): along any forwarding chain the
  number of coordinates matching the fingerprint never decreases;
- *join suppression*: no leaf processes the same new leaf's join twice
  (checked by at-most-once forwarding per (leaf, new_leaf) pair);
- *traffic conservation*: per-machine counters equal the trace totals.

These checks run in tests to catch protocol regressions that black-box
outcome assertions (loss rates, table sizes) might absorb silently -- and,
since the ``--trace-invariants`` flag, as an opt-in runtime mode: the
engines attach a tracer at construction and harvest per-check violation
counts into the metrics registry (``sim.invariants.*``) at report time
(:meth:`NetworkTracer.feed_registry`).

The tracer wraps ``network.send`` by *instance-attribute* assignment, which
composes with :class:`repro.salad.sharded.ShardNetwork` (whose ``send`` is
a class override: the assignment shadows it and the saved original is the
bound override).  :meth:`detach` restores the original only while this
tracer is still the active wrapper, so attach/detach of stacked wrappers
can interleave without clobbering each other.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.sim.network import Network


@dataclass(frozen=True)
class TracedMessage:
    index: int
    time: float
    sender: int
    recipient: int
    kind: str
    payload: Any


class NetworkTracer:
    """Records every message sent through a network."""

    def __init__(self, network: Network):
        self.network = network
        self.messages: List[TracedMessage] = []
        self._original_send = network.send
        network.send = self._traced_send  # type: ignore[assignment]

    def _traced_send(self, sender: int, recipient: int, kind: str, payload: Any) -> None:
        self.messages.append(
            TracedMessage(
                index=len(self.messages),
                time=self.network.scheduler.now,
                sender=sender,
                recipient=recipient,
                kind=kind,
                payload=payload,
            )
        )
        self._original_send(sender, recipient, kind, payload)

    def detach(self) -> None:
        # Guarded restore: only unwind if this tracer's wrapper is still the
        # network's current send.  If something wrapped send *after* us (a
        # second tracer, a test double), blindly restoring would silently
        # disconnect that outer wrapper too.
        if self.network.send == self._traced_send:
            self.network.send = self._original_send  # type: ignore[assignment]

    # -- queries -------------------------------------------------------------

    def by_kind(self, kind: str) -> List[TracedMessage]:
        return [m for m in self.messages if m.kind == kind]

    def count_by_kind(self) -> Dict[str, int]:
        return dict(Counter(m.kind for m in self.messages))

    def record_pairs(self) -> List[Tuple[TracedMessage, Any, int]]:
        """Every routed record as ``(message, record, hops)``.

        Expands coalesced ``record_batch`` envelopes, so invariant checks see
        each record exactly once whether or not it shared an envelope.
        """
        out: List[Tuple[TracedMessage, Any, int]] = []
        for message in self.by_kind("record"):
            record, hops = message.payload
            out.append((message, record, hops))
        for message in self.by_kind("record_batch"):
            for record, hops in message.payload:
                out.append((message, record, hops))
        return out

    # -- invariants ------------------------------------------------------------

    def check_record_hop_bound(self, dimensions: int) -> List[str]:
        """No routed record may carry more than 2*D hops."""
        violations = []
        for message, record, hops in self.record_pairs():
            if hops > 2 * dimensions:
                violations.append(
                    f"record msg #{message.index} carries {hops} hops "
                    f"(budget {2 * dimensions})"
                )
        return violations

    def check_record_progress(self, leaves: Dict[int, Any]) -> List[str]:
        """With uniform widths, forwarding must increase coordinate matches.

        For each record message, the recipient must match the fingerprint on
        at least as many leading coordinates as the sender (strictly more
        unless the sender generated the record); only meaningful when every
        leaf agrees on W.
        """
        widths = {leaf.width for leaf in leaves.values()}
        if len(widths) != 1:
            return []  # divergent widths: progress is not guaranteed
        violations = []
        for message, record, hops in self.record_pairs():
            sender = leaves.get(message.sender)
            recipient = leaves.get(message.recipient)
            if sender is None or recipient is None:
                continue
            s = _matching_prefix(sender, record.routing_id)
            r = _matching_prefix(recipient, record.routing_id)
            if r < s:
                violations.append(
                    f"record msg #{message.index}: prefix {s} -> {r} regressed"
                )
        return violations

    def check_join_suppression(self) -> List[str]:
        """A leaf may forward joins for one new leaf at most once.

        Forwarding more than one *batch* (same sender, same new leaf,
        distinct send times) indicates the flood suppression failed.
        """
        first_batch_time: Dict[Tuple[int, int], float] = {}
        violations = []
        for message in self.by_kind("join"):
            payload = message.payload
            key = (message.sender, payload.new_leaf)
            seen = first_batch_time.get(key)
            if seen is None:
                first_batch_time[key] = message.time
            elif message.time != seen:
                violations.append(
                    f"leaf {message.sender:#x} forwarded join for "
                    f"{payload.new_leaf:#x} in two batches"
                )
        return violations

    def check_traffic_conservation(self) -> List[str]:
        """Per-machine sent counters must equal the trace."""
        sent = Counter(m.sender for m in self.messages)
        violations = []
        for identifier, traffic in self.network.traffic.items():
            if traffic.sent != sent.get(identifier, 0):
                violations.append(
                    f"machine {identifier:#x}: counter says {traffic.sent} "
                    f"sent, trace says {sent.get(identifier, 0)}"
                )
        return violations

    def check_all(self, leaves: Dict[int, Any], dimensions: int) -> List[str]:
        return (
            self.check_record_hop_bound(dimensions)
            + self.check_record_progress(leaves)
            + self.check_join_suppression()
            + self.check_traffic_conservation()
        )

    def feed_registry(self, registry, leaves: Dict[int, Any], dimensions: int) -> int:
        """Run every invariant check and record violation counts; returns total.

        One labeled ``sim.invariants.violations`` counter per check (created
        even at zero, so a report proves the check ran), plus the number of
        messages the trace covered.  Counters sum under registry merge, so
        per-shard tracers aggregate like everything else.
        """
        checks = {
            "hop_bound": self.check_record_hop_bound(dimensions),
            "progress": self.check_record_progress(leaves),
            "join_suppression": self.check_join_suppression(),
            "traffic_conservation": self.check_traffic_conservation(),
        }
        total = 0
        for name, violations in checks.items():
            registry.counter("sim.invariants.violations", check=name).inc(
                len(violations)
            )
            total += len(violations)
        registry.counter("sim.invariants.messages_traced").inc(len(self.messages))
        return total


def _matching_prefix(leaf, routing_id: int) -> int:
    """Number of leading coordinates on which the leaf matches the id."""
    count = 0
    for d in range(leaf.dimensions):
        if leaf.coord(routing_id, d) != leaf.coord(leaf.identifier, d):
            break
        count += 1
    return count
