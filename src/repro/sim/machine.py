"""Base class for simulated machines.

A machine has a verifiable identifier (in real Farsite, the hash of its
public key -- see :mod:`repro.farsite.machine_id`), a liveness flag, and a
message dispatch table.  Protocol classes (SALAD leaves, file hosts,
directory-group members) subclass this and register handlers per message
kind.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.sim.network import Message, Network

Handler = Callable[[Message], None]


class UnknownMessageError(Exception):
    """A machine received a message kind it has no handler for."""


class SimMachine:
    """A simulated machine attached to a network."""

    def __init__(self, identifier: int, network: Network):
        self.identifier = identifier
        self.network = network
        self.alive = True
        #: Drivers that cache which machines are alive set this to learn of
        #: liveness flips without polling (they cannot otherwise observe a
        #: direct ``machine.fail()`` call).
        self.on_liveness_change: Optional[Callable[[], None]] = None
        self._handlers: Dict[str, Handler] = {}
        network.register(self)

    # -- lifecycle -----------------------------------------------------------

    def fail(self) -> None:
        """Crash-stop: the machine drops all future traffic."""
        self.alive = False
        if self.on_liveness_change is not None:
            self.on_liveness_change()

    def recover(self) -> None:
        self.alive = True
        if self.on_liveness_change is not None:
            self.on_liveness_change()

    def depart(self) -> None:
        """Cleanly leave the network (deregisters)."""
        self.alive = False
        self.network.deregister(self.identifier)
        if self.on_liveness_change is not None:
            self.on_liveness_change()

    # -- messaging -----------------------------------------------------------

    def on(self, kind: str, handler: Handler) -> None:
        """Register *handler* for message *kind*."""
        self._handlers[kind] = handler

    def send(self, recipient: int, kind: str, payload: Any = None) -> None:
        if not self.alive:
            return  # dead machines send nothing
        self.network.send(self.identifier, recipient, kind, payload)

    def receive(self, message: Message) -> None:
        if not self.alive:
            return
        handler = self._handlers.get(message.kind)
        if handler is None:
            raise UnknownMessageError(
                f"machine {self.identifier:#x} has no handler for {message.kind!r}"
            )
        handler(message)

    # -- introspection -------------------------------------------------------

    @property
    def traffic(self):
        """This machine's traffic counters."""
        return self.network.traffic[self.identifier]

    @property
    def placement(self):
        """(site, rack) under the network's topology, or None on the flat fabric."""
        topology = self.network.topology
        if topology is None:
            return None
        return topology.place(self.identifier)

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"<{type(self).__name__} {self.identifier:#042x} {state}>"
