"""Message-passing network connecting simulated machines.

The network delivers typed messages between machines over the event
scheduler, counting every send and receive per machine (the raw data behind
Figs. 9 and 10).  Failure awareness: messages addressed to a failed machine
are silently dropped, exactly as a crashed desktop would drop them -- that is
the mechanism by which machine failures translate into SALAD lossiness in the
Fig. 8 experiment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.sim.events import EventScheduler

if TYPE_CHECKING:
    from repro.sim.machine import SimMachine


@dataclass(eq=False, slots=True)
class Message:
    """A network message (immutable by convention; never mutated after send).

    ``kind`` is a protocol-level tag (e.g. ``"record"``, ``"join"``);
    ``payload`` is arbitrary protocol data.  Sender/recipient are machine
    identifiers (large integers, per paper section 2).

    A plain slots dataclass rather than a frozen one: one Message is built
    per send on the simulator's hottest path, and the frozen guard turns
    every field assignment in ``__init__`` into an ``object.__setattr__``
    call.  Nothing compares or hashes messages (``eq=False`` keeps default
    identity semantics explicit).
    """

    sender: int
    recipient: int
    kind: str
    payload: Any


@dataclass
class MachineTraffic:
    """Per-machine traffic counters."""

    sent: int = 0
    received: int = 0
    dropped_to: int = 0  # messages this machine sent that were dropped
    by_kind_sent: Dict[str, int] = field(default_factory=dict)
    by_kind_received: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        """Sent plus received -- the paper's "messages sent and received"."""
        return self.sent + self.received


class Network:
    """The simulated network fabric.

    Machines register under their identifier; :meth:`send` schedules delivery
    after a (possibly jittered) latency.  A message to an unknown, failed, or
    departed machine is counted as sent and then dropped.

    With *batch_delivery* (the default), messages sharing a delivery
    timestamp are queued on one scheduler event per timestep instead of one
    closure-carrying event each, and delivered in send order when that
    timestep fires.  Relative delivery order among messages is exactly that
    of per-message scheduling (time, then send order), so traces and
    counters are unchanged; the only observable difference is against
    non-message events a driver schedules *between* sends at the very same
    timestamp, which SALAD workloads never do (drivers schedule between
    quiescent rounds).  ``batch_delivery=False`` restores the seed's
    one-event-per-message behavior for oracle comparisons.
    """

    def __init__(
        self,
        scheduler: Optional[EventScheduler] = None,
        latency: float = 1.0,
        jitter: float = 0.0,
        loss_probability: float = 0.0,
        rng: Optional[random.Random] = None,
        batch_delivery: bool = True,
    ):
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError(f"loss probability must be in [0,1]: {loss_probability}")
        self.scheduler = scheduler or EventScheduler()
        self.latency = latency
        self.jitter = jitter
        self.loss_probability = loss_probability
        self.batch_delivery = batch_delivery
        self._rng = rng or random.Random(0)
        # Loss draws get their own substream, seeded once from the main rng.
        # Sharing one stream would let turning on loss_probability perturb
        # every subsequent jitter draw (and hence every delivery timestamp),
        # making traces with and without loss incomparable.  The single
        # getrandbits here is the only coupling between the two streams, and
        # it is consumed unconditionally, so the jitter sequence is the same
        # whether or not loss is ever enabled.
        self._loss_rng = random.Random(self._rng.getrandbits(64))
        self._machines: Dict[int, "SimMachine"] = {}
        self.traffic: Dict[int, MachineTraffic] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        #: In-flight messages per delivery timestamp (batch_delivery mode).
        self._pending: Dict[float, List[Message]] = {}
        # Post-window work (see defer_post_window): callbacks queued while a
        # delivery batch is draining, run once the whole batch has been
        # delivered.  Only populated by machines that opt into deferral.
        self._delivering = False
        self._post_window: List[Any] = []
        # Partition map: machine id -> partition label.  Messages crossing
        # partition labels are dropped.  Unlabeled machines share the
        # implicit default partition.
        self._partition_of: Dict[int, object] = {}

    # -- membership ----------------------------------------------------------

    def register(self, machine: "SimMachine") -> None:
        if machine.identifier in self._machines:
            raise ValueError(f"machine {machine.identifier:#x} already registered")
        self._machines[machine.identifier] = machine
        self.traffic.setdefault(machine.identifier, MachineTraffic())

    def deregister(self, identifier: int) -> None:
        self._machines.pop(identifier, None)

    def machine(self, identifier: int) -> Optional["SimMachine"]:
        return self._machines.get(identifier)

    def machines(self) -> Dict[int, "SimMachine"]:
        return dict(self._machines)

    # -- partitions ------------------------------------------------------------

    def partition(self, groups: "Dict[object, list]") -> None:
        """Split the network: messages between different groups are dropped.

        *groups* maps a label to the machine identifiers in that partition.
        Machines not listed stay in the default partition together.
        """
        self._partition_of = {}
        for label, members in groups.items():
            for identifier in members:
                self._partition_of[identifier] = label

    def heal_partition(self) -> None:
        """Restore full connectivity."""
        self._partition_of = {}

    def _partitioned(self, a: int, b: int) -> bool:
        return self._partition_of.get(a) != self._partition_of.get(b)

    # -- traffic -------------------------------------------------------------

    def _traffic(self, identifier: int) -> MachineTraffic:
        # Hot path: avoid constructing a throwaway MachineTraffic per call
        # (setdefault evaluates its default eagerly).
        traffic = self.traffic.get(identifier)
        if traffic is None:
            traffic = self.traffic[identifier] = MachineTraffic()
        return traffic

    def send(self, sender: int, recipient: int, kind: str, payload: Any) -> None:
        """Send a message; delivery is scheduled on the event loop."""
        traffic = self.traffic.get(sender)
        if traffic is None:
            traffic = self.traffic[sender] = MachineTraffic()
        traffic.sent += 1
        traffic.by_kind_sent[kind] = traffic.by_kind_sent.get(kind, 0) + 1
        self.messages_sent += 1

        # One jitter draw and one loss draw per send, in a fixed order and
        # from independent streams, *before* any drop decision.  A dropped
        # message (partition cut or loss) therefore consumes exactly the
        # same randomness as a delivered one, so the delivery timestamps of
        # the surviving messages are identical across runs that differ only
        # in loss/partition settings.
        delay = self.latency
        if self.jitter:
            delay += self._rng.random() * self.jitter
        lost = bool(
            self.loss_probability
            and self._loss_rng.random() < self.loss_probability
        )

        if lost or (self._partition_of and self._partitioned(sender, recipient)):
            traffic.dropped_to += 1
            self.messages_dropped += 1
            return
        # Built only for surviving messages: a dropped send never needs the
        # object, and this runs once per send on the simulator's hottest path.
        message = Message(sender=sender, recipient=recipient, kind=kind, payload=payload)
        if self.batch_delivery:
            # One scheduler event per delivery timestep: queue the message
            # on its timestamp's batch; the first message of a timestep
            # schedules the flush.  FIFO within the batch preserves send
            # order, so delivery order matches per-message scheduling.
            time = self.scheduler.now + delay
            pending = self._pending.get(time)
            if pending is None:
                self._pending[time] = [message]
                self.scheduler.schedule(delay, lambda: self._deliver_pending(time))
            else:
                pending.append(message)
        else:
            self.scheduler.schedule(delay, lambda: self._deliver(message))

    def defer_post_window(self, callback: Any) -> bool:
        """Queue *callback* to run after the current delivery batch drains.

        Returns True if the callback was queued (a batch is draining right
        now), False otherwise -- in which case the caller must do the work
        eagerly itself.  Each queued callback runs exactly once, in
        first-queued order, at the current timestep; anything it sends joins
        the next delivery window after every handler-originated message of
        this one (the queue drains after the batch, so its sends append to
        the pending batches last).
        """
        if not self._delivering:
            return False
        self._post_window.append(callback)
        return True

    def _deliver_pending(self, time: float) -> None:
        self._delivering = True
        try:
            for message in self._pending.pop(time):
                self._deliver(message)
        finally:
            self._delivering = False
        if self._post_window:
            callbacks, self._post_window = self._post_window, []
            for callback in callbacks:
                callback()

    def _deliver(self, message: Message) -> None:
        # Partition membership is re-checked at delivery time, mirroring the
        # machine.alive check below: a partition that forms while a message
        # is in flight severs it, exactly as a machine that crashes while a
        # message is in flight drops it.  (Send-time checking alone would
        # deliver messages across a cut that formed mid-settle.)
        machine = self._machines.get(message.recipient)
        if (
            machine is None
            or not machine.alive
            or (
                self._partition_of
                and self._partitioned(message.sender, message.recipient)
            )
        ):
            self._traffic(message.sender).dropped_to += 1
            self.messages_dropped += 1
            return
        traffic = self.traffic.get(message.recipient)
        if traffic is None:
            traffic = self.traffic[message.recipient] = MachineTraffic()
        traffic.received += 1
        traffic.by_kind_received[message.kind] = (
            traffic.by_kind_received.get(message.kind, 0) + 1
        )
        self.messages_delivered += 1
        machine.receive(message)

    def run(self, **kwargs: Any) -> int:
        """Drain the event loop (delegates to the scheduler)."""
        return self.scheduler.run(**kwargs)
