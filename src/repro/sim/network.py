"""Message-passing network connecting simulated machines.

The network delivers typed messages between machines over the event
scheduler, counting every send and receive per machine (the raw data behind
Figs. 9 and 10).  Failure awareness: messages addressed to a failed machine
are silently dropped, exactly as a crashed desktop would drop them -- that is
the mechanism by which machine failures translate into SALAD lossiness in the
Fig. 8 experiment.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set

from repro.sim.events import EventScheduler
from repro.sim.topology import Topology

if TYPE_CHECKING:
    from repro.sim.machine import SimMachine


@dataclass(eq=False, slots=True)
class Message:
    """A network message (immutable by convention; never mutated after send).

    ``kind`` is a protocol-level tag (e.g. ``"record"``, ``"join"``);
    ``payload`` is arbitrary protocol data.  Sender/recipient are machine
    identifiers (large integers, per paper section 2).

    A plain slots dataclass rather than a frozen one: one Message is built
    per send on the simulator's hottest path, and the frozen guard turns
    every field assignment in ``__init__`` into an ``object.__setattr__``
    call.  Nothing compares or hashes messages (``eq=False`` keeps default
    identity semantics explicit).
    """

    sender: int
    recipient: int
    kind: str
    payload: Any


@dataclass
class MachineTraffic:
    """Per-machine traffic counters."""

    sent: int = 0
    received: int = 0
    dropped_to: int = 0  # messages this machine sent that were dropped
    by_kind_sent: Dict[str, int] = field(default_factory=dict)
    by_kind_received: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        """Sent plus received -- the paper's "messages sent and received"."""
        return self.sent + self.received


class Network:
    """The simulated network fabric.

    Machines register under their identifier; :meth:`send` schedules delivery
    after a (possibly jittered) latency.  A message to an unknown, failed, or
    departed machine is counted as sent and then dropped.

    With a *topology* (:class:`repro.sim.topology.Topology`), the global
    latency is replaced by the per-pair link-class delay (rack/lan/wan
    ticks of the topology quantum), delivery windows are keyed by integer
    tick, per-class message counters are maintained, and named links can be
    severed with :meth:`cut`/:meth:`heal` in addition to the flat
    ``partition()`` labels.  Without a topology every code path below is
    byte-for-byte the flat fabric, and the degenerate one-site topology
    (``topology.one_site(latency)``) reproduces its traces bit-identically.

    With *batch_delivery* (the default), messages sharing a delivery
    timestamp are queued on one scheduler event per timestep instead of one
    closure-carrying event each, and delivered in send order when that
    timestep fires.  Relative delivery order among messages is exactly that
    of per-message scheduling (time, then send order), so traces and
    counters are unchanged; the only observable difference is against
    non-message events a driver schedules *between* sends at the very same
    timestamp, which SALAD workloads never do (drivers schedule between
    quiescent rounds).  ``batch_delivery=False`` restores the seed's
    one-event-per-message behavior for oracle comparisons.
    """

    def __init__(
        self,
        scheduler: Optional[EventScheduler] = None,
        latency: float = 1.0,
        jitter: float = 0.0,
        loss_probability: float = 0.0,
        rng: Optional[random.Random] = None,
        batch_delivery: bool = True,
        topology: Optional[Topology] = None,
    ):
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError(f"loss probability must be in [0,1]: {loss_probability}")
        if topology is not None and jitter:
            # Jitter was flat-fabric noise; with a topology the latency
            # classes carry the heterogeneity, and sub-quantum jitter would
            # break the integer-tick delivery windows that keep batches
            # (and the sharded engine's barrier) exact.
            raise ValueError("jitter is not supported with a topology")
        self.scheduler = scheduler or EventScheduler()
        self.latency = latency
        self.jitter = jitter
        self.loss_probability = loss_probability
        self.batch_delivery = batch_delivery
        self.topology = topology
        self._rng = rng or random.Random(0)
        # Loss draws get their own substream, seeded once from the main rng.
        # Sharing one stream would let turning on loss_probability perturb
        # every subsequent jitter draw (and hence every delivery timestamp),
        # making traces with and without loss incomparable.  The single
        # getrandbits here is the only coupling between the two streams, and
        # it is consumed unconditionally, so the jitter sequence is the same
        # whether or not loss is ever enabled.
        self._loss_rng = random.Random(self._rng.getrandbits(64))
        self._machines: Dict[int, "SimMachine"] = {}
        #: Every identifier that was ever registered; partition() warns on
        #: labels for identifiers outside this set (usually a typo'd id).
        self._ever_registered: Set[int] = set()
        self.traffic: Dict[int, MachineTraffic] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        #: Per-link-class message counters (topology mode only), keyed by
        #: class name ("rack"/"lan"/"wan") -- the raw data behind the
        #: fig_topology per-class load measurements.
        self.class_sent: Dict[str, int] = {}
        self.class_delivered: Dict[str, int] = {}
        self.class_dropped: Dict[str, int] = {}
        #: In-flight messages per delivery window.  Keys are float
        #: timestamps on the flat fabric (seed behavior, kept bit-identical)
        #: and *integer ticks* in topology mode: with heterogeneous per-link
        #: delays, accumulated float timestamps can drift by ulps and split
        #: one logical window into two batches, while tick ids are exact.
        self._pending: Dict[Any, List[Message]] = {}
        #: The integer tick of the batch currently being delivered
        #: (topology mode), so handler re-sends window off an exact integer
        #: instead of re-deriving it from the float clock.
        self._current_tick: Optional[int] = None
        #: Named topology links currently severed (see cut/heal).
        self._severed: Set[str] = set()
        # Post-window work (see defer_post_window): callbacks queued while a
        # delivery batch is draining, run once the whole batch has been
        # delivered.  Only populated by machines that opt into deferral.
        self._delivering = False
        self._post_window: List[Any] = []
        # Partition map: machine id -> partition label.  Messages crossing
        # partition labels are dropped.  Unlabeled machines share the
        # implicit default partition.
        self._partition_of: Dict[int, object] = {}

    # -- membership ----------------------------------------------------------

    def register(self, machine: "SimMachine") -> None:
        if machine.identifier in self._machines:
            raise ValueError(f"machine {machine.identifier:#x} already registered")
        self._machines[machine.identifier] = machine
        self._ever_registered.add(machine.identifier)
        self.traffic.setdefault(machine.identifier, MachineTraffic())

    def deregister(self, identifier: int) -> None:
        self._machines.pop(identifier, None)
        # A departed machine leaves the partition map too: keeping its label
        # would let a later re-registration (or a reused identifier) silently
        # inherit a stale partition and drop traffic with no cut in force.
        self._partition_of.pop(identifier, None)

    def machine(self, identifier: int) -> Optional["SimMachine"]:
        return self._machines.get(identifier)

    def machines(self) -> Dict[int, "SimMachine"]:
        return dict(self._machines)

    # -- partitions ------------------------------------------------------------

    def partition(self, groups: "Dict[object, list]") -> None:
        """Split the network: messages between different groups are dropped.

        *groups* maps a label to the machine identifiers in that partition.
        Machines not listed stay in the default partition together.
        """
        unknown = [
            identifier
            for members in groups.values()
            for identifier in members
            if identifier not in self._ever_registered
        ]
        if unknown:
            warnings.warn(
                f"partition() labels {len(unknown)} machine id(s) that were "
                f"never registered (first: {unknown[0]:#x}); the labels are "
                "inert until such a machine joins",
                RuntimeWarning,
                stacklevel=2,
            )
        self._partition_of = {}
        for label, members in groups.items():
            for identifier in members:
                self._partition_of[identifier] = label

    def heal_partition(self) -> None:
        """Restore full connectivity (clears labels and topology cuts)."""
        self._partition_of = {}
        self._severed.clear()

    def _partitioned(self, a: int, b: int) -> bool:
        return self._partition_of.get(a) != self._partition_of.get(b)

    # -- topology cuts -------------------------------------------------------

    def cut(self, *links: str) -> None:
        """Sever named topology links; messages crossing them are dropped.

        Cuts compose: each call adds to the severed set, and :meth:`heal`
        restores links independently -- unlike the flat ``partition()`` map,
        which is replaced wholesale per call.  Like partitions, cuts are
        re-checked at delivery time, so a cut that forms while a message is
        in flight severs it.
        """
        if self.topology is None:
            raise ValueError("cut() requires a Network with a topology")
        self.topology.validate_links(links)
        self._severed.update(links)

    def heal(self, *links: str) -> None:
        """Heal named links severed by :meth:`cut` (no args: heal all cuts)."""
        if not links:
            self._severed.clear()
            return
        self._severed.difference_update(links)

    def severed_links(self) -> Set[str]:
        """The currently severed link names (a copy)."""
        return set(self._severed)

    # -- traffic -------------------------------------------------------------

    def _traffic(self, identifier: int) -> MachineTraffic:
        # Hot path: avoid constructing a throwaway MachineTraffic per call
        # (setdefault evaluates its default eagerly).
        traffic = self.traffic.get(identifier)
        if traffic is None:
            traffic = self.traffic[identifier] = MachineTraffic()
        return traffic

    def send(self, sender: int, recipient: int, kind: str, payload: Any) -> None:
        """Send a message; delivery is scheduled on the event loop."""
        traffic = self.traffic.get(sender)
        if traffic is None:
            traffic = self.traffic[sender] = MachineTraffic()
        traffic.sent += 1
        traffic.by_kind_sent[kind] = traffic.by_kind_sent.get(kind, 0) + 1
        self.messages_sent += 1

        # One jitter draw and one loss draw per send, in a fixed order and
        # from independent streams, *before* any drop decision.  A dropped
        # message (partition cut or loss) therefore consumes exactly the
        # same randomness as a delivered one, so the delivery timestamps of
        # the surviving messages are identical across runs that differ only
        # in loss/partition/cut settings.
        topology = self.topology
        if topology is not None:
            link_name, link_class = topology.link(sender, recipient)
            class_name = link_class.name
            self.class_sent[class_name] = self.class_sent.get(class_name, 0) + 1
        delay = self.latency
        if self.jitter:
            delay += self._rng.random() * self.jitter
        lost = bool(
            self.loss_probability
            and self._loss_rng.random() < self.loss_probability
        )

        if (
            lost
            or (self._partition_of and self._partitioned(sender, recipient))
            or (topology is not None and self._severed and link_name in self._severed)
        ):
            traffic.dropped_to += 1
            self.messages_dropped += 1
            if topology is not None:
                self.class_dropped[class_name] = (
                    self.class_dropped.get(class_name, 0) + 1
                )
            return
        # Built only for surviving messages: a dropped send never needs the
        # object, and this runs once per send on the simulator's hottest path.
        message = Message(sender=sender, recipient=recipient, kind=kind, payload=payload)
        if topology is not None:
            # Topology mode: the delivery window is an integer tick and the
            # timestamp a single multiplication off it, so equal nominal
            # delays always share a batch regardless of how many float
            # additions produced "now" (cf. sharded.py's exchange rounds).
            due = self._now_tick() + link_class.latency_ticks
            if self.batch_delivery:
                pending = self._pending.get(due)
                if pending is None:
                    self._pending[due] = [message]
                    self.scheduler.schedule_at(
                        due * topology.quantum, lambda: self._deliver_pending(due)
                    )
                else:
                    pending.append(message)
            else:
                self.scheduler.schedule_at(
                    due * topology.quantum, lambda: self._deliver(message)
                )
        elif self.batch_delivery:
            # One scheduler event per delivery timestep: queue the message
            # on its timestamp's batch; the first message of a timestep
            # schedules the flush.  FIFO within the batch preserves send
            # order, so delivery order matches per-message scheduling.
            time = self.scheduler.now + delay
            pending = self._pending.get(time)
            if pending is None:
                self._pending[time] = [message]
                self.scheduler.schedule(delay, lambda: self._deliver_pending(time))
            else:
                pending.append(message)
        else:
            self.scheduler.schedule(delay, lambda: self._deliver(message))

    def _now_tick(self) -> int:
        """The current integer tick of the topology quantum clock.

        Exact while a delivery batch is draining (the batch key *is* the
        tick); between batches -- driver sends from quiescence -- the float
        clock is a tick multiple by construction, so rounding recovers the
        integer exactly.
        """
        if self._current_tick is not None:
            return self._current_tick
        return round(self.scheduler.now / self.topology.quantum)

    def defer_post_window(self, callback: Any) -> bool:
        """Queue *callback* to run after the current delivery batch drains.

        Returns True if the callback was queued (a batch is draining right
        now), False otherwise -- in which case the caller must do the work
        eagerly itself.  Each queued callback runs exactly once, in
        first-queued order, at the current timestep; anything it sends joins
        the next delivery window after every handler-originated message of
        this one (the queue drains after the batch, so its sends append to
        the pending batches last).
        """
        if not self._delivering:
            return False
        self._post_window.append(callback)
        return True

    def _deliver_pending(self, time: Any) -> None:
        if self.topology is not None:
            self._current_tick = time  # batch keys are integer ticks
        self._delivering = True
        try:
            for message in self._pending.pop(time):
                self._deliver(message)
        finally:
            self._delivering = False
        if self._post_window:
            callbacks, self._post_window = self._post_window, []
            try:
                for callback in callbacks:
                    callback()
            finally:
                self._current_tick = None
        else:
            self._current_tick = None

    def _deliver(self, message: Message) -> None:
        # Partition membership is re-checked at delivery time, mirroring the
        # machine.alive check below: a partition that forms while a message
        # is in flight severs it, exactly as a machine that crashes while a
        # message is in flight drops it.  (Send-time checking alone would
        # deliver messages across a cut that formed mid-settle.)
        topology = self.topology
        if topology is not None:
            link_name, link_class = topology.link(message.sender, message.recipient)
            class_name = link_class.name
        machine = self._machines.get(message.recipient)
        if (
            machine is None
            or not machine.alive
            or (
                self._partition_of
                and self._partitioned(message.sender, message.recipient)
            )
            or (topology is not None and self._severed and link_name in self._severed)
        ):
            self._traffic(message.sender).dropped_to += 1
            self.messages_dropped += 1
            if topology is not None:
                self.class_dropped[class_name] = (
                    self.class_dropped.get(class_name, 0) + 1
                )
            return
        traffic = self.traffic.get(message.recipient)
        if traffic is None:
            traffic = self.traffic[message.recipient] = MachineTraffic()
        traffic.received += 1
        traffic.by_kind_received[message.kind] = (
            traffic.by_kind_received.get(message.kind, 0) + 1
        )
        self.messages_delivered += 1
        if topology is not None:
            self.class_delivered[class_name] = (
                self.class_delivered.get(class_name, 0) + 1
            )
        machine.receive(message)

    def run(self, **kwargs: Any) -> int:
        """Drain the event loop (delegates to the scheduler)."""
        return self.scheduler.run(**kwargs)
