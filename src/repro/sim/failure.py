"""Failure injection and crash-recovery measurement.

Fig. 8 of the paper "tested the resilience of the DFC system to machine
failure by randomly failing the simulated machines" and plotting consumed
space versus the machine failure probability.  :func:`fail_randomly`
implements exactly that model: each machine independently fails with
probability p.  :class:`ChurnSchedule` additionally drives join/leave churn
over virtual time for the maintenance protocols (sections 4.4-4.5).

:class:`CrashRecoveryHarness` extends the crash-stop model to the record
*databases*: with a durable backend (``--db-backend sqlite|wal``), killing a
machine mid-run abandons its store without flushing (exactly what a process
crash does), and rejoining reopens the same backing file and recovers every
record that had reached disk.  The harness measures the recovered fraction
against the store's own durability prediction (records minus the unflushed
tail), which is the floor the recovery must meet.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.events import EventScheduler
from repro.sim.machine import SimMachine


def fail_randomly(
    machines: Iterable[SimMachine],
    probability: float,
    rng: random.Random,
) -> List[SimMachine]:
    """Independently crash each machine with the given probability.

    Returns the list of machines that failed.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"failure probability must be in [0,1]: {probability}")
    failed = []
    for machine in machines:
        if rng.random() < probability:
            machine.fail()
            failed.append(machine)
    return failed


def fail_exact_fraction(
    machines: Sequence[SimMachine],
    fraction: float,
    rng: random.Random,
) -> List[SimMachine]:
    """Crash an exact fraction of machines, chosen uniformly at random.

    Lower-variance variant used when sweeping failure rates with few
    machines, so each sweep point reflects its nominal rate.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"failure fraction must be in [0,1]: {fraction}")
    count = round(len(machines) * fraction)
    failed = rng.sample(list(machines), count)
    for machine in failed:
        machine.fail()
    return failed


@dataclass
class ChurnEvent:
    """One scheduled churn action."""

    time: float
    action: str  # "fail" | "recover" | "depart"
    machine: SimMachine


class ChurnSchedule:
    """Drives scheduled machine failures/recoveries/departures over time."""

    def __init__(self, scheduler: EventScheduler):
        self.scheduler = scheduler
        self.history: List[ChurnEvent] = []

    def _apply(self, event: ChurnEvent) -> None:
        if event.action == "fail":
            event.machine.fail()
        elif event.action == "recover":
            event.machine.recover()
        elif event.action == "depart":
            event.machine.depart()
        else:
            raise ValueError(f"unknown churn action {event.action!r}")
        self.history.append(event)

    def at(self, time: float, action: str, machine: SimMachine) -> None:
        """Schedule one churn action at absolute virtual time."""
        event = ChurnEvent(time=time, action=action, machine=machine)
        self.scheduler.schedule_at(time, lambda: self._apply(event))

    def poisson_failures(
        self,
        machines: Sequence[SimMachine],
        rate: float,
        horizon: float,
        rng: random.Random,
        recover_after: float = 0.0,
    ) -> int:
        """Schedule memoryless failures at *rate* per machine per time unit.

        If *recover_after* is positive, each failure is followed by recovery
        after that delay (a temporarily-off desktop rather than a dead one).
        The *horizon* is measured from the scheduler's current virtual time.
        Returns the number of failures scheduled.
        """
        scheduled = 0
        start = self.scheduler.now
        for machine in machines:
            t = start
            while True:
                t += rng.expovariate(rate)
                if t >= start + horizon:
                    break
                self.at(t, "fail", machine)
                scheduled += 1
                if recover_after > 0:
                    self.at(t + recover_after, "recover", machine)
        return scheduled


# ----------------------------------------------------------------------------
# correlated replica-set loss
# ----------------------------------------------------------------------------


def set_down_probability(hosts: Sequence[int], availability: Dict[int, float]) -> float:
    """P(every host in the set is down) for failure-independent machines.

    The analytic loss-event probability for one file: its data is gone
    exactly when all replica hosts are down, so this is the complement of
    ``file_availability`` (kept local to the sim layer -- no farsite import).
    """
    down = 1.0
    for host in hosts:
        down *= 1.0 - availability[host]
    return down


@dataclass
class ReplicaLossReport:
    """Measured vs. analytic data loss after a correlated host outage."""

    dead_hosts: Tuple[int, ...]
    #: Files whose replica sets are entirely within the dead hosts
    #: (the analytic prediction of what the outage destroys).
    files_at_risk: int
    #: Files that actually have zero live replicas (the measurement; must
    #: equal files_at_risk -- any gap is a bookkeeping bug).
    files_lost: int
    total_files: int
    #: P(this exact outage) under the availability model: every dead host
    #: down at once, independent machines.
    loss_event_probability: float

    @property
    def lost_fraction(self) -> float:
        return self.files_lost / self.total_files if self.total_files else 0.0

    @property
    def matches_prediction(self) -> bool:
        return self.files_lost == self.files_at_risk


def measure_replica_loss(
    replica_hosts: Dict[str, Sequence[int]],
    dead_hosts: Iterable[int],
    availability: Dict[int, float],
) -> ReplicaLossReport:
    """Count files with no surviving replica after *dead_hosts* crash.

    *replica_hosts* maps each file id to its current replica hosts (the
    DFC pipeline's post-relocation state).  A file is *at risk* when its
    replica set is a subset of the dead hosts and *lost* when it has no
    live replica -- identical predicates, computed independently so the
    report cross-checks the replica bookkeeping.
    """
    dead = frozenset(dead_hosts)
    at_risk = sum(1 for hosts in replica_hosts.values() if set(hosts) <= dead)
    lost = sum(
        1
        for hosts in replica_hosts.values()
        if not any(h not in dead for h in hosts)
    )
    return ReplicaLossReport(
        dead_hosts=tuple(sorted(dead)),
        files_at_risk=at_risk,
        files_lost=lost,
        total_files=len(replica_hosts),
        loss_event_probability=set_down_probability(sorted(dead), availability),
    )


# ----------------------------------------------------------------------------
# database crash recovery
# ----------------------------------------------------------------------------


@dataclass
class CrashedLeaf:
    """What the harness remembers about one crashed machine's database."""

    records_before: int  # live records at the instant of the crash
    records_durable: int  # of those, records that had reached disk
    recovered: Optional[int] = None  # live records after reopening, once rejoined


@dataclass
class CrashRecoveryReport:
    """Aggregate outcome of one crash-and-rejoin cycle."""

    crashed_leaves: int
    records_before: int
    records_durable: int
    records_recovered: int
    per_leaf: Dict[int, CrashedLeaf] = field(default_factory=dict)

    @property
    def recovered_fraction(self) -> float:
        """Fraction of pre-crash records the rejoined stores actually hold."""
        return self.records_recovered / self.records_before if self.records_before else 1.0

    @property
    def predicted_fraction(self) -> float:
        """The durability prediction: records that had reached disk pre-crash.

        Recovery must restore at least this fraction -- a flushed record can
        only be lost to real corruption, which replay detects and bounds to
        the torn tail.
        """
        return self.records_durable / self.records_before if self.records_before else 1.0

    @property
    def meets_prediction(self) -> bool:
        return self.records_recovered >= self.records_durable


class CrashRecoveryHarness:
    """Kill machines mid-run, then rejoin them from their on-disk stores.

    Usage::

        harness = CrashRecoveryHarness()
        harness.crash(leaves)           # leaf.fail() + database.crash()
        ... rest of the run proceeds without them ...
        report = harness.rejoin()       # reopen stores, leaf.recover()

    ``crash`` abandons each leaf's store *without* flushing, so the unsynced
    tail (``pending_records``) is genuinely lost -- for the memory backend
    that is everything, for sqlite the uncommitted transaction, for the WAL
    the unwritten buffer.  ``rejoin`` reopens each durable store from its
    backing file (replaying the WAL, with any torn tail dropped), reattaches
    it to the leaf, and marks the machine alive again.
    """

    def __init__(self) -> None:
        self._crashed: List[Tuple[object, CrashedLeaf]] = []
        # Lifetime totals across every crash/rejoin cycle, harvested into
        # the metrics registry by collect_metrics().
        self.total_crashed_leaves = 0
        self.total_rejoins = 0
        self.total_records_before = 0
        self.total_records_durable = 0
        self.total_records_recovered = 0

    def collect_metrics(self, registry) -> None:
        """Harvest lifetime crash/recovery totals into *registry*."""
        registry.counter("sim.crash.leaves_crashed").inc(self.total_crashed_leaves)
        registry.counter("sim.crash.rejoin_cycles").inc(self.total_rejoins)
        registry.counter("sim.crash.records_before").inc(self.total_records_before)
        registry.counter("sim.crash.records_durable").inc(self.total_records_durable)
        registry.counter("sim.crash.records_recovered").inc(
            self.total_records_recovered
        )

    def crash_replica_sets(
        self,
        leaves_by_id: Dict[int, object],
        replica_sets: Iterable[Sequence[int]],
    ) -> List[CrashedLeaf]:
        """Crash every host of each given replica set (deduplicated union).

        The adversarial counterpart to :func:`fail_randomly`: instead of
        independent coin flips, kill *all* R hosts holding some file's
        replicas -- the exact correlated outage that makes dedup's
        co-location risky (one duplicate group's canonical set going down
        takes the whole group with it).  Hosts appearing in several sets
        crash once.  Returns the per-leaf snapshots, like :meth:`crash`.
        """
        union: List[int] = []
        seen = set()
        for hosts in replica_sets:
            for host in hosts:
                if host not in seen:
                    seen.add(host)
                    union.append(host)
        return self.crash([leaves_by_id[host] for host in union])

    def crash(self, leaves: Iterable) -> List[CrashedLeaf]:
        """Crash-stop each leaf and abandon its database without flushing."""
        snapshots = []
        for leaf in leaves:
            store = leaf.database
            info = CrashedLeaf(
                records_before=len(store),
                records_durable=len(store) - store.pending_records,
            )
            store.crash()
            leaf.fail()
            self._crashed.append((leaf, info))
            snapshots.append(info)
            self.total_crashed_leaves += 1
            self.total_records_before += info.records_before
            self.total_records_durable += info.records_durable
        return snapshots

    def rejoin(self) -> CrashRecoveryReport:
        """Reopen every crashed leaf's store from disk and bring it back up."""
        report = CrashRecoveryReport(
            crashed_leaves=len(self._crashed),
            records_before=0,
            records_durable=0,
            records_recovered=0,
        )
        for leaf, info in self._crashed:
            leaf.database = self._reopen(leaf.database)
            leaf.recover()
            info.recovered = len(leaf.database)
            report.records_before += info.records_before
            report.records_durable += info.records_durable
            report.records_recovered += info.recovered
            report.per_leaf[leaf.identifier] = info
        self._crashed.clear()
        self.total_rejoins += 1
        self.total_records_recovered += report.records_recovered
        return report

    @staticmethod
    def _reopen(store):
        """A fresh store over the same backing file (empty for memory)."""
        if store.path is None:
            return type(store)(capacity=store.capacity)
        return type(store)(store.path, capacity=store.capacity)
