"""Failure injection.

Fig. 8 of the paper "tested the resilience of the DFC system to machine
failure by randomly failing the simulated machines" and plotting consumed
space versus the machine failure probability.  :func:`fail_randomly`
implements exactly that model: each machine independently fails with
probability p.  :class:`ChurnSchedule` additionally drives join/leave churn
over virtual time for the maintenance protocols (sections 4.4-4.5).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.sim.events import EventScheduler
from repro.sim.machine import SimMachine


def fail_randomly(
    machines: Iterable[SimMachine],
    probability: float,
    rng: random.Random,
) -> List[SimMachine]:
    """Independently crash each machine with the given probability.

    Returns the list of machines that failed.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"failure probability must be in [0,1]: {probability}")
    failed = []
    for machine in machines:
        if rng.random() < probability:
            machine.fail()
            failed.append(machine)
    return failed


def fail_exact_fraction(
    machines: Sequence[SimMachine],
    fraction: float,
    rng: random.Random,
) -> List[SimMachine]:
    """Crash an exact fraction of machines, chosen uniformly at random.

    Lower-variance variant used when sweeping failure rates with few
    machines, so each sweep point reflects its nominal rate.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"failure fraction must be in [0,1]: {fraction}")
    count = round(len(machines) * fraction)
    failed = rng.sample(list(machines), count)
    for machine in failed:
        machine.fail()
    return failed


@dataclass
class ChurnEvent:
    """One scheduled churn action."""

    time: float
    action: str  # "fail" | "recover" | "depart"
    machine: SimMachine


class ChurnSchedule:
    """Drives scheduled machine failures/recoveries/departures over time."""

    def __init__(self, scheduler: EventScheduler):
        self.scheduler = scheduler
        self.history: List[ChurnEvent] = []

    def _apply(self, event: ChurnEvent) -> None:
        if event.action == "fail":
            event.machine.fail()
        elif event.action == "recover":
            event.machine.recover()
        elif event.action == "depart":
            event.machine.depart()
        else:
            raise ValueError(f"unknown churn action {event.action!r}")
        self.history.append(event)

    def at(self, time: float, action: str, machine: SimMachine) -> None:
        """Schedule one churn action at absolute virtual time."""
        event = ChurnEvent(time=time, action=action, machine=machine)
        self.scheduler.schedule_at(time, lambda: self._apply(event))

    def poisson_failures(
        self,
        machines: Sequence[SimMachine],
        rate: float,
        horizon: float,
        rng: random.Random,
        recover_after: float = 0.0,
    ) -> int:
        """Schedule memoryless failures at *rate* per machine per time unit.

        If *recover_after* is positive, each failure is followed by recovery
        after that delay (a temporarily-off desktop rather than a dead one).
        The *horizon* is measured from the scheduler's current virtual time.
        Returns the number of failures scheduled.
        """
        scheduled = 0
        start = self.scheduler.now
        for machine in machines:
            t = start
            while True:
                t += rng.expovariate(rate)
                if t >= start + horizon:
                    break
                self.at(t, "fail", machine)
                scheduled += 1
                if recover_after > 0:
                    self.at(t + recover_after, "recover", machine)
        return scheduled
