"""Discrete-event simulation substrate.

The paper evaluates the DFC subsystem "via large-scale simulation" on 585 to
10,000 simulated machines (section 5).  This package is that simulator:

- :mod:`repro.sim.events` -- deterministic discrete-event scheduler.
- :mod:`repro.sim.network` -- message-passing network with per-machine
  sent/received counters, latency, loss, and failure awareness.
- :mod:`repro.sim.machine` -- base class for simulated machines.
- :mod:`repro.sim.failure` -- failure injection (Fig. 8 and churn).
- :mod:`repro.sim.metrics` -- counters, CDFs, coefficient of variation.
- :mod:`repro.sim.rng` -- seeded, stream-split deterministic randomness.
"""

from repro.sim.events import EventScheduler
from repro.sim.machine import SimMachine
from repro.sim.metrics import Cdf, coefficient_of_variation
from repro.sim.network import Message, Network
from repro.sim.rng import SeedSequence

__all__ = [
    "Cdf",
    "EventScheduler",
    "Message",
    "Network",
    "SeedSequence",
    "SimMachine",
    "coefficient_of_variation",
]
