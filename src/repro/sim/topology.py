"""Network topology: sites, racks, and WAN links with latency classes.

The paper's section 2 deployment is a corporate LAN/WAN of desktops, not a
flat fabric: machines sit in racks on switched LAN segments, sites connect
over much slower WAN links.  :class:`Topology` models that as a two-level
hierarchy -- *sites* each holding *racks* -- with three link classes:

``rack``
    both endpoints in the same rack (same switch),
``lan``
    same site, different racks (across the site backbone),
``wan``
    different sites (over an inter-site trunk).

Each class has an integer latency in *ticks* of a common ``quantum``
(virtual-time units), so every per-pair delay is an exact multiple of the
quantum and delivery windows can be identified by integer tick -- the same
trick :mod:`repro.salad.sharded` uses for exchange rounds.  Integer windows
matter: accumulating heterogeneous float delays (``now + delay`` per hop)
drifts by ulps and can split one logical delivery window into two scheduler
buckets; ``tick * quantum`` is a single multiplication and cannot.

Placement is deterministic: a machine's (site, rack) is derived by hashing
its identifier, so the same machine lands on the same site in every engine
and every run.  The hash deliberately mixes *all* identifier bits --
placement must stay independent of the low bits, which the sharded engine
uses to pick sub-cubes and SALAD uses for cell geometry.

Links are *named* (``rack:2.1``, ``lan:0``, ``wan:1-3``) so partitions can
be expressed as topology cuts: :meth:`repro.sim.network.Network.cut` severs
a named link set and heals each link independently, composing with the flat
label partitions that remain the degenerate one-site case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

_MASK64 = (1 << 64) - 1


def _mix64(value: int) -> int:
    """SplitMix64 finalizer over an identifier of any width.

    Identifiers are 160-bit hashes; fold them to 64 bits first, then run
    the standard finalizer so every output bit depends on every input bit.
    """
    x = (value ^ (value >> 64) ^ (value >> 128)) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


@dataclass(frozen=True)
class LinkClass:
    """One latency/bandwidth class of links (rack, lan, or wan)."""

    name: str
    latency_ticks: int
    bandwidth: str  # descriptive class label ("switched-100M", "T1", ...)

    def __post_init__(self) -> None:
        if self.latency_ticks < 1:
            raise ValueError(
                f"link class {self.name!r} needs latency_ticks >= 1, "
                f"got {self.latency_ticks}"
            )


class Topology:
    """Two-level site/rack topology with per-class integer-tick latencies.

    The default (``sites=1, racks_per_site=1``) is the degenerate one-site
    topology: every pair shares one rack link of ``rack_ticks * quantum``
    delay, which with the defaults equals the flat fabric's ``latency=1.0``
    -- traces under it are bit-identical to running without a topology.
    """

    def __init__(
        self,
        sites: int = 1,
        racks_per_site: int = 1,
        quantum: float = 1.0,
        rack_ticks: int = 1,
        lan_ticks: int = 2,
        wan_ticks: int = 10,
        name: str = "custom",
        rack_bandwidth: str = "switched-100M",
        lan_bandwidth: str = "backbone-1G",
        wan_bandwidth: str = "T1",
    ):
        if sites < 1:
            raise ValueError(f"need at least one site, got {sites}")
        if racks_per_site < 1:
            raise ValueError(f"need at least one rack per site, got {racks_per_site}")
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        self.sites = sites
        self.racks_per_site = racks_per_site
        self.quantum = quantum
        self.name = name
        self.rack_class = LinkClass("rack", rack_ticks, rack_bandwidth)
        self.lan_class = LinkClass("lan", lan_ticks, lan_bandwidth)
        self.wan_class = LinkClass("wan", wan_ticks, wan_bandwidth)
        self._classes = {
            "rack": self.rack_class,
            "lan": self.lan_class,
            "wan": self.wan_class,
        }
        self._placement: Dict[int, Tuple[int, int]] = {}

    # -- placement -----------------------------------------------------------

    def place(self, identifier: int) -> Tuple[int, int]:
        """Deterministic (site, rack) placement of a machine identifier."""
        placed = self._placement.get(identifier)
        if placed is None:
            mixed = _mix64(identifier)
            site = mixed % self.sites
            rack = (mixed // self.sites) % self.racks_per_site
            placed = self._placement[identifier] = (site, rack)
        return placed

    # -- links ---------------------------------------------------------------

    def link(self, a: int, b: int) -> Tuple[str, LinkClass]:
        """The (link name, link class) connecting machines *a* and *b*."""
        site_a, rack_a = self.place(a)
        site_b, rack_b = self.place(b)
        if site_a != site_b:
            lo, hi = (site_a, site_b) if site_a < site_b else (site_b, site_a)
            return f"wan:{lo}-{hi}", self.wan_class
        if rack_a != rack_b:
            return f"lan:{site_a}", self.lan_class
        return f"rack:{site_a}.{rack_a}", self.rack_class

    def delay_ticks(self, a: int, b: int) -> int:
        """Per-pair delivery delay in quantum ticks."""
        return self.link(a, b)[1].latency_ticks

    def delay(self, a: int, b: int) -> float:
        """Per-pair delivery delay in virtual-time units."""
        return self.delay_ticks(a, b) * self.quantum

    def classes(self) -> Dict[str, LinkClass]:
        """All three link classes by name (rack/lan/wan)."""
        return dict(self._classes)

    def link_names(self) -> List[str]:
        """Every named link in the topology (for cut validation/iteration)."""
        names: List[str] = []
        for site in range(self.sites):
            for rack in range(self.racks_per_site):
                names.append(f"rack:{site}.{rack}")
            if self.racks_per_site > 1:
                names.append(f"lan:{site}")
        for lo in range(self.sites):
            for hi in range(lo + 1, self.sites):
                names.append(f"wan:{lo}-{hi}")
        return names

    def wan_links(self, site: Optional[int] = None) -> List[str]:
        """WAN link names, optionally only those touching *site*."""
        links = []
        for lo in range(self.sites):
            for hi in range(lo + 1, self.sites):
                if site is None or site in (lo, hi):
                    links.append(f"wan:{lo}-{hi}")
        return links

    def validate_links(self, names: Iterable[str]) -> None:
        """Raise ValueError if any name is not a link of this topology."""
        known = set(self.link_names())
        unknown = [name for name in names if name not in known]
        if unknown:
            raise ValueError(
                f"unknown topology links {unknown!r}; known links are "
                f"{sorted(known)!r}"
            )

    # -- uniformity (sharding contract) --------------------------------------

    def reachable_classes(self) -> List[LinkClass]:
        """Link classes that can actually occur between some machine pair."""
        classes = [self.rack_class]
        if self.racks_per_site > 1:
            classes.append(self.lan_class)
        if self.sites > 1:
            classes.append(self.wan_class)
        return classes

    def is_uniform(self) -> bool:
        """True if every reachable pair has the same delay.

        This is the condition under which the sharded engine's one-window
        barrier remains sound: all in-flight messages of a window share one
        delivery tick.
        """
        ticks = {cls.latency_ticks for cls in self.reachable_classes()}
        return len(ticks) == 1

    def uniform_ticks(self) -> int:
        """The single per-pair delay in ticks (requires :meth:`is_uniform`)."""
        if not self.is_uniform():
            raise ValueError(f"topology {self.describe()} is not uniform")
        return self.rack_class.latency_ticks

    def uniform_latency(self) -> float:
        """The single per-pair delay in time units (requires uniformity)."""
        return self.uniform_ticks() * self.quantum

    # -- description ---------------------------------------------------------

    def describe(self) -> str:
        return (
            f"{self.name}(sites={self.sites}, racks={self.racks_per_site}, "
            f"ticks rack/lan/wan={self.rack_class.latency_ticks}/"
            f"{self.lan_class.latency_ticks}/{self.wan_class.latency_ticks}, "
            f"quantum={self.quantum})"
        )

    def __repr__(self) -> str:
        return f"<Topology {self.describe()}>"


def one_site(latency: float = 1.0) -> Topology:
    """The degenerate topology: one site, one rack, every pair *latency*.

    Trace-identical to the flat fabric with the same global latency.
    """
    return Topology(
        sites=1,
        racks_per_site=1,
        quantum=latency,
        rack_ticks=1,
        lan_ticks=1,
        wan_ticks=1,
        name="one-site",
    )


_PRESETS = {
    "one-site": lambda: one_site(),
    # A single-building campus: eight racks over one backbone.
    "campus": lambda: Topology(
        sites=1, racks_per_site=8, rack_ticks=1, lan_ticks=2, name="campus"
    ),
    # The paper section 2 corporate deployment: a few sites of desktop
    # LANs joined by WAN trunks an order of magnitude slower.
    "corporate": lambda: Topology(
        sites=4,
        racks_per_site=4,
        rack_ticks=1,
        lan_ticks=2,
        wan_ticks=10,
        name="corporate",
    ),
}

_SPEC_KEYS = {"sites", "racks", "rack", "lan", "wan", "quantum"}


def parse_topology(spec: Optional[str]) -> Optional[Topology]:
    """Parse a CLI topology spec into a :class:`Topology` (or None).

    Accepted forms::

        None / "" / "none" / "flat"    -> None (the flat fabric)
        "one-site" | "campus" | "corporate"  -> preset
        "sites=4,racks=2,rack=1,lan=2,wan=10,quantum=0.5"  -> custom
        "corporate,wan=20"             -> preset with overrides

    Keys: sites, racks (per site), rack/lan/wan (latency ticks), quantum.
    """
    if spec is None:
        return None
    spec = spec.strip()
    if not spec or spec.lower() in ("none", "flat"):
        return None
    parts = [part.strip() for part in spec.split(",") if part.strip()]
    overrides: Dict[str, float] = {}
    preset: Optional[str] = None
    for index, part in enumerate(parts):
        if "=" not in part:
            if index != 0:
                raise ValueError(
                    f"topology preset name must come first in {spec!r}"
                )
            if part not in _PRESETS:
                raise ValueError(
                    f"unknown topology preset {part!r}; presets: "
                    f"{sorted(_PRESETS)}"
                )
            preset = part
            continue
        key, _, raw = part.partition("=")
        key = key.strip()
        if key not in _SPEC_KEYS:
            raise ValueError(
                f"unknown topology key {key!r} in {spec!r}; keys: "
                f"{sorted(_SPEC_KEYS)}"
            )
        try:
            overrides[key] = float(raw) if key == "quantum" else int(raw)
        except ValueError:
            raise ValueError(f"bad value for topology key {key!r}: {raw!r}")
    if preset is not None and not overrides:
        return _PRESETS[preset]()
    base = _PRESETS[preset]() if preset is not None else Topology(name="custom")
    return Topology(
        sites=int(overrides.get("sites", base.sites)),
        racks_per_site=int(overrides.get("racks", base.racks_per_site)),
        quantum=float(overrides.get("quantum", base.quantum)),
        rack_ticks=int(overrides.get("rack", base.rack_class.latency_ticks)),
        lan_ticks=int(overrides.get("lan", base.lan_class.latency_ticks)),
        wan_ticks=int(overrides.get("wan", base.wan_class.latency_ticks)),
        name=preset or "custom",
        rack_bandwidth=base.rack_class.bandwidth,
        lan_bandwidth=base.lan_class.bandwidth,
        wan_bandwidth=base.wan_class.bandwidth,
    )


def topology_presets() -> List[str]:
    """Names accepted by :func:`parse_topology` as presets."""
    return sorted(_PRESETS)
