"""Analysis utilities: space accounting, CDFs, and report rendering.

- :mod:`repro.analysis.space` -- consumed/reclaimed space computation from
  SALAD match notifications (the y-axis of Figs. 7, 8, and 13).
- :mod:`repro.analysis.cdf` -- cumulative distributions and CoV (Figs. 10,
  12, 15).
- :mod:`repro.analysis.reporting` -- fixed-width tables of each figure's
  series.
"""

from repro.analysis.space import SpaceAccounting, UnionFind, reclaimed_bytes_from_matches

__all__ = ["SpaceAccounting", "UnionFind", "reclaimed_bytes_from_matches"]
