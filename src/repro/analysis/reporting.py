"""Fixed-width table rendering for experiment output.

Every experiment prints its figure as a text table: the x-axis values down
the first column and one column per series (e.g. per Lambda).  The paper's
figures are line charts; the tables carry the same rows/series.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

Number = Union[int, float]

_KILO = 1024


def format_bytes(value: float) -> str:
    """Human bytes: 4.0K, 2.3M, 1.1G -- matching the paper's axis labels."""
    for suffix in ("", "K", "M", "G", "T"):
        if abs(value) < _KILO:
            if suffix == "" or float(value).is_integer() and value < 10 * _KILO:
                return f"{value:.0f}{suffix}"
            return f"{value:.1f}{suffix}"
        value /= _KILO
    return f"{value:.1f}P"


def format_number(value: Number, decimals: int = 1) -> str:
    if isinstance(value, int):
        return str(value)
    return f"{value:,.{decimals}f}"


def render_table(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    series: Dict[str, Sequence[Number]],
    x_formatter=str,
    value_formatter=format_number,
) -> str:
    """Render one figure's data as a fixed-width text table."""
    for label, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {label!r} has {len(values)} values for {len(x_values)} x points"
            )
    headers = [x_label] + list(series)
    rows: List[List[str]] = []
    for i, x in enumerate(x_values):
        row = [x_formatter(x)]
        for label in series:
            row.append(value_formatter(series[label][i]))
        rows.append(row)
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rows)) if rows else len(headers[c])
        for c in range(len(headers))
    ]
    lines = [title]
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_kv(title: str, pairs: Dict[str, object]) -> str:
    """Render a key/value block (dataset summaries, single-value results)."""
    width = max(len(k) for k in pairs) if pairs else 0
    lines = [title]
    for key, value in pairs.items():
        lines.append(f"  {key.ljust(width)} : {value}")
    return "\n".join(lines)
