"""CDF helpers for the distribution figures (Figs. 10, 12, 15).

Thin re-exports plus figure-specific conveniences around
:class:`repro.sim.metrics.Cdf`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.sim.metrics import Cdf, coefficient_of_variation

__all__ = ["Cdf", "coefficient_of_variation", "cdf_series", "sampled_cdf_points"]


def cdf_series(samples_by_label: Dict[str, Sequence[float]]) -> Dict[str, Cdf]:
    """Build one CDF per labeled series (e.g. one per Lambda value)."""
    return {label: Cdf.from_samples(samples) for label, samples in samples_by_label.items()}


def sampled_cdf_points(cdf: Cdf, points: int = 20) -> List[Tuple[float, float]]:
    """Evenly spaced (value, cumulative frequency) samples for tabular output.

    The full CDF has one step per distinct sample; reports print a fixed
    number of evenly spaced quantiles instead.
    """
    if len(cdf) == 0:
        return []
    out = []
    for i in range(1, points + 1):
        q = i / points
        out.append((cdf.quantile(q), q))
    return out
