"""Space accounting: from SALAD match notifications to reclaimed bytes.

The DFC pipeline reclaims space by coalescing files whose identicality SALAD
*discovered*.  A duplicate notification tells machine ``l`` that machine
``k`` holds a file with fingerprint ``f``; the relocation subsystem then
co-locates those replicas and the Single-Instance Store coalesces them.
Space accounting therefore works on the *transitive closure* of discovered
pairs: for each content, the connected components of the discovery graph can
each be coalesced into a single stored copy, so a component of size c
reclaims ``(c - 1) * size`` bytes.  Copies SALAD never matched (lossiness,
failures, thresholds, database eviction) remain separate files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Tuple

from repro.core.fingerprint import Fingerprint
from repro.salad.protocol import MatchPayload
from repro.workload.corpus import Corpus


class UnionFind:
    """Disjoint sets over arbitrary hashable items (path halving + rank)."""

    def __init__(self) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}

    def find(self, item: Hashable) -> Hashable:
        parent = self._parent
        if item not in parent:
            parent[item] = item
            self._rank[item] = 0
            return item
        while parent[item] != item:
            parent[item] = parent[parent[item]]  # path halving
            item = parent[item]
        return item

    def union(self, a: Hashable, b: Hashable) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1

    def components(self) -> Dict[Hashable, List[Hashable]]:
        out: Dict[Hashable, List[Hashable]] = {}
        for item in self._parent:
            out.setdefault(self.find(item), []).append(item)
        return out


def reclaimed_bytes_from_matches(
    matches: Iterable[Tuple[int, MatchPayload]],
    min_size: int = 0,
) -> int:
    """Bytes reclaimable from discovered duplicate pairs.

    *matches* are ``(receiving_machine, payload)`` pairs as collected by
    :meth:`repro.salad.salad.Salad.collected_matches`.  Pairs whose file size
    is below *min_size* are ignored (the Fig. 7 threshold).

    For each fingerprint, machines linked by at least one notification form
    coalescible components; a component of c machines stores one copy
    instead of c.
    """
    forest: Dict[Fingerprint, UnionFind] = {}
    for machine, payload in matches:
        if payload.fingerprint.size < min_size:
            continue
        uf = forest.setdefault(payload.fingerprint, UnionFind())
        uf.union(machine, payload.other_machine)
    reclaimed = 0
    for fingerprint, uf in forest.items():
        for members in uf.components().values():
            reclaimed += (len(members) - 1) * fingerprint.size
    return reclaimed


@dataclass
class SpaceAccounting:
    """Consumed-space bookkeeping for one corpus (the Figs. 7/8/13 y-axis)."""

    corpus: Corpus
    total_bytes: int = field(init=False)

    def __post_init__(self) -> None:
        self.total_bytes = self.corpus.total_bytes

    def ideal_consumed_bytes(self, min_size: int = 0) -> int:
        """Space after *perfect* coalescing of files >= min_size.

        This is the "ideal" curve of Fig. 7.
        """
        return self.total_bytes - self.corpus.ideal_reclaimable_bytes(min_size)

    def consumed_bytes(
        self,
        matches: Iterable[Tuple[int, MatchPayload]],
        min_size: int = 0,
    ) -> int:
        """Space after coalescing what the (lossy) DFC actually discovered."""
        return self.total_bytes - reclaimed_bytes_from_matches(matches, min_size)

    def reclaimed_fraction(
        self,
        matches: Iterable[Tuple[int, MatchPayload]],
        min_size: int = 0,
    ) -> float:
        """Fraction of all consumed space reclaimed (paper quotes 38%/46%)."""
        if self.total_bytes == 0:
            return 0.0
        return reclaimed_bytes_from_matches(matches, min_size) / self.total_bytes
