"""``python -m repro.obs``: the observability command-line surface.

Two forms::

    python -m repro.obs REPORT.json        # validate + summarize a RunReport
    python -m repro.obs tail FILE [-n N]   # render a flight recorder's tail

The bare-path form is equivalent to ``python -m repro.obs.report`` but
avoids the runpy double-import warning (the package __init__ already
imports the report module for its re-exports).  ``tail`` renders the last
N lines (default 20) of a ``--flight-recorder`` JSONL file -- heartbeats
with their stats, then the ring of recent trace events -- for watching a
long flagship run live (``watch python -m repro.obs tail FILE`` works).
"""

import sys

from repro.obs.report import main as report_main
from repro.obs.tracing import render_flight_tail


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] == "tail":
        args = args[1:]
        limit = 20
        if "-n" in args:
            at = args.index("-n")
            try:
                limit = int(args[at + 1])
            except (IndexError, ValueError):
                print("tail: -n needs an integer", file=sys.stderr)
                return 2
            del args[at : at + 2]
        if len(args) != 1:
            print(
                "usage: python -m repro.obs tail FLIGHT.jsonl [-n LINES]",
                file=sys.stderr,
            )
            return 2
        for line in render_flight_tail(args[0], limit=limit):
            print(line)
        return 0
    return report_main(args)


if __name__ == "__main__":
    sys.exit(main())
