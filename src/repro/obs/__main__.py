"""``python -m repro.obs REPORT.json``: validate + summarize a RunReport.

Equivalent to ``python -m repro.obs.report`` but avoids the runpy
double-import warning (the package __init__ already imports the report
module for its re-exports).
"""

import sys

from repro.obs.report import main

if __name__ == "__main__":
    sys.exit(main())
