"""repro.obs: zero-dependency telemetry (metrics, spans, run reports).

See ``docs/OBSERVABILITY.md`` for the metric catalog, span conventions,
and the RunReport JSON schema.
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    bucket_of,
    disable,
    enable,
    enabled,
    get_registry,
)
from repro.obs.report import (
    SCHEMA,
    build_run_report,
    print_summary,
    summary_table,
    validate_run_report,
    write_run_report,
)
from repro.obs.spans import Span, current_span, phase, span, take_phases
from repro.obs.tracing import (
    FlightRecorder,
    TraceRecorder,
    build_timelines,
    export_chrome_trace,
    heartbeat,
    install_flight_recorder,
    trace_id_for,
    uninstall_flight_recorder,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "bucket_of",
    "disable",
    "enable",
    "enabled",
    "get_registry",
    "SCHEMA",
    "build_run_report",
    "print_summary",
    "summary_table",
    "validate_run_report",
    "write_run_report",
    "Span",
    "current_span",
    "phase",
    "span",
    "take_phases",
    "FlightRecorder",
    "TraceRecorder",
    "build_timelines",
    "export_chrome_trace",
    "heartbeat",
    "install_flight_recorder",
    "trace_id_for",
    "uninstall_flight_recorder",
]
