"""Sampled causal tracing + flight recorder for long runs.

Two complementary instruments, both zero-cost when disabled:

1. **Causal traces.**  A deterministic sampler (a SplitMix64-style hash of
   the record's routing id, no RNG consumed) selects a fraction of inserted
   records; every subsystem a sampled record flows through -- the origin
   leaf, each routing hop, the cross-shard envelope exchange, the record
   store and its flush -- emits a small event dict tagged with the record's
   ``trace_id``.  Events from every shard worker merge by trace_id into one
   per-record timeline (:func:`build_timelines`) and export as Chrome
   trace-event JSON loadable in Perfetto (:func:`export_chrome_trace`).

   Sampling is a pure predicate on data that both engines already carry, so
   a traced run and an untraced run execute the *same* message trace; the
   golden tests in ``tests/salad/test_trace_golden.py`` pin that down.

2. **Flight recorder.**  A bounded ring of recent trace events plus
   periodic heartbeat snapshots (insert rate, RSS, counters the caller
   passes) appended as JSONL while a long run executes, so a multi-hour
   flagship run is diagnosable live (``python -m repro.obs tail FILE``)
   and post-mortem after a crash -- the ring survives in the last
   heartbeat's wake.

Like the rest of ``repro.obs`` this module is dependency-free and imports
nothing from the simulation packages: engines hand it plain ints, floats,
and callables at activation time.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "ACTIVE",
    "FLIGHT",
    "FlightRecorder",
    "TraceRecorder",
    "activate",
    "adopt_events",
    "build_timelines",
    "deactivate",
    "export_chrome_trace",
    "heartbeat",
    "install_flight_recorder",
    "sample_threshold",
    "take_events",
    "trace_id_for",
    "uninstall_flight_recorder",
]

_MASK64 = (1 << 64) - 1

#: Domain-separation salts: the sampling decision and the trace id must be
#: independent hashes of the same routing id, or every sampled record would
#: share low trace-id bits.
_SAMPLE_SALT = 0x7472616365730A01  # "traces\n\x01"
_TRACE_ID_SALT = 0x7472616365730A02


def _mix64(value: int) -> int:
    """SplitMix64 finalizer over a (possibly 160-bit) identifier.

    Same construction as ``repro.sim.topology._mix64`` (kept local so obs
    stays import-free): fold the wide id to 64 bits by XOR, then run the
    SplitMix64 avalanche so every input bit diffuses into the output.
    """
    x = (value ^ (value >> 64) ^ (value >> 128)) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def sample_threshold(rate: float) -> int:
    """The 32-bit acceptance threshold for a sampling rate in [0, 1]."""
    if rate <= 0.0:
        return 0
    if rate >= 1.0:
        return 1 << 32
    return int(rate * (1 << 32))


def trace_id_for(routing_id: int, location: int) -> int:
    """Deterministic 64-bit trace id of one ``(fingerprint, location)`` record.

    Every process re-derives the same id from data the record already
    carries, so no id ever needs to travel alongside the record itself --
    the wire extension exists only to mark *which* envelope carried it.
    """
    return _mix64(_mix64(routing_id ^ _TRACE_ID_SALT) ^ _mix64(location))


#: Ordering rank for same-timestamp events so merged timelines read causally.
_KIND_ORDER = {
    "insert": 0,
    "route.hop": 1,
    "envelope.stage": 2,
    "envelope.deliver": 3,
    "exchange.round": 4,
    "store": 5,
    "store.flush": 6,
}


class TraceRecorder:
    """Per-process event sink for one engine (or one shard worker).

    Hot paths hold no reference to this object; they read the module global
    :data:`ACTIVE` once per batch and skip everything when it is ``None``,
    mirroring the harvest pattern's zero-cost-when-off discipline.
    """

    __slots__ = (
        "sample_rate",
        "shard",
        "events",
        "records_sampled",
        "_threshold",
        "_seq",
        "_now",
        "_link_of",
        "_pending_flush",
    )

    def __init__(
        self,
        sample_rate: float,
        shard: Optional[int] = None,
        now: Optional[Callable[[], float]] = None,
        link_of: Optional[Callable[[int, int], Tuple[str, str]]] = None,
    ) -> None:
        self.sample_rate = float(sample_rate)
        self.shard = shard
        self.events: List[dict] = []
        self.records_sampled = 0
        self._threshold = sample_threshold(sample_rate)
        self._seq = 0
        self._now = now or (lambda: 0.0)
        self._link_of = link_of
        # machine id -> trace ids stored since that machine's last flush.
        self._pending_flush: Dict[int, List[int]] = {}

    # -- sampling ---------------------------------------------------------

    def sampled(self, routing_id: int) -> bool:
        """Deterministic predicate: no RNG is consumed, so sampling can
        never perturb the simulated message trace."""
        return (_mix64(routing_id ^ _SAMPLE_SALT) >> 32) < self._threshold

    # -- event emission ---------------------------------------------------

    def emit(self, kind: str, trace_id: Optional[int], machine: Optional[int], **extra) -> None:
        event = {
            "kind": kind,
            "trace_id": None if trace_id is None else f"{trace_id:016x}",
            "t": self._now(),
            "seq": self._seq,
            "shard": self.shard,
            "machine": None if machine is None else f"{machine:x}",
        }
        if extra:
            event.update(extra)
        self._seq += 1
        self.events.append(event)
        flight = FLIGHT
        if flight is not None:
            flight.note_event(event)

    def record_insert(self, record, machine: int) -> None:
        self.records_sampled += 1
        self.emit(
            "insert",
            trace_id_for(record._rid, record.location),
            machine,
            location=f"{record.location:x}",
            size=record.fingerprint.size,
        )

    def record_hop(self, record, hops: int, sender: int, machine: int) -> None:
        extra = {"hops": hops, "sender": f"{sender:x}"}
        if self._link_of is not None:
            link, link_class = self._link_of(sender, machine)
            extra["link"] = link
            extra["link_class"] = link_class
        self.emit("route.hop", trace_id_for(record._rid, record.location), machine, **extra)

    def record_store(self, record, machine: int, hops: int) -> None:
        tid = trace_id_for(record._rid, record.location)
        self.emit("store", tid, machine, hops=hops)
        self._pending_flush.setdefault(machine, []).append(tid)

    def record_flush(self, machine: int) -> None:
        pending = self._pending_flush.pop(machine, None)
        if not pending:
            return
        for tid in pending:
            self.emit("store.flush", tid, machine)

    def record_envelope_stage(
        self, trace_ids: Iterable[int], target_shard: int, machine: Optional[int] = None
    ) -> None:
        for tid in trace_ids:
            self.emit("envelope.stage", tid, machine, target_shard=target_shard)

    def record_envelope_deliver(
        self, trace_ids: Iterable[int], source_shard: int, window: int
    ) -> None:
        for tid in trace_ids:
            self.emit(
                "envelope.deliver", tid, None, source_shard=source_shard, window=window
            )

    def record_exchange_round(self, window: int, exchange_round: int, bytes_sent: int) -> None:
        self.emit(
            "exchange.round",
            None,
            None,
            window=window,
            round=exchange_round,
            bytes_sent=bytes_sent,
        )

    # -- hot-path trace-id extraction ------------------------------------

    def sampled_ids_in(self, kind: str, payload) -> Tuple[int, ...]:
        """Trace ids of sampled records inside one message payload.

        Knows the two record-bearing payload shapes of the protocol
        vocabulary (both ``RECORD`` and ``RECORD_BATCH`` carry
        ``(record, hops)`` pairs -- one vs. a tuple of them); everything
        else traces nothing.
        """
        if kind == "record_batch":
            return tuple(
                trace_id_for(record._rid, record.location)
                for record, _hops in payload
                if self.sampled(record._rid)
            )
        if kind == "record":
            record, _hops = payload
            if self.sampled(record._rid):
                return (trace_id_for(record._rid, record.location),)
        return ()

    # -- draining ---------------------------------------------------------

    def take_events(self) -> List[dict]:
        events, self.events = self.events, []
        return events


#: The process-wide recorder, or ``None`` when tracing is off.  Hot paths
#: read this once per batch; ``None`` is the only check they pay.
ACTIVE: Optional[TraceRecorder] = None

#: Events that outlived their recorder: a session that builds several
#: engines in sequence (the experiment runner's sweeps) re-activates per
#: engine, and a sharded coordinator adopts its workers' undrained events
#: at close -- either way :func:`take_events` hands them out exactly once.
_orphaned: List[dict] = []


def activate(
    sample_rate: float,
    shard: Optional[int] = None,
    now: Optional[Callable[[], float]] = None,
    link_of: Optional[Callable[[int, int], Tuple[str, str]]] = None,
) -> Optional[TraceRecorder]:
    """Install (or clear, for rate <= 0) the process-wide recorder.

    The outgoing recorder's undrained events move to the orphan buffer
    first, so engine turnover never loses sampled timelines.
    """
    global ACTIVE
    if ACTIVE is not None and ACTIVE.events:
        _orphaned.extend(ACTIVE.take_events())
    if sample_rate is None or sample_rate <= 0.0:
        ACTIVE = None
    else:
        ACTIVE = TraceRecorder(sample_rate, shard=shard, now=now, link_of=link_of)
    return ACTIVE


def deactivate() -> None:
    """Hard off: discard the recorder AND any orphaned events.

    Shard workers call this on entry (fork inherits the parent's module
    state -- shipping those events again would double-count them); test
    teardown uses it for isolation.
    """
    global ACTIVE
    ACTIVE = None
    _orphaned.clear()


def adopt_events(events: Iterable[dict]) -> None:
    """Feed externally drained events into this process's orphan buffer."""
    _orphaned.extend(events)


def take_events() -> List[dict]:
    """Drain all events: the orphan buffer, then the active recorder's."""
    events = list(_orphaned)
    _orphaned.clear()
    if ACTIVE is not None:
        events.extend(ACTIVE.take_events())
    return events


# -- timeline merging -----------------------------------------------------


def _event_sort_key(event: dict) -> tuple:
    return (
        event.get("t") or 0.0,
        _KIND_ORDER.get(event.get("kind"), 9),
        event.get("shard") if event.get("shard") is not None else -1,
        event.get("seq", 0),
    )


def build_timelines(events: Iterable[dict]) -> Dict[str, List[dict]]:
    """Merge events (from any number of workers) into per-record timelines.

    Returns ``{trace_id_hex: [events...]}`` with each list sorted by
    (virtual time, causal kind order, shard, per-process sequence); events
    without a trace id (run-level ``exchange.round`` markers) are dropped
    here -- they belong to lanes, not records.
    """
    timelines: Dict[str, List[dict]] = {}
    for event in events:
        tid = event.get("trace_id")
        if tid is None:
            continue
        timelines.setdefault(tid, []).append(event)
    for tid, entries in timelines.items():
        entries.sort(key=_event_sort_key)
    return timelines


# -- Chrome trace-event export (Perfetto) ---------------------------------


def export_chrome_trace(events: Iterable[dict], path, quantum: float = 1.0) -> Path:
    """Write events as Chrome trace-event JSON, loadable in Perfetto.

    One process lane per shard (``pid``), one thread lane per machine
    (``tid``, densely renumbered -- 160-bit identifiers exceed what the
    format accepts); per-record events are instants carrying their
    trace_id/hops/link in ``args``, ``exchange.round`` markers render as
    complete spans one window-``quantum`` wide.  Virtual time maps to
    microseconds (1 simulated time unit = 1 ms) so windows are legible at
    Perfetto's default zoom.
    """
    events = list(events)
    scale = 1000.0  # virtual time unit -> µs (1 unit = 1 ms on screen)
    trace_events: List[dict] = []
    pids = sorted({e.get("shard") or 0 for e in events})
    tid_of: Dict[Tuple[int, str], int] = {}
    for event in events:
        pid = event.get("shard") or 0
        machine = event.get("machine")
        lane = machine if machine is not None else "-engine-"
        key = (pid, lane)
        if key not in tid_of:
            tid_of[key] = len(tid_of) + 1
    for pid in pids:
        trace_events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"shard {pid}"},
            }
        )
    for (pid, lane), tid in sorted(tid_of.items(), key=lambda kv: kv[1]):
        name = "engine" if lane == "-engine-" else f"leaf {lane[:12]}"
        trace_events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )
    for event in events:
        pid = event.get("shard") or 0
        machine = event.get("machine")
        lane = machine if machine is not None else "-engine-"
        tid = tid_of[(pid, lane)]
        ts = (event.get("t") or 0.0) * scale
        args = {
            k: v
            for k, v in event.items()
            if k not in ("kind", "t", "seq", "shard", "machine") and v is not None
        }
        if event.get("kind") == "exchange.round":
            trace_events.append(
                {
                    "ph": "X",
                    "name": "exchange.round",
                    "cat": "exchange",
                    "pid": pid,
                    "tid": tid,
                    "ts": ts,
                    "dur": max(quantum * scale, 1.0),
                    "args": args,
                }
            )
        else:
            trace_events.append(
                {
                    "ph": "i",
                    "name": event.get("kind", "event"),
                    "cat": "trace",
                    "pid": pid,
                    "tid": tid,
                    "ts": ts,
                    "s": "t",
                    "args": args,
                }
            )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"traceEvents": trace_events}, indent=None))
    return path


# -- flight recorder ------------------------------------------------------


class FlightRecorder:
    """Bounded ring of recent trace events + heartbeat JSONL appender.

    Heartbeats are written (and the ring drained after them) on every
    :meth:`heartbeat` call, each line flushed immediately so the file is
    complete up to the last heartbeat even if the process dies mid-run.
    """

    def __init__(self, path, ring_size: int = 512) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.ring: deque = deque(maxlen=ring_size)
        self.heartbeats = 0
        self._fh = self.path.open("a", encoding="utf-8")

    def note_event(self, event: dict) -> None:
        self.ring.append(event)

    def heartbeat(self, label: str, **stats) -> None:
        line = {"type": "heartbeat", "wall_unix": time.time(), "label": label}
        rss = _rss_mib()
        if rss is not None:
            line["rss_mib"] = rss
        line.update(stats)
        self._fh.write(json.dumps(line) + "\n")
        while self.ring:
            event = dict(self.ring.popleft())
            event["type"] = "event"
            self._fh.write(json.dumps(event) + "\n")
        self._fh.flush()
        self.heartbeats += 1

    def close(self) -> None:
        if self.ring:
            self.heartbeat("close")
        self._fh.close()


def _rss_mib() -> Optional[float]:
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    return round(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1)


#: Process-wide flight recorder, or ``None``.  Same discipline as ACTIVE.
FLIGHT: Optional[FlightRecorder] = None


def install_flight_recorder(path, ring_size: int = 512) -> FlightRecorder:
    global FLIGHT
    if FLIGHT is not None:
        FLIGHT.close()
    FLIGHT = FlightRecorder(path, ring_size=ring_size)
    return FLIGHT


def uninstall_flight_recorder() -> None:
    global FLIGHT
    if FLIGHT is not None:
        FLIGHT.close()
        FLIGHT = None


def heartbeat(label: str, **stats) -> None:
    """Emit one heartbeat if a flight recorder is installed (no-op cost:
    one global read) -- subsystems sprinkle these at stage boundaries."""
    if FLIGHT is not None:
        FLIGHT.heartbeat(label, **stats)


# -- flight-recorder tail rendering (python -m repro.obs tail) ------------


def render_flight_tail(path, limit: int = 20) -> List[str]:
    """Human-readable rendering of the last ``limit`` flight-recorder lines."""
    lines: List[str] = []
    try:
        raw = Path(path).read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        return [f"cannot read {path}: {exc}"]
    for text in raw[-limit:]:
        text = text.strip()
        if not text:
            continue
        try:
            entry = json.loads(text)
        except ValueError:
            lines.append(f"?? {text[:100]}")
            continue
        if entry.get("type") == "heartbeat":
            stats = ", ".join(
                f"{k}={v}"
                for k, v in entry.items()
                if k not in ("type", "wall_unix", "label")
            )
            stamp = time.strftime(
                "%H:%M:%S", time.localtime(entry.get("wall_unix", 0))
            )
            lines.append(f"[{stamp}] {entry.get('label', '?'):<16} {stats}")
        else:
            tid = entry.get("trace_id") or "-"
            extras = ", ".join(
                f"{k}={v}"
                for k, v in entry.items()
                if k
                not in ("type", "kind", "trace_id", "t", "seq", "shard", "machine")
                and v is not None
            )
            lines.append(
                f"    t={entry.get('t', 0):>10.4f} shard={entry.get('shard')} "
                f"{entry.get('kind', '?'):<16} trace={str(tid)[:12]} {extras}"
            )
    return lines
