"""Nesting span/phase timers with optional profiler attachment.

A :func:`span` measures one unit of work's wall time; spans opened while
another span is running nest under it, so a run accumulates a *phase tree*:

    with phase("sweep"):
        with span("build"): ...
        with span("insert", ops=inserted): ...

Completed root spans collect in a module buffer that :func:`take_phases`
drains -- the RunReport writer serializes them as the ``phases`` section.
Each span records wall seconds and an optional operation count, from which
the report derives a per-op rate; ``span.note(key, value)`` attaches
arbitrary small annotations.

Optional attachments (both stdlib, both opt-in per span because they cost
real overhead): ``profile=True`` runs :mod:`cProfile` over the span's body
and keeps the top functions by cumulative time; ``trace_memory=True``
brackets the body with :mod:`tracemalloc` and records the allocation delta
and peak.  Attachments never change what the span's body computes.

Spans are deliberately not gated on :func:`repro.obs.registry.enabled`:
they run at phase granularity (a handful per experiment), not per
operation, so their cost is noise even when telemetry is off -- and the
drivers only *open* them when assembling a report anyway.
"""

from __future__ import annotations

import cProfile
import pstats
import time
import tracemalloc
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional

#: How many functions a profiled span keeps from the cProfile stats.
PROFILE_TOP = 12


class Span:
    """One timed unit of work in the phase tree."""

    __slots__ = (
        "name",
        "seconds",
        "start",
        "ops",
        "notes",
        "children",
        "profile_top",
        "memory",
    )

    def __init__(self, name: str, ops: Optional[int] = None):
        self.name = name
        self.seconds = 0.0
        #: perf_counter stamp at open; orders siblings when trees drain or
        #: merge out of close order.  Never serialized (to_dict omits it) --
        #: perf_counter origins differ across processes.
        self.start = 0.0
        self.ops = ops
        self.notes: Dict[str, Any] = {}
        self.children: List["Span"] = []
        self.profile_top: Optional[List[dict]] = None
        self.memory: Optional[Dict[str, int]] = None

    def set_ops(self, ops: int) -> None:
        """Set the operation count after the fact (e.g. once it is known)."""
        self.ops = ops

    def note(self, key: str, value: Any) -> None:
        self.notes[key] = value

    @property
    def ops_per_second(self) -> Optional[float]:
        if self.ops is None or self.seconds <= 0:
            return None
        return self.ops / self.seconds

    def to_dict(self) -> dict:
        out: Dict[str, Any] = {"name": self.name, "seconds": self.seconds}
        if self.ops is not None:
            out["ops"] = self.ops
            rate = self.ops_per_second
            if rate is not None:
                out["ops_per_second"] = rate
        if self.notes:
            out["notes"] = dict(self.notes)
        if self.profile_top is not None:
            out["profile_top"] = self.profile_top
        if self.memory is not None:
            out["memory"] = self.memory
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


#: Currently open spans, innermost last (single simulation thread: the
#: engines are process-parallel, never thread-parallel, so a plain module
#: stack is race-free; worker processes each get their own copy).
_stack: List[Span] = []

#: Completed root spans awaiting collection by take_phases().
_completed_roots: List[Span] = []


@contextmanager
def span(
    name: str,
    ops: Optional[int] = None,
    profile: bool = False,
    trace_memory: bool = False,
) -> Iterator[Span]:
    """Time a block of work as one node of the phase tree."""
    node = Span(name, ops=ops)
    is_root = not _stack
    if _stack:
        _stack[-1].children.append(node)
    _stack.append(node)
    profiler = None
    if profile:
        profiler = cProfile.Profile()
    if trace_memory:
        tracing_before = tracemalloc.is_tracing()
        if not tracing_before:
            tracemalloc.start()
        size_before, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
    node.start = start = time.perf_counter()
    try:
        if profiler is not None:
            profiler.enable()
        try:
            yield node
        finally:
            if profiler is not None:
                profiler.disable()
            node.seconds = time.perf_counter() - start
            if trace_memory:
                size_after, peak = tracemalloc.get_traced_memory()
                node.memory = {
                    "allocated_delta_bytes": size_after - size_before,
                    "peak_bytes": peak,
                }
                if not tracing_before:
                    tracemalloc.stop()
            if profiler is not None:
                node.profile_top = _top_functions(profiler)
    finally:
        # Close by identity, not by position: if an *enclosing* span's
        # context exits first (held context managers closed out of order),
        # popping blindly would detach the wrong node and record a child as
        # a root.  Truncating at this node also sheds any descendants left
        # open by such a close -- they stay linked as children, just no
        # longer "open".
        for index in range(len(_stack) - 1, -1, -1):
            if _stack[index] is node:
                del _stack[index:]
                break
        if is_root:
            _completed_roots.append(node)


def phase(name: str, ops: Optional[int] = None, **kwargs):
    """A top-level named unit of a run; alias of :func:`span` by convention."""
    return span(name, ops=ops, **kwargs)


def current_span() -> Optional[Span]:
    return _stack[-1] if _stack else None


def _sort_tree(nodes: List[Span]) -> List[Span]:
    nodes.sort(key=lambda node: node.start)
    for node in nodes:
        if node.children:
            _sort_tree(node.children)
    return nodes


def take_phases() -> List[Span]:
    """Drain and return the completed root spans (the phase tree).

    Roots -- and, recursively, each node's children -- come back in
    monotonic *start*-time order, which matters when spans close out of
    order (a held context manager exiting late records its completion
    late, but its place in the timeline is where it opened).
    """
    global _completed_roots
    roots, _completed_roots = _completed_roots, []
    return _sort_tree(roots)


def reset_spans() -> None:
    """Discard all span state: the open stack and any completed roots.

    For worker processes started with the ``fork`` method, which inherit a
    copy of the parent's module state -- a shard worker calls this on entry
    so its phase tree contains only its own work.
    """
    _stack.clear()
    _completed_roots.clear()


def aggregate_phases(
    spans: Iterable[Span], into: Optional[Dict[str, Span]] = None
) -> Dict[str, Span]:
    """Merge *spans* into a name-keyed aggregate tree, recursively.

    Same-named spans sum their seconds and (when present) ops; children
    merge by name the same way; notes update last-writer-wins.  Aggregates
    are fresh Span objects, so callers may keep folding drained spans into
    one accumulator indefinitely (a shard worker folds per driver command,
    keeping memory O(distinct span names) instead of O(commands)).
    """
    if into is None:
        into = {}
    for node in spans:
        agg = into.get(node.name)
        if agg is None:
            agg = into[node.name] = Span(node.name)
            agg.start = node.start
        else:
            agg.start = min(agg.start, node.start)
        agg.seconds += node.seconds
        if node.ops is not None:
            agg.ops = (agg.ops or 0) + node.ops
        if node.notes:
            agg.notes.update(node.notes)
        if node.children:
            child_index = {child.name: child for child in agg.children}
            merged = aggregate_phases(node.children, child_index)
            agg.children = list(merged.values())
    return into


def _top_functions(profiler: cProfile.Profile) -> List[dict]:
    stats = pstats.Stats(profiler)
    rows = []
    for (filename, line, func), (cc, nc, tt, ct, _callers) in stats.stats.items():
        rows.append(
            {
                "function": f"{filename}:{line}({func})",
                "calls": nc,
                "total_seconds": tt,
                "cumulative_seconds": ct,
            }
        )
    rows.sort(key=lambda r: r["cumulative_seconds"], reverse=True)
    return rows[:PROFILE_TOP]
