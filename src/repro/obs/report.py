"""RunReport: one JSON document per run -- registry + phases + environment.

Every experiment and benchmark CLI accepts ``--metrics-out PATH``; when
given, the run ends by serializing

- the merged :class:`~repro.obs.registry.MetricsRegistry` (counters,
  gauges, histograms),
- the phase tree drained from :mod:`repro.obs.spans`,
- the environment (python, platform, cpu_count, git SHA, plus
  caller-supplied extras such as backend and shard_workers), and
- optionally a per-shard breakdown (one registry dump per worker of a
  :class:`~repro.salad.sharded.ShardedSimulation`)

to a *stable, versioned* JSON schema (:data:`SCHEMA`), and prints a short
human-readable summary table on stderr.  ``benchmarks/check_regression.py
--metrics`` gates on rates derived from the report, and
``tests/obs/test_report_schema.py`` pins the schema via
:func:`validate_run_report` so the format cannot drift silently.

``python -m repro.obs.report PATH`` re-renders the summary table of a
saved report (CI runs it on the smoke artifact after the trend step).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.registry import MetricsRegistry
from repro.obs.spans import Span, take_phases

#: Schema identifier; bump the suffix on any breaking layout change.
#: v2 adds the optional ``traces`` section (causal-trace sample rate +
#: drained events) -- purely additive, so v1 documents remain valid and
#: the validator accepts both.
SCHEMA = "repro.run-report/2"

#: Schema ids :func:`validate_run_report` accepts (v1 reports predate the
#: traces section and are otherwise layout-identical).
ACCEPTED_SCHEMAS = ("repro.run-report/1", SCHEMA)


def git_sha() -> Optional[str]:
    """The repo HEAD SHA, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def environment(extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    env: Dict[str, Any] = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "git_sha": git_sha(),
    }
    if extra:
        env.update(extra)
    return env


def build_run_report(
    registry: MetricsRegistry,
    phases: Optional[Sequence[Span]] = None,
    env: Optional[Dict[str, Any]] = None,
    shards: Optional[List[dict]] = None,
    shard_phases: Optional[List[List[dict]]] = None,
    traces: Optional[dict] = None,
) -> dict:
    """Assemble the report dict.

    *phases* defaults to draining :func:`repro.obs.spans.take_phases`;
    *env* entries extend (and may override) the probed environment;
    *shards* is the per-worker registry dumps of a sharded run, in shard
    order -- their merge is already folded into *registry*; *shard_phases*
    (same shard order, from ``ShardedSimulation.worker_phases``) attaches
    each worker's aggregated span tree to its shards entry, so a report
    shows where *worker* wall-clock went, not just the coordinator's.
    *traces*, when given, becomes the schema-v2 ``traces`` section --
    ``{"sample_rate": float, "events": [...]}``  with the causal-trace
    events drained from :mod:`repro.obs.tracing` (both engines' shapes).
    """
    if phases is None:
        phases = take_phases()
    report = {
        "schema": SCHEMA,
        "created_unix": time.time(),
        "environment": environment(env),
        "metrics": registry.to_dict(),
        "phases": [p.to_dict() for p in phases],
    }
    if shards is not None:
        report["shards"] = [
            {"shard": index, "metrics": dump} for index, dump in enumerate(shards)
        ]
        if shard_phases is not None:
            for entry, worker_tree in zip(report["shards"], shard_phases):
                entry["phases"] = list(worker_tree)
    if traces is not None:
        report["traces"] = traces
    return report


def write_run_report(path: os.PathLike, report: dict) -> Path:
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=1) + "\n", encoding="utf-8")
    return out


def validate_run_report(data: Any) -> List[str]:
    """Structural schema check; returns problems (empty = valid).

    Deliberately a hand-rolled validator (no jsonschema dependency) that
    pins exactly what downstream consumers read: the schema id, the
    environment keys, the metrics triple with its entry shapes, the phase
    tree, and the optional shards section.
    """
    problems: List[str] = []

    def check(cond: bool, message: str) -> bool:
        if not cond:
            problems.append(message)
        return cond

    if not check(isinstance(data, dict), "report is not an object"):
        return problems
    check(
        data.get("schema") in ACCEPTED_SCHEMAS,
        f"schema is not one of {ACCEPTED_SCHEMAS!r}: {data.get('schema')!r}",
    )
    check(isinstance(data.get("created_unix"), (int, float)), "created_unix missing")

    env = data.get("environment")
    if check(isinstance(env, dict), "environment missing"):
        for key in ("python", "platform", "machine", "cpu_count"):
            check(key in env, f"environment.{key} missing")

    metrics = data.get("metrics")
    if check(isinstance(metrics, dict), "metrics missing"):
        for section, value_keys in (
            ("counters", ("value",)),
            ("gauges", ("value",)),
            ("histograms", ("count", "total", "buckets")),
        ):
            entries = metrics.get(section)
            if not check(isinstance(entries, list), f"metrics.{section} missing"):
                continue
            for i, entry in enumerate(entries):
                where = f"metrics.{section}[{i}]"
                if not check(isinstance(entry, dict), f"{where} is not an object"):
                    continue
                check(isinstance(entry.get("name"), str), f"{where}.name missing")
                check(isinstance(entry.get("labels"), dict), f"{where}.labels missing")
                for key in value_keys:
                    check(key in entry, f"{where}.{key} missing")

    phases = data.get("phases")
    if check(isinstance(phases, list), "phases missing"):
        _check_sibling_names(phases, "phases", problems)
        for i, entry in enumerate(phases):
            _validate_phase(entry, f"phases[{i}]", problems)

    if "shards" in data:
        shards = data["shards"]
        if check(isinstance(shards, list), "shards is not a list"):
            for i, entry in enumerate(shards):
                where = f"shards[{i}]"
                if check(isinstance(entry, dict), f"{where} is not an object"):
                    check(entry.get("shard") == i, f"{where}.shard != {i}")
                    check(
                        isinstance(entry.get("metrics"), dict),
                        f"{where}.metrics missing",
                    )
                    if "phases" in entry:
                        if check(
                            isinstance(entry["phases"], list),
                            f"{where}.phases is not a list",
                        ):
                            _check_sibling_names(
                                entry["phases"], f"{where}.phases", problems
                            )
                            for j, node in enumerate(entry["phases"]):
                                _validate_phase(
                                    node, f"{where}.phases[{j}]", problems
                                )

    if "traces" in data:
        traces = data["traces"]
        if check(isinstance(traces, dict), "traces is not an object"):
            check(
                isinstance(traces.get("sample_rate"), (int, float))
                and not isinstance(traces.get("sample_rate"), bool),
                "traces.sample_rate missing",
            )
            events = traces.get("events")
            if check(isinstance(events, list), "traces.events missing"):
                for i, event in enumerate(events):
                    where = f"traces.events[{i}]"
                    if not check(isinstance(event, dict), f"{where} is not an object"):
                        continue
                    check(isinstance(event.get("kind"), str), f"{where}.kind missing")
                    check(
                        isinstance(event.get("t"), (int, float)),
                        f"{where}.t missing",
                    )
    return problems


def _check_sibling_names(entries: Any, where: str, problems: List[str]) -> None:
    """Reject duplicate phase names at one nesting level.

    :func:`summary_table` renders siblings by name and downstream gates
    look phases up by name, so two same-named siblings would silently
    shadow each other; the writer-side aggregation (``aggregate_phases``)
    merges by name precisely so this never happens -- a duplicate in a
    report means a producer bypassed it, which deserves a loud error.
    """
    seen: Dict[str, int] = {}
    for entry in entries:
        if not isinstance(entry, dict):
            continue
        name = entry.get("name")
        if not isinstance(name, str):
            continue
        seen[name] = seen.get(name, 0) + 1
    for name, count in seen.items():
        if count > 1:
            problems.append(
                f"{where} has {count} sibling phases named {name!r} "
                "(same-level phase names must be unique)"
            )


def _validate_phase(entry: Any, where: str, problems: List[str]) -> None:
    if not isinstance(entry, dict):
        problems.append(f"{where} is not an object")
        return
    if not isinstance(entry.get("name"), str):
        problems.append(f"{where}.name missing")
    if not isinstance(entry.get("seconds"), (int, float)):
        problems.append(f"{where}.seconds missing")
    children = entry.get("children", ())
    if isinstance(children, list):
        _check_sibling_names(children, f"{where}.children", problems)
    for i, child in enumerate(children):
        _validate_phase(child, f"{where}.children[{i}]", problems)


# ----------------------------------------------------------------------------
# human-readable summary
# ----------------------------------------------------------------------------


def summary_table(report: dict, top_counters: int = 20) -> str:
    """A compact stderr-friendly rendering of a RunReport."""
    lines: List[str] = []
    env = report.get("environment", {})
    sha = env.get("git_sha")
    lines.append(
        f"run report  python {env.get('python')}  cpus {env.get('cpu_count')}"
        + (f"  git {sha[:12]}" if sha else "")
    )
    extras = {
        k: v
        for k, v in env.items()
        if k not in ("python", "platform", "machine", "cpu_count", "git_sha")
        and v is not None
    }
    if extras:
        lines.append("  " + "  ".join(f"{k}={v}" for k, v in sorted(extras.items())))

    phases = report.get("phases", [])
    if phases:
        lines.append("phases:")
        for entry in phases:
            _render_phase(entry, lines, indent=1)

    counters = report.get("metrics", {}).get("counters", [])
    if counters:
        lines.append("counters:")
        shown = sorted(counters, key=lambda e: -abs(e["value"]))[:top_counters]
        width = max(len(_entry_name(e)) for e in shown)
        for entry in sorted(shown, key=_entry_name):
            lines.append(f"  {_entry_name(entry).ljust(width)}  {entry['value']:,}")
        if len(counters) > len(shown):
            lines.append(f"  ... {len(counters) - len(shown)} more")

    histograms = report.get("metrics", {}).get("histograms", [])
    if histograms:
        lines.append("histograms:")
        for entry in histograms:
            mean = entry["total"] / entry["count"] if entry["count"] else 0.0
            lines.append(
                f"  {_entry_name(entry)}  n={entry['count']:,}"
                f"  mean={mean:.6g}  min={entry.get('min'):.6g}"
                f"  max={entry.get('max'):.6g}"
            )

    shards = report.get("shards")
    if shards:
        total_exchange = sum(
            _shard_counter(entry, "salad.sharded.exchange_bytes") for entry in shards
        )
        header = f"shards: {len(shards)} worker registries merged"
        if total_exchange:
            header += f"  exchange_bytes={total_exchange:,}"
        lines.append(header)
        for entry in shards:
            parts: List[str] = []
            worker_phases = entry.get("phases")
            if worker_phases:
                busiest = sorted(worker_phases, key=lambda p: -p["seconds"])[:3]
                parts.extend(f"{p['name']}={p['seconds']:.3f}s" for p in busiest)
            exchange = _shard_counter(entry, "salad.sharded.exchange_bytes")
            if exchange:
                parts.append(f"exchange_bytes={exchange:,}")
            if parts:
                lines.append(f"  shard {entry.get('shard')}: {'  '.join(parts)}")

    traces = report.get("traces")
    if traces:
        events = traces.get("events") or []
        records = len({e.get("trace_id") for e in events} - {None})
        lines.append(
            f"traces: {len(events)} events across {records} sampled records"
            f"  (sample_rate={traces.get('sample_rate')})"
        )
    return "\n".join(lines)


def _shard_counter(shard_entry: dict, name: str) -> int:
    """Sum a counter's value across a shard's registry dump (0 if absent)."""
    counters = (shard_entry.get("metrics") or {}).get("counters", [])
    return sum(e.get("value", 0) for e in counters if e.get("name") == name)


def _entry_name(entry: dict) -> str:
    labels = entry.get("labels") or {}
    if not labels:
        return entry["name"]
    rendered = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{entry['name']}{{{rendered}}}"


def _render_phase(entry: dict, lines: List[str], indent: int) -> None:
    rate = entry.get("ops_per_second")
    suffix = f"  ops={entry['ops']:,}" if "ops" in entry else ""
    if rate is not None:
        suffix += f"  ({rate:,.0f}/s)"
    lines.append(f"{'  ' * indent}{entry['name']}: {entry['seconds']:.3f}s{suffix}")
    for child in entry.get("children", ()):
        _render_phase(child, lines, indent + 1)


def print_summary(report: dict, stream=None) -> None:
    print(summary_table(report), file=stream if stream is not None else sys.stderr)


def main(argv=None) -> int:
    """``python -m repro.obs.report PATH``: validate + summarize a report."""
    args = list(sys.argv[1:] if argv is None else argv)
    if len(args) != 1:
        print("usage: python -m repro.obs.report REPORT.json", file=sys.stderr)
        return 2
    data = json.loads(Path(args[0]).read_text(encoding="utf-8"))
    problems = validate_run_report(data)
    if problems:
        for problem in problems:
            print(f"schema problem: {problem}", file=sys.stderr)
        return 1
    print(summary_table(data))
    return 0


if __name__ == "__main__":
    sys.exit(main())
