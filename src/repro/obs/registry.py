"""A zero-dependency metrics registry: counters, gauges, log histograms.

Every layer of the reproduction (crypto kernels, SALAD routing, record
stores, the sharded engine, the DFC pipeline) reports what it did through
one of three instrument types held in a :class:`MetricsRegistry`:

- :class:`Counter` -- a monotonically increasing integer total;
- :class:`Gauge` -- a last-known scalar (merged across registries by max,
  so configuration gauges like ``salad.config.dimensions`` survive a merge
  unchanged and per-shard quantities take the worst case);
- :class:`Histogram` -- log-bucketed by the binary exponent of the value
  (``math.frexp``), tracking per-bucket counts plus global count / total /
  min / max.  Bucket keys are small integers and counts are exact, so
  histogram merges -- like counter sums -- are associative, commutative,
  and bit-identical regardless of merge order.

**Merge semantics** are the contract the sharded engine depends on: the
coordinator merges one registry per worker process, and the result's
counter totals must be *bit-identical* to a single-process run of the same
trace (``tests/salad/test_sharded_golden.py`` asserts it).  Counters add,
gauges take the max, histograms add bucket-wise; all three operate on
exact ints wherever the instrumented code observes ints.

**Hot-path policy.**  The hot paths themselves do *not* call into this
module.  They keep plain integer attributes (``leaf.next_hop_hits``,
``modes._BULK_BYTES``) that cost one integer add, and each subsystem
exposes a ``collect_metrics(registry)`` / ``harvest_*`` function that
builds registry entries from those attributes at report time.  That keeps
the disabled-telemetry overhead at effectively zero and makes merging
trivially exact (a harvest is a snapshot, never a double count).

Instrument handles are still available live for cold paths: when the
module-level switch is off (the default), :func:`get_registry` returns a
null registry whose instruments are shared no-op singletons, so library
code may write ``get_registry().counter("x").inc()`` unconditionally.

Naming convention: dotted lowercase paths, ``<layer>.<subsystem>.<what>``
(e.g. ``salad.routing.next_hop_hits``); metrics that only exist on the
sharded engine live under ``salad.sharded.*`` and are excluded from the
engine-identity comparison.  ``docs/OBSERVABILITY.md`` is the catalog.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Tuple

#: A label set normalized into a registry key: sorted ``(key, value)`` pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total.  Merge: sum."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0):
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def merge_from(self, other: "Counter") -> None:
        self.value += other.value


class Gauge:
    """A last-known scalar.  Merge: max (None = never set)."""

    __slots__ = ("value",)

    def __init__(self, value: Optional[float] = None):
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def merge_from(self, other: "Gauge") -> None:
        if other.value is None:
            return
        if self.value is None or other.value > self.value:
            self.value = other.value


def bucket_of(value: float) -> int:
    """The log-bucket key of *value*: its binary exponent.

    Bucket ``e`` covers ``[2**(e-1), 2**e)``; values <= 0 share bucket 0
    (durations and sizes are non-negative, and an exact zero carries no
    magnitude).  Keys are small ints, so bucket maps pickle tightly and
    merge exactly.
    """
    if value <= 0:
        return 0
    return math.frexp(value)[1]


class Histogram:
    """Log-bucketed distribution with exact, order-independent merges."""

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self):
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        bucket = bucket_of(value)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    def observe_count(self, value: float, n: int) -> None:
        """Record ``n`` identical observations of ``value`` in O(1).

        Equivalent to calling :meth:`observe` ``n`` times; lets hot paths
        keep a plain ``value -> count`` dict and fold it in at harvest.
        """
        if n <= 0:
            return
        bucket = bucket_of(value)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + n
        self.count += n
        self.total += value * n
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge_from(self, other: "Histogram") -> None:
        for bucket, n in other.buckets.items():
            self.buckets[bucket] = self.buckets.get(bucket, 0) + n
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max


class MetricsRegistry:
    """Named, labeled instruments with exact merge and stable serialization."""

    def __init__(self):
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # -- instrument access (get-or-create) ------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str, **labels: str) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram()
        return instrument

    # -- reads ----------------------------------------------------------------

    def counter_value(self, name: str, **labels: str) -> int:
        """The counter's total, or 0 if it was never created."""
        instrument = self._counters.get((name, _label_key(labels)))
        return instrument.value if instrument is not None else 0

    def gauge_value(self, name: str, **labels: str) -> Optional[float]:
        instrument = self._gauges.get((name, _label_key(labels)))
        return instrument.value if instrument is not None else None

    def counter_totals(self) -> Dict[str, int]:
        """Every counter's total keyed ``name`` or ``name{k=v,...}``.

        The flattened view the identity tests compare between engines.
        """
        out: Dict[str, int] = {}
        for (name, labels), instrument in self._counters.items():
            out[_render_key(name, labels)] = instrument.value
        return out

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # -- merge ----------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold *other* into this registry (in place); returns self.

        Counters sum, gauges max, histograms add bucket-wise -- each
        operation is associative and commutative (ints stay ints), so any
        merge order over any partition of the same observations yields an
        identical registry.
        """
        for key, counter in other._counters.items():
            self.counter(key[0], **dict(key[1])).merge_from(counter)
        for key, gauge in other._gauges.items():
            self.gauge(key[0], **dict(key[1])).merge_from(gauge)
        for key, histogram in other._histograms.items():
            self.histogram(key[0], **dict(key[1])).merge_from(histogram)
        return self

    def merge_dict(self, data: dict) -> "MetricsRegistry":
        """Merge a :meth:`to_dict` payload (e.g. shipped from a worker)."""
        return self.merge(MetricsRegistry.from_dict(data))

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        """A stable, JSON-ready dump: sorted by (name, labels)."""
        return {
            "counters": [
                {"name": name, "labels": dict(labels), "value": c.value}
                for (name, labels), c in sorted(self._counters.items())
            ],
            "gauges": [
                {"name": name, "labels": dict(labels), "value": g.value}
                for (name, labels), g in sorted(self._gauges.items())
                if g.value is not None
            ],
            "histograms": [
                {
                    "name": name,
                    "labels": dict(labels),
                    "count": h.count,
                    "total": h.total,
                    "min": h.min,
                    "max": h.max,
                    "buckets": {str(b): n for b, n in sorted(h.buckets.items())},
                }
                for (name, labels), h in sorted(self._histograms.items())
                if h.count
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        registry = cls()
        for entry in data.get("counters", ()):
            registry.counter(entry["name"], **entry.get("labels", {})).inc(
                entry["value"]
            )
        for entry in data.get("gauges", ()):
            registry.gauge(entry["name"], **entry.get("labels", {})).set(
                entry["value"]
            )
        for entry in data.get("histograms", ()):
            histogram = registry.histogram(entry["name"], **entry.get("labels", {}))
            histogram.count = entry["count"]
            histogram.total = entry["total"]
            histogram.min = entry.get("min")
            histogram.max = entry.get("max")
            histogram.buckets = {
                int(b): n for b, n in entry.get("buckets", {}).items()
            }
        return registry


def _render_key(name: str, labels: LabelKey) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{rendered}}}"


# ----------------------------------------------------------------------------
# null instruments & the session switch
# ----------------------------------------------------------------------------


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """A registry whose instruments are shared no-op singletons.

    Returned by :func:`get_registry` while telemetry is disabled, so cold
    paths can hold instrument handles unconditionally at zero cost.
    """

    def counter(self, name: str, **labels: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str, **labels: str) -> Histogram:
        return _NULL_HISTOGRAM


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_REGISTRY = NullRegistry()

_session_registry: Optional[MetricsRegistry] = None


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Turn session telemetry on; returns the active registry."""
    global _session_registry
    _session_registry = registry if registry is not None else MetricsRegistry()
    return _session_registry


def disable() -> None:
    """Turn session telemetry off; live handles become stale snapshots."""
    global _session_registry
    _session_registry = None


def enabled() -> bool:
    return _session_registry is not None


def get_registry() -> MetricsRegistry:
    """The session registry, or the shared null registry when disabled."""
    return _session_registry if _session_registry is not None else _NULL_REGISTRY
