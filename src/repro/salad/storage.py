"""Pluggable record-store backends for the SALAD leaf databases.

The paper's full-scale deployment implies on the order of 10M
``(fingerprint, location)`` records spread across the leaf databases
(section 5); holding them all in RAM is what blocks a laptop-scale
full-corpus run.  This module extracts the :class:`RecordStore` contract
that :class:`repro.salad.database.RecordDatabase` (the in-memory store)
already implements and adds two durable backends:

- :class:`SqliteRecordStore` -- records live in a single-file sqlite3
  database whose ``WITHOUT ROWID`` primary key ``(sort_key, location)`` *is*
  the covering index over the fingerprint sort order, so the Fig. 13
  lowest-fingerprint eviction probe stays one O(log n) B-tree descent and
  lookups by fingerprint are a prefix range scan of the same tree;
- :class:`WalRecordStore` -- an append-only write-ahead log of state-changing
  operations with per-entry CRC32 framing.  Replay rebuilds the in-memory
  index; a truncated or corrupt tail (a torn write from a crash) is detected
  by the CRC and *dropped*, never fatal.  A stale-ratio-triggered compaction
  rewrites the log as a snapshot of the live records;
- :class:`PagedWalRecordStore` (``wal-paged``) -- the same log format, but the
  records themselves stay on disk: memory holds only a flat open-addressed
  key->offset index (16 bytes per slot) plus a small LRU record cache, and
  record bodies are read back from the log on demand.  This is the backend
  that bounds a flagship-scale run's RSS: the plain WAL store keeps a full
  :class:`~repro.salad.database.RecordDatabase` in memory and therefore
  *tracks* the memory backend's footprint, it never beats it.

All three backends are observably identical for in-memory behavior: the
shared contract suite (``tests/salad/test_record_stores.py``) runs them
through the same associative-insert / capacity-eviction / iteration
semantics and asserts bit-identical results.  The contract fixes two
orderings the original in-memory store left to Python set iteration:
duplicate matches are returned sorted by location, and :meth:`records`
iterates in ``(sort_key, location)`` order.

Backend selection threads through :class:`repro.salad.salad.SaladConfig`
(``db_backend`` / ``db_dir``) and the experiment CLIs (``--db-backend
memory|sqlite|wal``, ``--db-dir``); :func:`set_default_db_backend` sets the
process-wide default the same way ``repro.perf.set_default_workers`` does
for parallelism.

WAL format (version 1)::

    file   := MAGIC entry*
    MAGIC  := b"SALADWAL1\\n"
    entry  := op(1) payload_len(u32 BE) payload crc32(u32 BE)
    op     := 0x01 INSERT | 0x02 REMOVE_LOCATION
    INSERT payload := fingerprint(28) loc_len(u16 BE) location(loc_len, BE)
    REMOVE payload := loc_len(u16 BE) location(loc_len, BE)

The CRC covers ``op || payload_len || payload``.  Only state-changing
operations are logged (a rejected or duplicate insert changes nothing), so
replaying the log through the same deterministic capacity policy reproduces
the exact live state.
"""

from __future__ import annotations

import abc
import os
import sqlite3
import struct
import tempfile
import time
import zlib
from array import array
from bisect import insort
from collections import OrderedDict
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.fingerprint import FINGERPRINT_BYTES, Fingerprint
from repro.obs.registry import Histogram
from repro.salad.records import SaladRecord

#: Known backend names, in documentation order.
BACKENDS = ("memory", "sqlite", "wal", "wal-paged")

#: Fixed-width big-endian location encoding for sqlite: lexicographic blob
#: order equals numeric order, so ``ORDER BY location`` is the numeric sort
#: the match-order contract requires.  32 bytes covers 160-bit machine ids.
_LOCATION_BYTES = 32

WAL_MAGIC = b"SALADWAL1\n"
_OP_INSERT = 0x01
_OP_REMOVE_LOCATION = 0x02
_HEADER = struct.Struct(">BI")  # op, payload length
_CRC = struct.Struct(">I")


class RecordStore(abc.ABC):
    """The associative record-database contract every backend implements.

    Semantics (shared by all backends, pinned by the contract suite):

    - ``insert`` returns ``(stored, matches)`` where *matches* are the
      records already present with the same fingerprint, sorted by
      location, computed before insertion and regardless of whether the new
      record is stored;
    - with a ``capacity``, an insert into a full store evicts the record
      with the lowest ``(sort_key, location)`` -- unless no stored record
      sorts below the new one, in which case the new record is rejected;
    - ``records()`` iterates in ``(sort_key, location)`` order;
    - ``evictions`` / ``rejections`` count capacity-policy outcomes for the
      lifetime of the open store (they are session statistics, not
      persisted state).
    """

    capacity: Optional[int]
    evictions: int
    rejections: int
    #: Backing file, or None for purely in-memory stores.
    path: Optional[Path] = None

    @abc.abstractmethod
    def __len__(self) -> int: ...

    @abc.abstractmethod
    def __contains__(self, fingerprint: Fingerprint) -> bool: ...

    @abc.abstractmethod
    def locations(self, fingerprint: Fingerprint) -> Set[int]: ...

    @abc.abstractmethod
    def has_location(self, fingerprint: Fingerprint, location: int) -> bool: ...

    @abc.abstractmethod
    def records(self) -> Iterator[SaladRecord]: ...

    @abc.abstractmethod
    def insert(self, record: SaladRecord) -> Tuple[bool, List[SaladRecord]]: ...

    @abc.abstractmethod
    def remove_location(self, location: int) -> int: ...

    def insert_many(
        self, records: Iterable[SaladRecord]
    ) -> List[Tuple[SaladRecord, bool, List[SaladRecord]]]:
        """Insert a batch in order; one ``(record, stored, matches)`` per record.

        The capacity policy is applied record by record, so a batch observes
        exactly the same eviction decisions as a sequence of singles.
        """
        return [(record, *self.insert(record)) for record in records]

    # -- durability ------------------------------------------------------------

    def flush(self) -> None:
        """Make all applied operations durable (no-op for memory stores)."""

    def close(self) -> None:
        """Flush and release any backing resources."""
        self.flush()

    def crash(self) -> None:
        """Simulate a process crash: abandon the store *without* flushing.

        Durable backends lose only operations not yet flushed; in-memory
        stores lose everything.  After ``crash`` the store is unusable;
        recovery reopens the backing file through :func:`make_record_store`.
        """
        pass

    @property
    def pending_records(self) -> int:
        """Stored records that would be lost if the process crashed now."""
        return len(self)


def _encode_location(location: int) -> bytes:
    return location.to_bytes(_LOCATION_BYTES, "big")


def _decode_location(blob: bytes) -> int:
    return int.from_bytes(blob, "big")


class SqliteRecordStore(RecordStore):
    """Records in a single-file sqlite3 database (stdlib, no extra deps).

    Schema::

        CREATE TABLE records (
            sort_key BLOB NOT NULL,    -- fingerprint.to_bytes(): size || hash
            location BLOB NOT NULL,    -- 32-byte big-endian machine id
            PRIMARY KEY (sort_key, location)
        ) WITHOUT ROWID

    The primary key doubles as the covering index over the fingerprint sort
    order: the Fig. 13 eviction probe (``ORDER BY sort_key, location LIMIT
    1``) and fingerprint lookups (prefix range scans) both resolve inside
    one B-tree, so inserts stay O(log n) under heavy eviction churn.  A
    secondary index on ``location`` keeps machine departures
    (:meth:`remove_location`) from scanning the whole table.

    Writes batch into transactions committed every ``commit_every``
    operations (and on :meth:`flush` / :meth:`close`); a crash loses at most
    the uncommitted tail, which :attr:`pending_records` reports.
    """

    def __init__(
        self,
        path: os.PathLike,
        capacity: Optional[int] = None,
        commit_every: int = 256,
    ):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be positive if set: {capacity}")
        if commit_every < 1:
            raise ValueError(f"commit_every must be positive: {commit_every}")
        self.capacity = capacity
        self.path = Path(path)
        self.evictions = 0
        self.rejections = 0
        self._commit_every = commit_every
        self._uncommitted = 0
        self._pending = 0  # net stored-record delta not yet committed
        # Telemetry (harvested by repro.salad.telemetry): commits are rare
        # (every commit_every mutations), so timing them is off-hot-path.
        self.flushes = 0
        self.flush_seconds = Histogram()
        self._conn = sqlite3.connect(self.path)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS records ("
            " sort_key BLOB NOT NULL,"
            " location BLOB NOT NULL,"
            " PRIMARY KEY (sort_key, location)"
            ") WITHOUT ROWID"
        )
        self._conn.execute(
            "CREATE INDEX IF NOT EXISTS records_by_location ON records(location)"
        )
        self._conn.commit()
        self._count = self._conn.execute("SELECT COUNT(*) FROM records").fetchone()[0]

    def __len__(self) -> int:
        return self._count

    def __contains__(self, fingerprint: Fingerprint) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM records WHERE sort_key = ? LIMIT 1",
            (fingerprint.to_bytes(),),
        ).fetchone()
        return row is not None

    def locations(self, fingerprint: Fingerprint) -> Set[int]:
        rows = self._conn.execute(
            "SELECT location FROM records WHERE sort_key = ?",
            (fingerprint.to_bytes(),),
        )
        return {_decode_location(row[0]) for row in rows}

    def has_location(self, fingerprint: Fingerprint, location: int) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM records WHERE sort_key = ? AND location = ?",
            (fingerprint.to_bytes(), _encode_location(location)),
        ).fetchone()
        return row is not None

    def records(self) -> Iterator[SaladRecord]:
        rows = self._conn.execute(
            "SELECT sort_key, location FROM records ORDER BY sort_key, location"
        )
        for sort_key, location in rows:
            yield SaladRecord(
                fingerprint=Fingerprint.from_bytes(sort_key),
                location=_decode_location(location),
            )

    def _matches(self, record: SaladRecord) -> List[SaladRecord]:
        rows = self._conn.execute(
            "SELECT location FROM records WHERE sort_key = ? ORDER BY location",
            (record.sort_key(),),
        )
        return [
            SaladRecord(fingerprint=record.fingerprint, location=_decode_location(row[0]))
            for row in rows
        ]

    def insert(self, record: SaladRecord) -> Tuple[bool, List[SaladRecord]]:
        matches = self._matches(record)
        if any(m.location == record.location for m in matches):
            return False, matches
        key = record.sort_key()
        if self.capacity is not None and self._count >= self.capacity:
            lowest = self._conn.execute(
                "SELECT sort_key, location FROM records"
                " ORDER BY sort_key, location LIMIT 1"
            ).fetchone()
            if lowest is None or key <= lowest[0]:
                self.rejections += 1
                return False, matches
            self._conn.execute(
                "DELETE FROM records WHERE sort_key = ? AND location = ?", lowest
            )
            self._count -= 1
            self.evictions += 1
            self._mutated()
        self._conn.execute(
            "INSERT INTO records (sort_key, location) VALUES (?, ?)",
            (key, _encode_location(record.location)),
        )
        self._count += 1
        self._pending += 1
        self._mutated()
        return True, matches

    def insert_many(
        self, records: Iterable[SaladRecord]
    ) -> List[Tuple[SaladRecord, bool, List[SaladRecord]]]:
        results = [(record, *self.insert(record)) for record in records]
        self.flush()  # batch boundary: commit the whole batch
        return results

    def remove_location(self, location: int) -> int:
        cursor = self._conn.execute(
            "DELETE FROM records WHERE location = ?", (_encode_location(location),)
        )
        removed = cursor.rowcount
        if removed:
            self._count -= removed
            self._mutated()
        return removed

    def _mutated(self) -> None:
        self._uncommitted += 1
        if self._uncommitted >= self._commit_every:
            self.flush()

    def flush(self) -> None:
        start = time.perf_counter()
        self._conn.commit()
        self.flush_seconds.observe(time.perf_counter() - start)
        self.flushes += 1
        self._uncommitted = 0
        self._pending = 0

    def close(self) -> None:
        self.flush()
        self._conn.close()

    def crash(self) -> None:
        # Roll back the open transaction: exactly what a process crash does
        # to uncommitted sqlite writes.
        self._conn.rollback()
        self._conn.close()

    @property
    def pending_records(self) -> int:
        return min(self._pending, self._count)


class WalRecordStore(RecordStore):
    """An append-log (write-ahead) store with crash recovery and compaction.

    Live state is an in-memory :class:`~repro.salad.database.RecordDatabase`
    (so every read and the capacity policy are exactly the memory backend);
    every *state-changing* operation is additionally framed and appended to
    the log.  Reopening an existing log replays it to rebuild the state;
    entries whose CRC fails or that are truncated mid-frame -- the torn tail
    of a crash -- are dropped and the file is trimmed to the last valid
    entry, never treated as fatal (:attr:`torn_bytes_dropped` reports how
    much was discarded, :attr:`recovered_records` how many live records the
    replay restored).

    Appends buffer in memory and reach the file every ``sync_every`` logged
    operations, at every batch boundary (:meth:`insert_many`), and on
    :meth:`flush` / :meth:`close`; a crash loses at most the buffered tail.

    Compaction: removals and evictions strand stale entries in the log.
    When the log holds more than ``compact_ratio`` entries per live record
    (checked after each logged operation, with a floor to leave small logs
    alone), the log is rewritten as a snapshot -- one INSERT per live record
    in ``(sort_key, location)`` order -- via an atomic temp-file replace.
    """

    _COMPACT_FLOOR = 1024

    def __init__(
        self,
        path: os.PathLike,
        capacity: Optional[int] = None,
        sync_every: int = 64,
        compact_ratio: float = 4.0,
    ):
        if sync_every < 1:
            raise ValueError(f"sync_every must be positive: {sync_every}")
        if compact_ratio < 1.0:
            raise ValueError(f"compact_ratio must be at least 1: {compact_ratio}")
        from repro.salad.database import RecordDatabase

        self.path = Path(path)
        self._mem = RecordDatabase(capacity=capacity)
        self._sync_every = sync_every
        self._compact_ratio = compact_ratio
        self._buffer = bytearray()
        self._buffered_ops = 0
        self._log_ops = 0  # entries in the on-disk log plus the buffer
        self.recovered_records = 0
        self.torn_bytes_dropped = 0
        # Telemetry (harvested by repro.salad.telemetry).
        self.compactions = 0
        self.sync_writes = 0
        if self.path.exists() and self.path.stat().st_size > 0:
            self._replay()
            # Replay re-runs the capacity policy; its eviction/rejection
            # outcomes belong to the previous session, not this one.
            self._mem.evictions = 0
            self._mem.rejections = 0
        else:
            self.path.write_bytes(WAL_MAGIC)
        self._fh = open(self.path, "ab", buffering=0)  # unbuffered appends
        self.recovered_records = len(self._mem)

    # -- delegated reads (the memory store is the live state) -----------------

    capacity = property(lambda self: self._mem.capacity)
    evictions = property(lambda self: self._mem.evictions)
    rejections = property(lambda self: self._mem.rejections)

    def __len__(self) -> int:
        return len(self._mem)

    def __contains__(self, fingerprint: Fingerprint) -> bool:
        return fingerprint in self._mem

    def locations(self, fingerprint: Fingerprint) -> Set[int]:
        return self._mem.locations(fingerprint)

    def has_location(self, fingerprint: Fingerprint, location: int) -> bool:
        return self._mem.has_location(fingerprint, location)

    def records(self) -> Iterator[SaladRecord]:
        return self._mem.records()

    # -- log framing -----------------------------------------------------------

    @staticmethod
    def _frame(op: int, payload: bytes) -> bytes:
        head = _HEADER.pack(op, len(payload))
        return head + payload + _CRC.pack(zlib.crc32(head + payload))

    @staticmethod
    def _insert_payload(record: SaladRecord) -> bytes:
        loc = record.location.to_bytes(
            max(1, (record.location.bit_length() + 7) // 8), "big"
        )
        return record.sort_key() + struct.pack(">H", len(loc)) + loc

    @staticmethod
    def _remove_payload(location: int) -> bytes:
        loc = location.to_bytes(max(1, (location.bit_length() + 7) // 8), "big")
        return struct.pack(">H", len(loc)) + loc

    def _append(self, op: int, payload: bytes) -> None:
        self._buffer += self._frame(op, payload)
        self._buffered_ops += 1
        self._log_ops += 1
        if self._buffered_ops >= self._sync_every:
            self._write_out()
        self._maybe_compact()

    def _write_out(self) -> None:
        if self._buffer:
            self._fh.write(bytes(self._buffer))
            self._buffer.clear()
            self.sync_writes += 1
        self._buffered_ops = 0

    # -- mutations -------------------------------------------------------------

    def insert(self, record: SaladRecord) -> Tuple[bool, List[SaladRecord]]:
        stored, matches = self._mem.insert(record)
        if stored:
            # Evictions need no log entry of their own: replaying the stored
            # inserts through the same capacity policy re-derives them.
            self._append(_OP_INSERT, self._insert_payload(record))
        return stored, matches

    def insert_many(
        self, records: Iterable[SaladRecord]
    ) -> List[Tuple[SaladRecord, bool, List[SaladRecord]]]:
        results = [(record, *self.insert(record)) for record in records]
        self._write_out()  # batch boundary: make the whole batch durable
        return results

    def remove_location(self, location: int) -> int:
        removed = self._mem.remove_location(location)
        if removed:
            self._append(_OP_REMOVE_LOCATION, self._remove_payload(location))
        return removed

    # -- replay & recovery -----------------------------------------------------

    def _replay(self) -> None:
        data = self.path.read_bytes()
        if not data.startswith(WAL_MAGIC):
            # Foreign or garbage file: treat the whole thing as a torn tail.
            self.torn_bytes_dropped = len(data)
            self.path.write_bytes(WAL_MAGIC)
            return
        offset = len(WAL_MAGIC)
        valid_end = offset
        while offset < len(data):
            if offset + _HEADER.size > len(data):
                break  # truncated header
            op, length = _HEADER.unpack_from(data, offset)
            frame_end = offset + _HEADER.size + length + _CRC.size
            if frame_end > len(data):
                break  # truncated payload/CRC
            payload = data[offset + _HEADER.size : offset + _HEADER.size + length]
            (crc,) = _CRC.unpack_from(data, offset + _HEADER.size + length)
            if crc != zlib.crc32(data[offset : offset + _HEADER.size + length]):
                break  # corrupt entry: drop it and everything after
            if not self._apply(op, payload):
                break  # unparseable payload: same treatment as a bad CRC
            offset = frame_end
            valid_end = frame_end
            self._log_ops += 1
        self.torn_bytes_dropped = len(data) - valid_end
        if self.torn_bytes_dropped:
            with open(self.path, "r+b") as fh:
                fh.truncate(valid_end)

    def _apply(self, op: int, payload: bytes) -> bool:
        try:
            if op == _OP_INSERT:
                key = payload[:FINGERPRINT_BYTES]
                (loc_len,) = struct.unpack_from(">H", payload, FINGERPRINT_BYTES)
                loc_bytes = payload[FINGERPRINT_BYTES + 2 :]
                if len(key) != FINGERPRINT_BYTES or len(loc_bytes) != loc_len:
                    return False
                self._mem.insert(
                    SaladRecord(
                        fingerprint=Fingerprint.from_bytes(key),
                        location=int.from_bytes(loc_bytes, "big"),
                    )
                )
            elif op == _OP_REMOVE_LOCATION:
                (loc_len,) = struct.unpack_from(">H", payload, 0)
                loc_bytes = payload[2:]
                if len(loc_bytes) != loc_len:
                    return False
                self._mem.remove_location(int.from_bytes(loc_bytes, "big"))
            else:
                return False
        except (ValueError, struct.error):
            return False
        return True

    # -- compaction ------------------------------------------------------------

    @property
    def log_ops(self) -> int:
        """Entries currently in the log (disk plus buffer)."""
        return self._log_ops

    def _maybe_compact(self) -> None:
        if self._log_ops <= self._COMPACT_FLOOR:
            return
        if self._log_ops <= self._compact_ratio * max(1, len(self._mem)):
            return
        self.compact()

    def compact(self) -> None:
        """Rewrite the log as a snapshot of the live records (atomic)."""
        tmp = self.path.with_suffix(self.path.suffix + ".compact")
        with open(tmp, "wb") as fh:
            fh.write(WAL_MAGIC)
            count = 0
            for record in self._mem.records():
                fh.write(self._frame(_OP_INSERT, self._insert_payload(record)))
                count += 1
            fh.flush()
            os.fsync(fh.fileno())
        self._fh.close()
        os.replace(tmp, self.path)
        self._fh = open(self.path, "ab", buffering=0)
        self._buffer.clear()
        self._buffered_ops = 0
        self._log_ops = count
        self.compactions += 1

    # -- durability ------------------------------------------------------------

    def flush(self) -> None:
        self._write_out()

    def close(self) -> None:
        self._write_out()
        self._fh.close()

    def crash(self) -> None:
        # Abandon the buffered tail: those operations never reached the file.
        self._buffer.clear()
        self._buffered_ops = 0
        self._fh.close()

    @property
    def pending_records(self) -> int:
        return min(self._buffered_ops, len(self._mem))


class _OffsetIndex:
    """Flat open-addressed hash multimap: 64-bit key -> log offsets.

    The paged store's only per-record memory: one ``array('Q')`` holding
    interleaved ``[key, value]`` slot pairs (16 bytes each), linear probing,
    power-of-two sizing.  ``value`` is a log offset; offsets are always
    ``>= len(WAL_MAGIC)``, freeing 0 (EMPTY) and 1 (TOMBSTONE) as sentinels.
    Keys are a 64-bit digest slice of the record's sort key, so distinct
    fingerprints may collide -- the store disambiguates by reading the
    records back, which is why this is a multimap (lookup returns every
    offset filed under the key, probing past tombstones until EMPTY).
    """

    __slots__ = ("_slots", "_mask", "_table", "_used", "_live")

    _EMPTY = 0
    _TOMBSTONE = 1

    def __init__(self, slots: int = 16):
        self._slots = slots
        self._mask = slots - 1
        self._table = array("Q", bytes(16 * slots))
        self._used = 0  # non-EMPTY slots (live + tombstones)
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def add(self, key: int, offset: int) -> None:
        if 3 * (self._used + 1) >= 2 * self._slots:
            self._rebuild()
        table, mask = self._table, self._mask
        i = key & mask
        while True:
            value = table[2 * i + 1]
            if value <= self._TOMBSTONE:
                table[2 * i] = key
                table[2 * i + 1] = offset
                if value == self._EMPTY:
                    self._used += 1
                self._live += 1
                return
            i = (i + 1) & mask

    def lookup(self, key: int) -> List[int]:
        """Every offset filed under *key* (hash collisions included)."""
        table, mask = self._table, self._mask
        i = key & mask
        out: List[int] = []
        while True:
            value = table[2 * i + 1]
            if value == self._EMPTY:
                return out
            if value != self._TOMBSTONE and table[2 * i] == key:
                out.append(value)
            i = (i + 1) & mask

    def remove(self, key: int, offset: int) -> bool:
        table, mask = self._table, self._mask
        i = key & mask
        while True:
            value = table[2 * i + 1]
            if value == self._EMPTY:
                return False
            if value == offset and table[2 * i] == key:
                table[2 * i + 1] = self._TOMBSTONE
                self._live -= 1
                return True
            i = (i + 1) & mask

    def items(self) -> Iterator[Tuple[int, int]]:
        """All live ``(key, offset)`` pairs, in slot order."""
        table = self._table
        for i in range(self._slots):
            value = table[2 * i + 1]
            if value > self._TOMBSTONE:
                yield table[2 * i], value

    def _rebuild(self) -> None:
        # Double when live entries are genuinely dense; otherwise rebuild at
        # the same size, which drops the tombstones that tripped the load
        # check.
        slots = self._slots
        if 3 * (self._live + 1) >= 2 * slots:
            slots *= 2
        old = self._table
        self._slots = slots
        self._mask = slots - 1
        self._table = array("Q", bytes(16 * slots))
        self._used = 0
        self._live = 0
        for i in range(len(old) // 2):
            value = old[2 * i + 1]
            if value > self._TOMBSTONE:
                self.add(old[2 * i], value)


class PagedWalRecordStore(RecordStore):
    """The WAL with paging: records live in the log, not in memory.

    Same on-disk format as :class:`WalRecordStore` (the two classes open
    each other's files), but instead of mirroring the log into a full
    in-memory :class:`~repro.salad.database.RecordDatabase`, memory holds:

    - a :class:`_OffsetIndex` mapping a 64-bit slice of each record's sort
      key to the offset of its INSERT frame (~16-32 bytes per record at the
      index's load factor, vs hundreds for dict-of-set mirrors);
    - a bounded LRU cache of decoded records keyed by offset
      (``cache_records`` entries; :attr:`page_hits` / :attr:`page_misses`
      count its effectiveness);
    - only when a ``capacity`` is set: a bisect-sorted list of live
      ``(sort_key, location)`` pairs serving the Fig. 13 lowest-record
      probe (bounded by the capacity itself, so it never grows with the
      log).

    Cache misses read the frame back from the log: a short ``seek + read``
    against the backing file, or a parse out of the append buffer for
    offsets not yet written out.  No file descriptor is held between
    operations -- a flagship-scale run opens one store per leaf (10^5 of
    them), which would exhaust the fd table if each pinned one.

    Compaction rewrites the log as a live snapshot exactly like the plain
    WAL, then *remaps* every index entry to its new offset and drops the
    (offset-keyed) cache.  Recovery semantics are identical: CRC-framed
    replay, torn tails trimmed, capacity policy re-run.
    """

    _COMPACT_FLOOR = 1024

    def __init__(
        self,
        path: os.PathLike,
        capacity: Optional[int] = None,
        sync_every: int = 64,
        compact_ratio: float = 4.0,
        cache_records: int = 512,
    ):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be positive if set: {capacity}")
        if sync_every < 1:
            raise ValueError(f"sync_every must be positive: {sync_every}")
        if compact_ratio < 1.0:
            raise ValueError(f"compact_ratio must be at least 1: {compact_ratio}")
        if cache_records < 1:
            raise ValueError(f"cache_records must be positive: {cache_records}")
        self.path = Path(path)
        self.capacity = capacity
        self.evictions = 0
        self.rejections = 0
        self._sync_every = sync_every
        self._compact_ratio = compact_ratio
        self._cache_limit = cache_records
        self._index = _OffsetIndex()
        #: Live (sort_key, location) pairs, sorted; capacity stores only.
        self._sorted: Optional[List[Tuple[bytes, int]]] = (
            [] if capacity is not None else None
        )
        self._cache: "OrderedDict[int, SaladRecord]" = OrderedDict()
        self._buffer = bytearray()
        self._buffered_ops = 0
        self._file_end = len(WAL_MAGIC)  # logical offsets >= this are buffered
        self._log_ops = 0
        # Replay-time window into the whole file, so recovery reads need no
        # per-record file opens; None outside __init__.
        self._replay_data: Optional[bytes] = None
        self.recovered_records = 0
        self.torn_bytes_dropped = 0
        # Telemetry (harvested by repro.salad.telemetry).
        self.compactions = 0
        self.sync_writes = 0
        self.page_hits = 0
        self.page_misses = 0
        if self.path.exists() and self.path.stat().st_size > 0:
            self._replay()
            # Replay re-runs the capacity policy; its eviction/rejection
            # outcomes belong to the previous session, not this one.
            self.evictions = 0
            self.rejections = 0
        else:
            self.path.write_bytes(WAL_MAGIC)
        self.recovered_records = len(self._index)

    @staticmethod
    def _key64(sort_key: bytes) -> int:
        # The sort key ends in the fingerprint's hash digest, so its last 8
        # bytes are uniform -- exactly what the hash index wants.
        return int.from_bytes(sort_key[-8:], "big")

    # -- reads -----------------------------------------------------------------

    def _record_at(self, offset: int, cache: bool = True) -> SaladRecord:
        """The record whose INSERT frame starts at logical *offset*."""
        if self._replay_data is not None:
            return self._parse_insert(self._replay_data, offset)
        record = self._cache.get(offset)
        if record is not None:
            self._cache.move_to_end(offset)
            self.page_hits += 1
            return record
        self.page_misses += 1
        if offset >= self._file_end:
            record = self._parse_insert(self._buffer, offset - self._file_end)
        else:
            with open(self.path, "rb") as fh:
                fh.seek(offset)
                op, length = _HEADER.unpack(fh.read(_HEADER.size))
                record = self._decode_insert(fh.read(length))
        if cache:
            self._cache_put(offset, record)
        return record

    @classmethod
    def _parse_insert(cls, buf, offset: int) -> SaladRecord:
        op, length = _HEADER.unpack_from(buf, offset)
        start = offset + _HEADER.size
        return cls._decode_insert(bytes(buf[start : start + length]))

    @staticmethod
    def _decode_insert(payload: bytes) -> SaladRecord:
        key = payload[:FINGERPRINT_BYTES]
        loc_bytes = payload[FINGERPRINT_BYTES + 2 :]
        return SaladRecord(
            fingerprint=Fingerprint.from_bytes(key),
            location=int.from_bytes(loc_bytes, "big"),
        )

    def _cache_put(self, offset: int, record: SaladRecord) -> None:
        cache = self._cache
        cache[offset] = record
        cache.move_to_end(offset)
        if len(cache) > self._cache_limit:
            cache.popitem(last=False)

    def _live_matches(self, sort_key: bytes) -> List[Tuple[int, SaladRecord]]:
        """Live ``(offset, record)`` pairs whose sort key equals *sort_key*.

        The index key is only a 64-bit slice, so every candidate offset is
        read back and verified against the full sort key.
        """
        out = [
            (offset, record)
            for offset in self._index.lookup(self._key64(sort_key))
            if (record := self._record_at(offset)).sort_key() == sort_key
        ]
        out.sort(key=lambda pair: pair[1].location)
        return out

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, fingerprint: Fingerprint) -> bool:
        return bool(self._live_matches(fingerprint.to_bytes()))

    def locations(self, fingerprint: Fingerprint) -> Set[int]:
        matches = self._live_matches(fingerprint.to_bytes())
        return {record.location for _, record in matches}

    def has_location(self, fingerprint: Fingerprint, location: int) -> bool:
        matches = self._live_matches(fingerprint.to_bytes())
        return any(record.location == location for _, record in matches)

    def records(self) -> Iterator[SaladRecord]:
        everything = [
            self._record_at(offset, cache=False)
            for _, offset in self._index.items()
        ]
        everything.sort(key=lambda r: (r.sort_key(), r.location))
        return iter(everything)

    # -- mutations -------------------------------------------------------------

    def insert(self, record: SaladRecord) -> Tuple[bool, List[SaladRecord]]:
        sort_key = record.sort_key()
        matches = [rec for _, rec in self._live_matches(sort_key)]
        if any(m.location == record.location for m in matches):
            return False, matches
        if self.capacity is not None and len(self._index) >= self.capacity:
            lowest = self._sorted[0] if self._sorted else None
            if lowest is None or sort_key <= lowest[0]:
                self.rejections += 1
                return False, matches
            self._evict(*lowest)
            self.evictions += 1
        offset = self._file_end + len(self._buffer)
        self._append(_OP_INSERT, self._insert_payload(record))
        self._index.add(self._key64(sort_key), offset)
        if self._sorted is not None:
            insort(self._sorted, (sort_key, record.location))
        self._cache_put(offset, record)
        self._maybe_compact()
        return True, matches

    def insert_many(
        self, records: Iterable[SaladRecord]
    ) -> List[Tuple[SaladRecord, bool, List[SaladRecord]]]:
        results = [(record, *self.insert(record)) for record in records]
        self._write_out()  # batch boundary: make the whole batch durable
        return results

    def _evict(self, sort_key: bytes, location: int) -> None:
        """Drop the record (known live) with this exact key and location.

        Evictions write no log entry: replaying the logged inserts through
        the same capacity policy re-derives them, exactly as in the plain
        WAL store.
        """
        for offset, record in self._live_matches(sort_key):
            if record.location == location:
                self._index.remove(self._key64(sort_key), offset)
                self._cache.pop(offset, None)
                self._sorted.remove((sort_key, location))
                return
        raise AssertionError("eviction target vanished from the index")

    def remove_location(self, location: int) -> int:
        """Drop every record pointing at *location* (a departed machine).

        A full index scan with read-back -- the paged store keeps no
        per-location index in memory.  Departures are rare (once per machine
        death) and per-leaf logs are small, so the scan is the right trade
        against carrying another always-on in-memory index.
        """
        victims = [
            (key, offset, record)
            for key, offset in list(self._index.items())
            if (record := self._record_at(offset, cache=False)).location == location
        ]
        for key, offset, record in victims:
            self._index.remove(key, offset)
            self._cache.pop(offset, None)
            if self._sorted is not None:
                self._sorted.remove((record.sort_key(), location))
        if victims:
            self._append(_OP_REMOVE_LOCATION, self._remove_payload(location))
            self._maybe_compact()
        return len(victims)

    # -- log append (shared framing with WalRecordStore) -----------------------

    _frame = staticmethod(WalRecordStore._frame)
    _insert_payload = staticmethod(WalRecordStore._insert_payload)
    _remove_payload = staticmethod(WalRecordStore._remove_payload)

    def _append(self, op: int, payload: bytes) -> None:
        self._buffer += self._frame(op, payload)
        self._buffered_ops += 1
        self._log_ops += 1
        if self._buffered_ops >= self._sync_every:
            self._write_out()

    def _write_out(self) -> None:
        if self._buffer:
            with open(self.path, "ab") as fh:
                fh.write(bytes(self._buffer))
            self._file_end += len(self._buffer)
            self._buffer.clear()
            self.sync_writes += 1
        self._buffered_ops = 0

    # -- replay & recovery -----------------------------------------------------

    def _replay(self) -> None:
        data = self.path.read_bytes()
        if not data.startswith(WAL_MAGIC):
            self.torn_bytes_dropped = len(data)
            self.path.write_bytes(WAL_MAGIC)
            return
        self._replay_data = data
        try:
            offset = len(WAL_MAGIC)
            valid_end = offset
            while offset < len(data):
                if offset + _HEADER.size > len(data):
                    break  # truncated header
                op, length = _HEADER.unpack_from(data, offset)
                frame_end = offset + _HEADER.size + length + _CRC.size
                if frame_end > len(data):
                    break  # truncated payload/CRC
                payload = data[offset + _HEADER.size : offset + _HEADER.size + length]
                (crc,) = _CRC.unpack_from(data, offset + _HEADER.size + length)
                if crc != zlib.crc32(data[offset : offset + _HEADER.size + length]):
                    break  # corrupt entry: drop it and everything after
                if not self._apply(op, payload, offset):
                    break  # unparseable payload: same treatment as a bad CRC
                offset = frame_end
                valid_end = frame_end
                self._log_ops += 1
        finally:
            self._replay_data = None
        self.torn_bytes_dropped = len(data) - valid_end
        if self.torn_bytes_dropped:
            with open(self.path, "r+b") as fh:
                fh.truncate(valid_end)
        self._file_end = valid_end

    def _apply(self, op: int, payload: bytes, offset: int) -> bool:
        """Replay one frame at *offset* through the live-state policy."""
        try:
            if op == _OP_INSERT:
                key = payload[:FINGERPRINT_BYTES]
                (loc_len,) = struct.unpack_from(">H", payload, FINGERPRINT_BYTES)
                loc_bytes = payload[FINGERPRINT_BYTES + 2 :]
                if len(key) != FINGERPRINT_BYTES or len(loc_bytes) != loc_len:
                    return False
                record = SaladRecord(
                    fingerprint=Fingerprint.from_bytes(key),
                    location=int.from_bytes(loc_bytes, "big"),
                )
                sort_key = record.sort_key()
                matches = self._live_matches(sort_key)
                if any(r.location == record.location for _, r in matches):
                    return True  # idempotent replay of an odd log
                if self.capacity is not None and len(self._index) >= self.capacity:
                    lowest = self._sorted[0] if self._sorted else None
                    if lowest is None or sort_key <= lowest[0]:
                        self.rejections += 1
                        return True
                    self._evict(*lowest)
                    self.evictions += 1
                self._index.add(self._key64(sort_key), offset)
                if self._sorted is not None:
                    insort(self._sorted, (sort_key, record.location))
            elif op == _OP_REMOVE_LOCATION:
                (loc_len,) = struct.unpack_from(">H", payload, 0)
                loc_bytes = payload[2:]
                if len(loc_bytes) != loc_len:
                    return False
                location = int.from_bytes(loc_bytes, "big")
                for key, off in list(self._index.items()):
                    record = self._parse_insert(self._replay_data, off)
                    if record.location == location:
                        self._index.remove(key, off)
                        if self._sorted is not None:
                            self._sorted.remove((record.sort_key(), location))
            else:
                return False
        except (ValueError, struct.error, IndexError):
            return False
        return True

    # -- compaction ------------------------------------------------------------

    @property
    def log_ops(self) -> int:
        """Entries currently in the log (disk plus buffer)."""
        return self._log_ops

    def _maybe_compact(self) -> None:
        if self._log_ops <= self._COMPACT_FLOOR:
            return
        if self._log_ops <= self._compact_ratio * max(1, len(self._index)):
            return
        self.compact()

    def compact(self) -> None:
        """Rewrite the log as a live snapshot and remap every index offset."""
        live = [
            self._record_at(offset, cache=False)
            for _, offset in self._index.items()
        ]
        live.sort(key=lambda r: (r.sort_key(), r.location))
        tmp = self.path.with_suffix(self.path.suffix + ".compact")
        rebuilt = _OffsetIndex()
        with open(tmp, "wb") as fh:
            fh.write(WAL_MAGIC)
            position = len(WAL_MAGIC)
            for record in live:
                frame = self._frame(_OP_INSERT, self._insert_payload(record))
                fh.write(frame)
                rebuilt.add(self._key64(record.sort_key()), position)
                position += len(frame)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self._index = rebuilt
        self._cache.clear()  # offset-keyed: every key just moved
        self._buffer.clear()
        self._buffered_ops = 0
        self._file_end = position
        self._log_ops = len(live)
        self.compactions += 1

    # -- durability ------------------------------------------------------------

    def flush(self) -> None:
        self._write_out()

    def close(self) -> None:
        self._write_out()

    def crash(self) -> None:
        # Abandon the buffered tail: those operations never reached the file.
        self._buffer.clear()
        self._buffered_ops = 0

    @property
    def pending_records(self) -> int:
        return min(self._buffered_ops, len(self._index))


# ----------------------------------------------------------------------------
# factory & session defaults
# ----------------------------------------------------------------------------

_default_backend: str = "memory"
_default_db_dir: Optional[Path] = None
_process_tmp_dir: Optional[Path] = None


def set_default_db_backend(backend: str, db_dir: Optional[os.PathLike] = None) -> None:
    """Set the process-wide backend default (the CLI ``--db-backend`` hook).

    Mirrors :func:`repro.perf.set_default_workers`: configs whose
    ``db_backend`` is ``None`` resolve to this value, so one CLI flag steers
    every Salad an experiment builds (including those built inside worker
    processes, which re-apply the flag on startup).
    """
    global _default_backend, _default_db_dir
    if backend not in BACKENDS:
        raise ValueError(f"unknown db backend {backend!r}; choose from {BACKENDS}")
    _default_backend = backend
    _default_db_dir = Path(db_dir) if db_dir is not None else None


def resolve_db_backend(backend: Optional[str]) -> str:
    """``None`` means the session default; anything else must be known."""
    if backend is None:
        return _default_backend
    if backend not in BACKENDS:
        raise ValueError(f"unknown db backend {backend!r}; choose from {BACKENDS}")
    return backend


def resolve_db_dir(db_dir: Optional[os.PathLike]) -> Path:
    """The directory durable stores live in; a per-process tempdir by default."""
    global _process_tmp_dir
    if db_dir is not None:
        path = Path(db_dir)
    elif _default_db_dir is not None:
        path = _default_db_dir
    else:
        if _process_tmp_dir is None:
            _process_tmp_dir = Path(tempfile.mkdtemp(prefix="salad-db-"))
        path = _process_tmp_dir
    path.mkdir(parents=True, exist_ok=True)
    return path


def make_record_store(
    backend: Optional[str] = None,
    capacity: Optional[int] = None,
    db_dir: Optional[os.PathLike] = None,
    name: str = "records",
) -> RecordStore:
    """Create (or reopen) a record store of the requested backend.

    *name* identifies the store within *db_dir*; reusing an existing name
    with a durable backend reopens that store and recovers its records,
    which is exactly what the crash-recovery harness does.
    """
    backend = resolve_db_backend(backend)
    if backend == "memory":
        from repro.salad.database import RecordDatabase

        return RecordDatabase(capacity=capacity)
    directory = resolve_db_dir(db_dir)
    if backend == "sqlite":
        return SqliteRecordStore(directory / f"{name}.sqlite", capacity=capacity)
    if backend == "wal-paged":
        # Same file format and extension as "wal": a log written by either
        # class reopens under the other.
        return PagedWalRecordStore(directory / f"{name}.wal", capacity=capacity)
    return WalRecordStore(directory / f"{name}.wal", capacity=capacity)
