"""Alignment predicates (paper Eqs. 11, 12, 15).

Two identifiers are:

- *cell-aligned* if their cell-IDs are equal (all D coordinates match);
- *d-vector-aligned* (Eq. 11) if every coordinate except possibly the d-axis
  matches -- they share a vector of cells parallel to the d-axis;
- *vector-aligned* (Eq. 12) if d-vector-aligned for some d;
- *delta-dimensionally-aligned* (Eq. 15) if they share a delta-dimensional
  hypersquare, i.e. at most delta coordinates mismatch.

Cell-aligned is the delta=0 case and vector-aligned the delta=1 case.
Coordinates of axes with zero bit width (which happens when W < D) always
match, so these predicates automatically respect the effective
dimensionality of Eq. 16.
"""

from __future__ import annotations

from typing import List

from repro.salad.ids import axis_masks, coordinate


def mismatching_dimensions(i: int, j: int, width: int, dimensions: int) -> List[int]:
    """The set Delta of axes on which the two identifiers' coordinates differ.

    This is the workhorse: ``len(...)`` is the lowest dimensional alignment
    delta of the pair, and the Fig. 5 join procedure needs the set itself.

    Implemented with per-axis bit masks: coordinate extraction is a pure bit
    permutation, so coordinate d differs iff the XOR of the identifiers has
    a set bit among axis d's interleaved positions.  One XOR plus D ANDs
    replaces 2*D extraction loops; :func:`mismatching_dimensions_reference`
    keeps the Eq. 10 definition as the property-test oracle.
    """
    diff = (i ^ j) & ((1 << width) - 1)
    if not diff:
        return []
    masks = axis_masks(width, dimensions)
    return [d for d in range(dimensions) if diff & masks[d]]


def mismatching_dimensions_reference(
    i: int, j: int, width: int, dimensions: int
) -> List[int]:
    """Definitional form of :func:`mismatching_dimensions` (per-axis Eq. 10)."""
    return [
        d
        for d in range(dimensions)
        if coordinate(i, width, dimensions, d) != coordinate(j, width, dimensions, d)
    ]


def cell_aligned(i: int, j: int, width: int) -> bool:
    """Cell-aligned: equal cell-IDs (zero-dimensionally aligned)."""
    mask = (1 << width) - 1
    return (i & mask) == (j & mask)


def d_vector_aligned(i: int, j: int, width: int, dimensions: int, axis: int) -> bool:
    """Eq. 11: all coordinates except possibly *axis* match."""
    if not 0 <= axis < dimensions:
        raise ValueError(f"axis {axis} out of range for D={dimensions}")
    return all(
        coordinate(i, width, dimensions, d) == coordinate(j, width, dimensions, d)
        for d in range(dimensions)
        if d != axis
    )


def vector_aligned(i: int, j: int, width: int, dimensions: int) -> bool:
    """Eq. 12: d-vector-aligned for some d (one-dimensionally aligned)."""
    return len(mismatching_dimensions(i, j, width, dimensions)) <= 1


def delta_dimensionally_aligned(
    i: int, j: int, width: int, dimensions: int, delta: int
) -> bool:
    """Eq. 15: the identifiers share a delta-dimensional hypersquare."""
    if delta < 0:
        raise ValueError(f"delta cannot be negative: {delta}")
    return len(mismatching_dimensions(i, j, width, dimensions)) <= delta


def lowest_alignment(i: int, j: int, width: int, dimensions: int) -> int:
    """The smallest delta for which the pair is delta-dimensionally aligned.

    0 means cell-aligned, 1 vector-aligned, and so on.  This is the delta of
    the Fig. 5 pseudo-code.
    """
    return len(mismatching_dimensions(i, j, width, dimensions))
