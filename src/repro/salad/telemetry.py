"""Harvesting SALAD runtime state into a MetricsRegistry.

The leaf/network/storage hot paths keep plain integer attributes (one int
add each); this module turns those attributes into registry entries at
report time.  Both engines share it: :meth:`repro.salad.salad.Salad.
collect_metrics` harvests the in-process leaves, and the sharded engine's
``("metrics",)`` worker op harvests each worker's sub-cube into a fresh
registry that the coordinator merges.

Because a harvest is a snapshot of trace-driven attributes, the merged
sharded registry is bit-identical in counter totals to a single-process
harvest of the same golden trace -- except for the ``salad.sharded.*``
namespace, which only exists on the sharded engine and is excluded from
the identity comparison (see ``tests/salad/test_sharded_golden.py``).

Wall-clock quantities (sqlite flush latency) are histograms, never
counters, so the counter-identity contract stays exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.registry import Histogram, MetricsRegistry


def harvest_salad_metrics(
    registry: MetricsRegistry,
    leaves: Iterable,
    network,
    dimensions: int,
) -> MetricsRegistry:
    """Build registry entries from live SALAD state; returns *registry*.

    *leaves* is any iterable of :class:`~repro.salad.leaf.SaladLeaf`
    (a whole SALAD or one shard's sub-cube); *network* is the engine's
    :class:`~repro.sim.network.Network` (or per-shard ``ShardNetwork``).
    """
    registry.gauge("salad.config.dimensions").set(dimensions)

    hits = misses = scans = width_changes = width_recalcs = 0
    arrivals = hops = notifications = 0
    envelopes = envelope_records = 0
    stored = evictions = rejections = 0
    alive = total = 0
    batch_hist = registry.histogram("salad.routing.batch_size")
    flush_hist = registry.histogram("salad.storage.sqlite.flush_seconds")
    flushes = compactions = sync_writes = 0
    recovered = torn_bytes = log_ops = 0
    page_hits = page_misses = 0
    for leaf in leaves:
        total += 1
        if leaf.alive:
            alive += 1
        hits += leaf.next_hop_hits
        misses += leaf.next_hop_misses
        scans += leaf.survivor_scans
        width_changes += leaf.width_changes
        width_recalcs += leaf.width_recalcs
        arrivals += leaf.record_arrivals
        hops += leaf.record_hops
        # Notifications *delivered*: the recipient's matches list is already
        # maintained by the protocol, so this costs the hot path nothing.
        notifications += len(leaf.matches)
        envelopes += leaf.batch_envelopes
        envelope_records += leaf.batch_records
        for size, n in leaf.batch_size_counts.items():
            batch_hist.observe_count(size, n)
        db = leaf.database
        stored += len(db)
        evictions += db.evictions
        rejections += db.rejections
        db_flush_hist = getattr(db, "flush_seconds", None)
        if db_flush_hist is not None:  # sqlite backend
            flushes += db.flushes
            flush_hist.merge_from(db_flush_hist)
        if getattr(db, "compactions", None) is not None:  # WAL backends
            compactions += db.compactions
            sync_writes += db.sync_writes
            recovered += db.recovered_records
            torn_bytes += db.torn_bytes_dropped
            log_ops += db.log_ops
        if getattr(db, "page_hits", None) is not None:  # paging WAL backend
            page_hits += db.page_hits
            page_misses += db.page_misses

    registry.counter("salad.leaves.total").inc(total)
    registry.counter("salad.leaves.alive").inc(alive)
    registry.counter("salad.routing.next_hop_hits").inc(hits)
    registry.counter("salad.routing.next_hop_misses").inc(misses)
    registry.counter("salad.routing.survivor_scans").inc(scans)
    registry.counter("salad.width.changes").inc(width_changes)
    registry.counter("salad.width.recalcs").inc(width_recalcs)
    registry.counter("salad.records.arrivals").inc(arrivals)
    registry.counter("salad.records.hops").inc(hops)
    registry.counter("salad.records.stored").inc(stored)
    registry.counter("salad.records.match_notifications").inc(notifications)
    registry.counter("salad.routing.envelopes").inc(envelopes)
    registry.counter("salad.routing.envelope_records").inc(envelope_records)
    registry.counter("salad.storage.evictions").inc(evictions)
    registry.counter("salad.storage.rejections").inc(rejections)
    registry.counter("salad.storage.sqlite.flushes").inc(flushes)
    registry.counter("salad.storage.wal.compactions").inc(compactions)
    registry.counter("salad.storage.wal.sync_writes").inc(sync_writes)
    registry.counter("salad.storage.wal.recovered_records").inc(recovered)
    registry.counter("salad.storage.wal.torn_bytes_dropped").inc(torn_bytes)
    registry.counter("salad.storage.wal.log_ops").inc(log_ops)
    registry.counter("salad.storage.wal.page_hits").inc(page_hits)
    registry.counter("salad.storage.wal.page_misses").inc(page_misses)

    registry.counter("salad.network.messages_sent").inc(network.messages_sent)
    registry.counter("salad.network.messages_delivered").inc(
        network.messages_delivered
    )
    registry.counter("salad.network.messages_dropped").inc(network.messages_dropped)
    # Per-link-class counters, topology mode only (the dicts stay empty on
    # the flat fabric).  Labeled so shard-merged registries sum per class --
    # the raw data behind fig_topology's per-class load table.
    for class_name, count in network.class_sent.items():
        registry.counter("salad.network.class_sent", link_class=class_name).inc(count)
    for class_name, count in network.class_delivered.items():
        registry.counter(
            "salad.network.class_delivered", link_class=class_name
        ).inc(count)
    for class_name, count in network.class_dropped.items():
        registry.counter(
            "salad.network.class_dropped", link_class=class_name
        ).inc(count)
    return registry


def harvest_trace_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Registry entries for this process's causal-trace recorder, if any.

    Lands under ``sim.trace.*`` -- the ``sim.`` namespace is per-process
    incidental state excluded from the engine-identity comparison, which is
    right for tracing too: a sampled sharded run counts envelope events the
    single-process engine never emits.  No-op when tracing is off, so the
    counters appear only in sampled runs (skip-if-absent downstream).
    """
    from repro.obs import tracing

    recorder = tracing.ACTIVE
    if recorder is None:
        return registry
    registry.counter("sim.trace.records_sampled").inc(recorder.records_sampled)
    registry.counter("sim.trace.events_recorded").inc(
        recorder._seq  # total ever emitted, not just the undrained tail
    )
    registry.gauge("sim.trace.sample_rate").set(recorder.sample_rate)
    return registry


def harvest_tradeoff_metrics(
    registry: MetricsRegistry, points: Iterable
) -> MetricsRegistry:
    """Registry entries for the fig-tradeoff frontier; returns *registry*.

    *points* is any iterable of objects with the
    :class:`repro.experiments.fig_tradeoff.TradeoffPoint` attributes
    (duck-typed so this layer stays import-free of the experiments).
    Everything lands under ``tradeoff.*`` labeled by replication factor
    and dedup arm, which is what the bench section and the
    ``check_regression.py --metrics`` gates read out of a RunReport.
    """
    for p in points:
        labels = {"r": str(p.replication), "dedup": "on" if p.dedup else "off"}
        registry.gauge("tradeoff.reclaimed_fraction", **labels).set(
            p.reclaimed_fraction
        )
        registry.gauge("tradeoff.min_availability", **labels).set(
            p.min_availability
        )
        registry.gauge("tradeoff.mean_availability", **labels).set(
            p.mean_availability
        )
        registry.counter("tradeoff.moved_replicas", **labels).inc(p.moved_replicas)
        registry.counter("tradeoff.copies", **labels).inc(p.copies)
        registry.counter("tradeoff.shortfall", **labels).inc(p.shortfall)
        registry.counter("tradeoff.files_at_risk", **labels).inc(p.files_at_risk)
        registry.counter("tradeoff.files_lost", **labels).inc(p.files_lost)
        registry.gauge("tradeoff.loss_event_probability", **labels).set(
            p.loss_event_probability
        )
        registry.gauge("tradeoff.recovered_fraction", **labels).set(
            p.recovered_fraction
        )
    return registry


@dataclass
class ShardTransportStats:
    """One worker's cross-shard exchange accounting, harvest-time snapshot.

    The worker keeps these as plain attributes on its hot path (frames and
    byte counts bump ints; the histogram observes one value per frame) and
    snapshots them into a registry only when the ``("metrics",)`` op runs.
    """

    envelopes: int = 0  # frames sent
    envelope_messages: int = 0  # messages inside sent frames
    windows: int = 0  # exchange rounds this worker stepped through
    exchange_bytes: int = 0  # serialized frame bytes sent
    exchange_bytes_received: int = 0  # frame bytes drained from peers
    frames_received: int = 0
    pickled_messages: int = 0  # messages that took the pickle fallback
    envelope_hist: Histogram = field(default_factory=Histogram)


def harvest_shard_transport_metrics(
    registry: MetricsRegistry, transport: ShardTransportStats
) -> MetricsRegistry:
    """Registry entries for one shard's transport stats; returns *registry*.

    Everything lands under ``salad.sharded.*`` -- the namespace only the
    multi-process engine populates, which the golden-trace identity
    comparison excludes (the single-process engine has no envelopes; see
    ``tests/salad/test_sharded_golden.py``).
    """
    registry.counter("salad.sharded.envelopes").inc(transport.envelopes)
    registry.counter("salad.sharded.envelope_messages").inc(
        transport.envelope_messages
    )
    registry.counter("salad.sharded.windows").inc(transport.windows)
    registry.counter("salad.sharded.exchange_bytes").inc(transport.exchange_bytes)
    registry.counter("salad.sharded.exchange_bytes_received").inc(
        transport.exchange_bytes_received
    )
    registry.counter("salad.sharded.frames_received").inc(transport.frames_received)
    registry.counter("salad.sharded.codec.pickled_messages").inc(
        transport.pickled_messages
    )
    registry.histogram("salad.sharded.envelope_size").merge_from(
        transport.envelope_hist
    )
    return registry
