"""The SALAD leaf state machine (paper sections 4.2-4.6).

A leaf is a machine participating in the SALAD.  It maintains:

- a *leaf table* of all leaves it believes to be vector-aligned with it
  (the only leaves it ever communicates with, section 4.3);
- a local *record database* holding the records of its cell (section 4.1);
- an estimate of the system size L, from which it derives its cell-ID width
  W (Fig. 6).

The three protocol procedures are implemented directly from the paper's
pseudo-code:

- record insertion and multi-hop forwarding: Fig. 4;
- join-message handling: Fig. 5;
- cell-ID width recalculation with hysteresis: Fig. 6.

Leaves may disagree about W (their estimates of L differ); the paper notes
this only costs efficiency or lossiness, never correctness, and the
implementation inherits that property because every leaf evaluates alignment
with its *own* W.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Set

from repro.obs import tracing as _tracing
from repro.salad import protocol
from repro.salad.alignment import mismatching_dimensions
from repro.salad.database import RecordDatabase
from repro.salad.storage import RecordStore
from repro.salad.ids import (
    axis_masks,
    cell_id,
    coordinate,
    coordinate_width,
    effective_dimensionality,
    spread_coordinate,
)
from repro.salad.protocol import JoinPayload, MatchPayload
from repro.salad.records import SaladRecord
from repro.salad.width import (
    attenuated_redundancy,
    estimate_system_size,
    known_leaf_ratio,
    target_width,
)
from repro.sim.machine import SimMachine
from repro.sim.network import Message, Network

#: Next-hop cache sentinel: "this record's cell is mine; handle locally".
_LOCAL = object()


class SaladLeaf(SimMachine):
    """One SALAD leaf (machine) with its table, database, and protocols."""

    def __init__(
        self,
        identifier: int,
        network: Network,
        target_redundancy: float = 2.0,
        dimensions: int = 2,
        damping: float = 0.1,
        database_capacity: Optional[int] = None,
        notify_limit: Optional[int] = None,
        rng: Optional[random.Random] = None,
        reference_routing: bool = False,
        database: Optional[RecordStore] = None,
        detailed_metrics: bool = False,
        reference_width: bool = False,
        deferred_width_recalc: bool = False,
    ):
        super().__init__(identifier, network)
        if dimensions < 1:
            raise ValueError(f"dimensionality must be at least 1: {dimensions}")
        if target_redundancy < 1.0:
            raise ValueError(
                f"target redundancy must be at least 1: {target_redundancy}"
            )
        self.target_redundancy = target_redundancy
        self.dimensions = dimensions
        self.damping = damping
        self.width = 0
        # Any repro.salad.storage.RecordStore works here (the memory, sqlite,
        # and WAL backends are contract-identical); callers that don't pass
        # one get the in-memory default.
        self.database = (
            database
            if database is not None
            else RecordDatabase(capacity=database_capacity)
        )
        # Duplicate-notification policy.  None reproduces Fig. 4 literally:
        # notify both machines of *every* matching pair, which costs
        # O(copies^2) messages per duplicate group.  An integer cap notifies
        # each newly inserted record's machine of at most that many existing
        # matches (and vice versa); the transitive chain still identifies the
        # whole group for coalescing, at O(copies) messages -- the only
        # regime in which contents shared by hundreds of machines are
        # simulable (and, judging by its reported message counts, the regime
        # the paper's own simulator ran in).
        self.notify_limit = notify_limit
        self._rng = rng or random.Random(identifier & 0xFFFFFFFF)

        # Leaf table: identifier -> last refresh time (virtual).
        self.leaf_table: Dict[int, float] = {}
        # Index over the table, rebuilt on width changes and updated
        # incrementally on adds/removes:
        #   _cellmates: leaves cell-aligned with me;
        #   _vectors[d][k]: leaves differing from me only on axis d, keyed
        #   by their masked d-axis bits k = j & axis_masks(W, D)[d] (a
        #   bijective image of the d-coordinate that needs no extraction).
        self._cellmates: Set[int] = set()
        self._vectors: Dict[int, Dict[int, Set[int]]] = {
            d: {} for d in range(dimensions)
        }
        # Routing acceleration state, all derived from the current width:
        # the cell-ID mask, per-axis masks, and a next-hop cache mapping a
        # record's cell-ID to its forwarding targets (or _LOCAL).  The cache
        # is invalidated on every leaf-table or width change; masks are
        # recomputed by _rebuild_index.
        self._cell_mask = 0
        self._axis_masks = axis_masks(0, dimensions)
        # Width-increase lookahead: masks for width W+1 plus an incrementally
        # maintained two-bucket partition of the leaf table by "would this
        # entry stay vector-aligned at W+1?".  The survivor bucket is
        # implicit (table minus dropped) and carried as a count; the dropped
        # bucket is the explicit set a committed width increase deletes, so
        # neither the Fig. 6 growth check nor the commit itself needs a
        # table scan.  The pre-amortization full partition scan survives as
        # the `reference_width` oracle (and is what `survivor_scans` counts).
        self._next_cell_mask = 1
        self._next_axis_masks = axis_masks(1, dimensions)
        self._next_width_survivors = 0
        self._next_width_dropped: Set[int] = set()
        self.survivor_scans = 0
        # Width-maintenance path selection, mirroring `reference_routing`:
        # the reference path re-derives the dropped bucket with a full scan
        # at every committed increase (the seed behavior), the default path
        # reads the maintained bucket.  Trace-identical by construction --
        # the width-golden tests assert it.
        self.reference_width = reference_width
        # Opt-in coalescing of recalculations to settle-round boundaries
        # (see _recalculate_width).  Off by default: deferral changes the
        # width-transition schedule and therefore the message trace.
        self.deferred_width_recalc = deferred_width_recalc
        self._recalc_deferred = False
        self._next_hop_cache: Dict[int, object] = {}
        self.next_hop_hits = 0
        self.next_hop_misses = 0
        # Routing-path selection: the indexed path is the default; the
        # reference path keeps the seed's per-axis coordinate scan alive as
        # the golden-trace oracle (message-for-message identical).
        self.reference_routing = reference_routing
        self._route_record = (
            self._route_record_reference
            if reference_routing
            else self._route_record_indexed
        )

        # Telemetry: plain attributes bumped on the hot paths, harvested
        # into a MetricsRegistry at report time (repro.salad.telemetry).
        # Identical across engines: every field below is driven purely by
        # the deterministic message trace.  Record-flow tallies are gated
        # on `detailed_metrics` because even bare integer increments cost
        # several percent at ~15k arrivals per 2k-record insert; the store
        # path is method-swapped here so the disabled path pays nothing.
        self.detailed_metrics = detailed_metrics
        self._store_impl = (
            self._store_record_metered if detailed_metrics else self._store_record
        )
        # Causal tracing composes the same way: when a recorder is active at
        # construction (the engine activates before building leaves), the
        # store path goes through the traced wrapper; otherwise the disabled
        # path pays nothing -- not even a global read per stored record.
        self._store = (
            self._store_record_traced
            if _tracing.ACTIVE is not None
            else self._store_impl
        )
        self.record_arrivals = 0
        self.record_hops = 0
        self.batch_envelopes = 0
        self.batch_records = 0
        # Exact size -> envelope-count mapping; the telemetry harvest folds
        # it into the `salad.routing.batch_size` histogram.  A plain dict
        # increment keeps the per-envelope cost to one hash op.
        self.batch_size_counts: Dict[int, int] = {}

        # Duplicate notifications received for this machine's own files.
        self.matches: List[MatchPayload] = []

        # Join-flood suppression: new-leaf identifiers whose join this leaf
        # has already processed.  Leaves with different system-size estimates
        # can disagree about alignment, which without suppression lets a join
        # cycle among leaves indefinitely; processing each join once breaks
        # the cycle and loses nothing (the first arrival already triggered
        # this leaf's forwarding and welcome).
        self._seen_joins: Set[int] = set()

        self._in_recalculate = False
        self.width_changes = 0
        self.width_recalcs = 0

        self.on(protocol.RECORD, self._on_record)
        self.on(protocol.RECORD_BATCH, self._on_record_batch)
        self.on(protocol.JOIN, self._on_join)
        self.on(protocol.WELCOME, self._on_welcome)
        self.on(protocol.WELCOME_ACK, self._on_welcome_ack)
        self.on(protocol.LEAF_REQUEST, self._on_leaf_request)
        self.on(protocol.LEAF_RESPONSE, self._on_leaf_response)
        self.on(protocol.DEPARTURE, self._on_departure)
        self.on(protocol.REFRESH, self._on_refresh)
        self.on(protocol.MATCH, self._on_match)

    # ------------------------------------------------------------------
    # identifiers & coordinates (always under *this leaf's* current width)
    # ------------------------------------------------------------------

    @property
    def effective_dimensions(self) -> int:
        """Eq. 16: the effective dimensionality, min(W, D)."""
        return effective_dimensionality(self.width, self.dimensions)

    def coord(self, identifier: int, axis: int) -> int:
        return coordinate(identifier, self.width, self.dimensions, axis)

    def cell(self, identifier: int) -> int:
        return cell_id(identifier, self.width)

    def _mismatches(self, identifier: int) -> List[int]:
        """Axes on which *identifier* differs from me: the set Delta."""
        return mismatching_dimensions(
            self.identifier, identifier, self.width, self.dimensions
        )

    @property
    def estimated_system_size(self) -> float:
        """L = T / r, with T counting this leaf itself (section 4.6)."""
        return estimate_system_size(
            len(self.leaf_table) + 1, self.width, self.dimensions
        )

    # ------------------------------------------------------------------
    # leaf-table maintenance
    # ------------------------------------------------------------------

    def knows(self, identifier: int) -> bool:
        return identifier in self.leaf_table

    @property
    def table_size(self) -> int:
        return len(self.leaf_table)

    def _survives_next_width(self, identifier: int) -> bool:
        """Would *identifier* stay vector-aligned at width W+1?"""
        diff = (identifier ^ self.identifier) & self._next_cell_mask
        if not diff:
            return True
        mismatched = False
        for mask in self._next_axis_masks:
            if diff & mask:
                if mismatched:
                    return False
                mismatched = True
        return True

    def _index_add(self, identifier: int) -> bool:
        """Place a leaf into the cellmate/vector index.

        Returns False if the leaf is not vector-aligned under the current
        width (in which case it does not belong in the table at all).
        """
        # Inline of the Delta-set scan over the leaf's cached masks: coords
        # on axis d agree iff the xor has no bits under that axis's mask.
        diff = (identifier ^ self.identifier) & self._cell_mask
        if not diff:
            self._cellmates.add(identifier)
            self._next_hop_cache.clear()
            if self._survives_next_width(identifier):
                self._next_width_survivors += 1
            else:
                self._next_width_dropped.add(identifier)
            return True
        axis = -1
        for d, mask in enumerate(self._axis_masks):
            if diff & mask:
                if axis >= 0:
                    return False  # two mismatching axes: not vector-aligned
                axis = d
        key = identifier & self._axis_masks[axis]
        self._vectors[axis].setdefault(key, set()).add(identifier)
        self._next_hop_cache.clear()
        if self._survives_next_width(identifier):
            self._next_width_survivors += 1
        else:
            self._next_width_dropped.add(identifier)
        return True

    def _index_remove(self, identifier: int) -> None:
        self._cellmates.discard(identifier)
        for by_key in self._vectors.values():
            for members in by_key.values():
                members.discard(identifier)
        # The partition classifies on entry, so removal only needs a set
        # probe, not a fresh alignment check.
        if identifier in self._next_width_dropped:
            self._next_width_dropped.discard(identifier)
        else:
            self._next_width_survivors -= 1
        self._next_hop_cache.clear()

    def _rebuild_index(self) -> None:
        self._cell_mask = (1 << self.width) - 1
        self._axis_masks = axis_masks(self.width, self.dimensions)
        self._next_cell_mask = (1 << (self.width + 1)) - 1
        self._next_axis_masks = axis_masks(self.width + 1, self.dimensions)
        self._next_width_survivors = 0
        self._next_width_dropped = set()
        self._next_hop_cache.clear()
        self._cellmates = set()
        self._vectors = {d: {} for d in range(self.dimensions)}
        for identifier in self.leaf_table:
            self._index_add(identifier)

    def add_leaf(self, identifier: int, recalculate: bool = True) -> bool:
        """Add a vector-aligned leaf to the table; returns True if added."""
        if identifier == self.identifier or identifier in self.leaf_table:
            return False
        if not self._index_add(identifier):
            return False
        self.leaf_table[identifier] = self.network.scheduler.now
        if recalculate:
            self._recalculate_width()
        return True

    def remove_leaf(self, identifier: int, recalculate: bool = True) -> bool:
        if identifier not in self.leaf_table:
            return False
        del self.leaf_table[identifier]
        self._index_remove(identifier)
        if recalculate:
            self._recalculate_width()
        return True

    def _vector_members(self, axis: int, coord_value: int) -> Set[int]:
        """Known leaves j with ``a_axis(I, j)`` and ``c_axis(j) == coord``.

        Excludes cellmates automatically when coord differs from mine, which
        is the only way these sets are used for routing.  Takes a coordinate
        *value* (the Eq. 10 extraction); hot paths that already hold an
        identifier use :meth:`_vector_members_key` directly.
        """
        return self._vector_members_key(
            axis, spread_coordinate(coord_value, self.dimensions, axis)
        )

    def _vector_members_key(self, axis: int, key: int) -> Set[int]:
        """Same as :meth:`_vector_members`, keyed by masked axis bits.

        *key* is ``j & axis_masks(W, D)[axis]`` for any identifier j whose
        axis-coordinate is wanted -- computable from an identifier with one
        AND, no bit-extraction loop.
        """
        members = set(self._vectors[axis].get(key, ()))
        if key == self.identifier & self._axis_masks[axis]:
            members |= self._cellmates
        return members

    def _axis_members(self, axis: int) -> Set[int]:
        """All known leaves d-vector-aligned with me along *axis* (plus cellmates)."""
        members = set(self._cellmates)
        for group in self._vectors[axis].values():
            members |= group
        return members

    # ------------------------------------------------------------------
    # record insertion & forwarding (Fig. 4)
    # ------------------------------------------------------------------

    def insert_record(self, record: SaladRecord) -> None:
        """Locally initiate insertion of a record for one of this machine's files."""
        tracer = _tracing.ACTIVE
        if tracer is not None and tracer.sampled(record._rid):
            tracer.record_insert(record, self.identifier)
        self._process_batch([(record, 0)])

    def insert_records(self, records: Iterable[SaladRecord]) -> int:
        """Locally initiate a batch of records in one pass (Fig. 4, batched).

        Records bound for the same next hop coalesce into a single
        RECORD_BATCH envelope per neighbor, so a machine publishing its whole
        file scan pays one message per neighbor per hop instead of one per
        record.  Routing decisions, storage, and match notifications are
        per-record identical to :meth:`insert_record`.
        """
        pairs = [(record, 0) for record in records]
        tracer = _tracing.ACTIVE  # one check per batch; None costs nothing more
        if tracer is not None:
            for record, _hops in pairs:
                if tracer.sampled(record._rid):
                    tracer.record_insert(record, self.identifier)
        self._process_batch(pairs)
        return len(pairs)

    def _on_record(self, message: Message) -> None:
        record, hops = message.payload
        tracer = _tracing.ACTIVE
        if tracer is not None and tracer.sampled(record._rid):
            tracer.record_hop(record, hops, message.sender, self.identifier)
        self._process_batch([(record, hops)])

    def _on_record_batch(self, message: Message) -> None:
        tracer = _tracing.ACTIVE
        if tracer is not None:
            sender = message.sender
            for record, hops in message.payload:
                if tracer.sampled(record._rid):
                    tracer.record_hop(record, hops, sender, self.identifier)
        self._process_batch(list(message.payload))

    def _process_batch(self, pairs: List[tuple]) -> None:
        """Route/store a batch of ``(record, hops)`` pairs, coalescing forwards.

        Each record follows the Fig. 4 procedure independently; the batch
        layer only merges same-destination forwards into one envelope.  A
        destination owed a single record receives a legacy RECORD message,
        so aggregation never *adds* overhead.
        """
        forwards: Dict[int, List[tuple]] = {}
        if self.reference_routing:
            route = self._route_record
            for record, hops in pairs:
                route(record, hops, forwards)
        else:
            self._route_batch_indexed(pairs, forwards)
        for target, batch in forwards.items():
            if len(batch) == 1:
                self.send(target, protocol.RECORD, batch[0])
            else:
                self.send(target, protocol.RECORD_BATCH, tuple(batch))
                if self.detailed_metrics:
                    size = len(batch)
                    self.batch_envelopes += 1
                    self.batch_records += size
                    counts = self.batch_size_counts
                    counts[size] = counts.get(size, 0) + 1

    def _route_record_reference(
        self, record: SaladRecord, hops: int, forwards: Dict[int, List[tuple]]
    ) -> None:
        """The Fig. 4 procedure for record `<f, l>` at leaf I (oracle path).

        Nominal delivery takes at most D hops (section 4.3), but leaves with
        different system-size estimates compute different coordinates, which
        can bounce a record between vectors indefinitely.  A hop budget of
        2*D forwards every nominal path (plus slack for mild disagreement)
        while converting pathological cycles into ordinary lossiness.

        Outbound forwards are appended to *forwards* (target -> pairs) for
        the caller to coalesce; match notifications are sent immediately.

        This is the seed's implementation -- per-axis coordinate extraction
        on every record, no caching.  It stays in-tree as the oracle the
        golden-trace tests compare :meth:`_route_record_indexed` against.
        """
        routing_id = record.routing_id
        for d in range(self.dimensions):
            if self.coord(routing_id, d) != self.coord(self.identifier, d):
                if hops >= 2 * self.dimensions:
                    return  # hop budget exhausted: the record is lost
                # Forward along my d-axis vector to leaves whose d-coordinate
                # matches the fingerprint's, then exit.
                for target in self._vector_members(d, self.coord(routing_id, d)):
                    forwards.setdefault(target, []).append((record, hops + 1))
                return
        self._store(record, hops, forwards)

    def _route_record_indexed(
        self, record: SaladRecord, hops: int, forwards: Dict[int, List[tuple]]
    ) -> None:
        """Fig. 4 routing through the next-hop cache (default path).

        Message-for-message identical to :meth:`_route_record_reference`:
        the cache memoizes, per record cell-ID, the first mismatching axis's
        forwarding targets (computed once with mask arithmetic instead of
        per-axis extraction), so every further record bound for the same
        cell costs one AND plus one dict probe.  Invalidation: the cache is
        cleared whenever the leaf table gains or loses an entry or the width
        changes (see :meth:`_index_add` / :meth:`_rebuild_index`), which are
        exactly the events that can alter any cell's next hop.
        """
        cell = record.routing_id & self._cell_mask
        targets = self._next_hop_cache.get(cell)
        if targets is None:
            targets = self._compute_next_hop(record.routing_id)
            self._next_hop_cache[cell] = targets
            self.next_hop_misses += 1
        else:
            self.next_hop_hits += 1
        if targets is _LOCAL:
            self._store(record, hops, forwards)
            return
        if hops >= 2 * self.dimensions:
            return  # hop budget exhausted: the record is lost
        for target in targets:
            forwards.setdefault(target, []).append((record, hops + 1))

    def _route_batch_indexed(
        self, pairs: List[tuple], forwards: Dict[int, List[tuple]]
    ) -> None:
        """Batch form of :meth:`_route_record_indexed` with locals bound.

        Per-record behavior is identical (same cache, same order, same
        counters); hoisting the cache/mask/budget lookups out of the loop
        matters because this loop runs once per record per hop.  The cache
        dict cannot be invalidated mid-batch: routing only stores records
        and sends messages (sends are scheduled, never synchronous), and
        only leaf-table/width changes clear the cache.
        """
        cache = self._next_hop_cache
        mask = self._cell_mask
        hop_budget = 2 * self.dimensions
        store = self._store
        hits = misses = 0
        for record, hops in pairs:
            rid = record._rid  # precomputed routing_id; property skipped
            cell = rid & mask
            targets = cache.get(cell)
            if targets is None:
                targets = self._compute_next_hop(rid)
                cache[cell] = targets
                misses += 1
            else:
                hits += 1
            if targets is _LOCAL:
                store(record, hops, forwards)
                continue
            if hops >= hop_budget:
                continue  # hop budget exhausted: the record is lost
            forwarded = (record, hops + 1)
            for target in targets:
                bucket = forwards.get(target)
                if bucket is None:
                    forwards[target] = [forwarded]
                else:
                    bucket.append(forwarded)
        self.next_hop_hits += hits
        self.next_hop_misses += misses

    def _compute_next_hop(self, routing_id: int) -> object:
        """First-mismatching-axis targets for a cell, or _LOCAL if mine.

        The tuple is materialized from the same member set the reference
        path iterates, so forwarding order is identical on a cache miss and
        (because the cache is cleared on any membership change) on every
        hit thereafter.
        """
        diff = (routing_id ^ self.identifier) & self._cell_mask
        if not diff:
            return _LOCAL
        masks = self._axis_masks
        for d in range(self.dimensions):
            if diff & masks[d]:
                return tuple(self._vector_members_key(d, routing_id & masks[d]))
        return _LOCAL  # unreachable: every cell-ID bit belongs to some axis

    def _store_record_metered(
        self, record: SaladRecord, hops: int, forwards: Dict[int, List[tuple]]
    ) -> None:
        """:meth:`_store_record` plus the detailed record-flow tallies."""
        self.record_arrivals += 1
        self.record_hops += hops
        self._store_record(record, hops, forwards)

    def _store_record_traced(
        self, record: SaladRecord, hops: int, forwards: Dict[int, List[tuple]]
    ) -> None:
        """The store path when a causal-trace recorder is active.

        Emits the ``store`` event *before* delegating, so a sampled record's
        timeline orders store ahead of the MATCH sends it triggers.
        """
        tracer = _tracing.ACTIVE
        if tracer is not None and tracer.sampled(record._rid):
            tracer.record_store(record, self.identifier, hops)
        self._store_impl(record, hops, forwards)

    def _store_record(
        self, record: SaladRecord, hops: int, forwards: Dict[int, List[tuple]]
    ) -> None:
        """Cell-aligned arrival: replicate if self-initiated, store, notify."""
        if record.location == self.identifier and hops == 0:
            # Special case: this leaf generated the record (hops == 0 marks
            # local initiation; a copy returning over the network must not
            # re-broadcast).  Replicate to the rest of the cell.
            for target in self._cellmates:
                forwards.setdefault(target, []).append((record, hops + 1))
        if self.database.has_location(record.fingerprint, record.location):
            return  # idempotent redelivery (multiple forwarders reach us)
        stored, matching = self.database.insert(record)
        matching = [m for m in matching if m.location != record.location]
        if self.notify_limit is not None:
            matching = matching[: self.notify_limit]
        for match in matching:
            self.send(
                record.location,
                protocol.MATCH,
                MatchPayload(fingerprint=record.fingerprint, other_machine=match.location),
            )
            self.send(
                match.location,
                protocol.MATCH,
                MatchPayload(fingerprint=record.fingerprint, other_machine=record.location),
            )

    def _on_match(self, message: Message) -> None:
        self.matches.append(message.payload)

    # ------------------------------------------------------------------
    # join protocol (Fig. 5)
    # ------------------------------------------------------------------

    def initiate_join(self, bootstrap: Iterable[int]) -> None:
        """Send a join message to each out-of-band-discovered extant leaf.

        If *bootstrap* is empty, this leaf starts a new singleton SALAD.
        """
        payload = JoinPayload(sender=self.identifier, new_leaf=self.identifier)
        for extant in bootstrap:
            self.send(extant, protocol.JOIN, payload)

    def _on_join(self, message: Message) -> None:
        """The Fig. 5 procedure for a join `<s, n>` arriving at leaf I."""
        payload: JoinPayload = message.payload
        s, n = payload.sender, payload.new_leaf
        if n == self.identifier:
            return  # my own join echoed back; nothing to do
        if n in self._seen_joins:
            return  # flood suppression; already forwarded and welcomed
        self._seen_joins.add(n)
        eff = self.effective_dimensions

        # Mask arithmetic: coordinate d of two identifiers differs iff their
        # XOR has a set bit among axis d's interleaved positions (Eq. 10 is
        # a bit permutation), so each delta computation is one XOR + D ANDs.
        masks = self._axis_masks
        n_diff = (n ^ self.identifier) & self._cell_mask
        delta_set = [d for d in range(eff) if n_diff & masks[d]]
        delta = len(delta_set)
        if s == n:
            # Join received directly from the new leaf: the sender's
            # dimensional alignment is considered lower than all others'.
            sender_delta = -1
        else:
            s_diff = (n ^ s) & self._cell_mask
            sender_delta = sum(1 for d in range(eff) if s_diff & masks[d])

        forward = JoinPayload(sender=self.identifier, new_leaf=n)
        if sender_delta > delta:
            # Sender has higher dimensional alignment: move down one degree.
            if delta > 1:
                for d in delta_set:
                    if (d + 1) % eff in delta_set:
                        continue
                    for target in self._vector_members_key(d, n & masks[d]):
                        self.send(target, protocol.JOIN, forward)
            elif delta == 1:
                # I am vector-aligned: forward to every leaf in my vector.
                for d in delta_set:  # exactly one element
                    for target in self._axis_members(d):
                        self.send(target, protocol.JOIN, forward)
        elif sender_delta < delta:
            if delta < eff:
                # Forward *up* one degree of alignment: pick a random matching
                # axis and a random foreign coordinate along it.
                candidates = [d for d in range(eff) if d not in delta_set]
                d = self._rng.choice(candidates)
                width_d = coordinate_width(self.width, self.dimensions, d)
                coords = [c for c in range(1 << width_d) if c != self.coord(n, d)]
                if coords:
                    c = self._rng.choice(coords)
                    for target in self._vector_members(d, c):
                        self.send(target, protocol.JOIN, forward)
            elif delta > 1:
                # I have minimal alignment with n: initiate the batches, one
                # per mismatching dimension.
                for d in delta_set:
                    for target in self._vector_members_key(d, n & masks[d]):
                        self.send(target, protocol.JOIN, forward)
            else:
                # I'm vector-aligned and effective dimensionality is 1:
                # forward the join to everyone I know.
                for target in self.leaf_table:
                    self.send(target, protocol.JOIN, forward)
        # Equal alignment (sender_delta == delta) forwards nothing: the
        # sender's other recipients cover the remaining paths.
        if delta < 2:
            # I am vector-aligned (or cell-aligned) with the new leaf.
            self.send(n, protocol.WELCOME)

    def _on_welcome(self, message: Message) -> None:
        """Welcome from an extant leaf: add it, update estimate, acknowledge."""
        extant = message.sender
        if self.knows(extant):
            return
        if self.add_leaf(extant):
            self.send(extant, protocol.WELCOME_ACK)

    def _on_welcome_ack(self, message: Message) -> None:
        """Welcome-acknowledge: add the leaf and update the estimate; no reply."""
        self.add_leaf(message.sender)

    # ------------------------------------------------------------------
    # departure & refresh (section 4.5)
    # ------------------------------------------------------------------

    def depart_cleanly(self) -> None:
        """Send explicit departure messages to the whole leaf table, then leave."""
        for identifier in list(self.leaf_table):
            self.send(identifier, protocol.DEPARTURE)
        self.depart()

    def _on_departure(self, message: Message) -> None:
        self.remove_leaf(message.sender)

    def send_refreshes(self) -> None:
        """Send one periodic refresh round to every leaf-table entry."""
        for identifier in list(self.leaf_table):
            self.send(identifier, protocol.REFRESH)

    def _on_refresh(self, message: Message) -> None:
        if message.sender in self.leaf_table:
            self.leaf_table[message.sender] = self.network.scheduler.now
        # A refresh from an unknown but vector-aligned leaf re-introduces it.
        elif self.add_leaf(message.sender):
            pass

    def flush_stale_entries(self, timeout: float) -> int:
        """Drop leaf-table entries not refreshed within *timeout*; return count."""
        now = self.network.scheduler.now
        stale = [
            identifier
            for identifier, last_seen in self.leaf_table.items()
            if now - last_seen > timeout
        ]
        for identifier in stale:
            self.remove_leaf(identifier, recalculate=False)
        if stale:
            self._recalculate_width()
        return len(stale)

    # ------------------------------------------------------------------
    # cell-ID width recalculation (Fig. 6)
    # ------------------------------------------------------------------

    def _recalculate_width(self) -> None:
        """The Fig. 6 procedure, run whenever the leaf table changes."""
        if self._in_recalculate or self._recalc_deferred:
            return
        if self.deferred_width_recalc:
            # Bulk-join storms run this procedure once per table change even
            # though only the final state of a delivery window can influence
            # the *next* window.  Deferral coalesces all of a window's
            # invocations into one at the settle-round boundary.  This is a
            # schedule change relative to Fig. 6's recalculate-on-every-
            # change (width transitions land at window granularity, which
            # alters e.g. which WELCOMEs a joining leaf accepts), so it is
            # opt-in and off by default.  Outside a delivery window the
            # network refuses the deferral and we fall through to the eager
            # path, so driver-level calls still take effect immediately.
            if self.network.defer_post_window(self._flush_deferred_recalc):
                self._recalc_deferred = True
                return
        self._in_recalculate = True
        try:
            self._recalculate_width_inner()
        finally:
            self._in_recalculate = False

    def _flush_deferred_recalc(self) -> None:
        """Run the one coalesced recalculation at the window boundary."""
        self._recalc_deferred = False
        if not self.alive:
            return
        self._in_recalculate = True
        try:
            self._recalculate_width_inner()
        finally:
            self._in_recalculate = False

    def _recalculate_width_inner(self) -> None:
        self.width_recalcs += 1
        d_count = self.dimensions
        table_with_self = len(self.leaf_table) + 1
        estimate = estimate_system_size(table_with_self, self.width, d_count)
        # Decreases use the attenuated target redundancy (hysteresis, Eq. 19).
        reduced = attenuated_redundancy(self.target_redundancy, self.damping)
        target = target_width(estimate, reduced)
        while target < self.width:
            old_width = self.width
            self.width -= 1
            self.width_changes += 1
            self._rebuild_index()
            self._request_newly_aligned(old_width)
            table_with_self = len(self.leaf_table) + 1
            estimate = estimate_system_size(table_with_self, self.width, d_count)
            target = target_width(estimate, reduced)

        target = target_width(estimate, self.target_redundancy)
        while target > self.width:
            # The stability check costs O(1): _next_width_survivors is the
            # incrementally maintained count of entries that stay
            # vector-aligned at W+1, so rejecting the tentative width (the
            # hysteresis zone, where every table change used to pay a full
            # rescan) touches no table entry at all.
            tentative_width = self.width + 1
            tentative_table = self._next_width_survivors + 1
            tentative_estimate = estimate_system_size(
                tentative_table, tentative_width, d_count
            )
            tentative_target = target_width(tentative_estimate, self.target_redundancy)
            if tentative_target < tentative_width:
                return  # the tentative width is unstable; stay put
            if self.reference_width:
                # Reference oracle: re-derive the dropped bucket with the
                # pre-amortization full partition scan (counted so tests can
                # pin the bound and assert identity with the default path).
                self.survivor_scans += 1
                dropped = [
                    identifier
                    for identifier in self.leaf_table
                    if not self._survives_next_width(identifier)
                ]
            else:
                # Amortized commit: the partition was maintained on every
                # add/remove, so committing costs O(dropped), and the only
                # remaining full pass is _rebuild_index at the new width.
                dropped = self._next_width_dropped
            self.width = tentative_width
            self.width_changes += 1
            for identifier in dropped:
                del self.leaf_table[identifier]
            self._rebuild_index()
            estimate = tentative_estimate
            target = tentative_target

    def _request_newly_aligned(self, old_width: int) -> None:
        """After a width decrease, learn the newly vector-aligned leaves.

        Folding merged my cell with its mirror along the fold axis; leaves
        that are now cell-aligned with me (but were not before) have exactly
        the newly vector-aligned leaves in their tables, so ask up to
        ceil(lambda) of them for their leaf tables (section 4.6).
        """
        lam = max(1, round(self.target_redundancy))
        newly_cell_aligned = [
            identifier
            for identifier in self.leaf_table
            if self.cell(identifier) == self.cell(self.identifier)
            and cell_id(identifier, old_width) != cell_id(self.identifier, old_width)
        ]
        for identifier in newly_cell_aligned[:lam]:
            self.send(identifier, protocol.LEAF_REQUEST)

    def _on_leaf_request(self, message: Message) -> None:
        identifiers = tuple(self.leaf_table)
        self.send(message.sender, protocol.LEAF_RESPONSE, identifiers)

    def _on_leaf_response(self, message: Message) -> None:
        added = False
        for identifier in message.payload:
            if identifier == self.identifier or self.knows(identifier):
                continue
            if self.add_leaf(identifier, recalculate=False):
                # Introduce myself so knowledge stays symmetric.
                self.send(identifier, protocol.WELCOME_ACK)
                added = True
        if added:
            self._recalculate_width()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def stored_record_count(self) -> int:
        return len(self.database)

    def __repr__(self) -> str:
        return (
            f"<SaladLeaf {self.identifier:#x} W={self.width} "
            f"T={len(self.leaf_table)} DB={len(self.database)}>"
        )
