"""Targeted-attack model (paper section 4.7).

Because SALAD's record placement is purely statistical, a malicious leaf
cannot appoint itself the store for a chosen fingerprint range; the paper
shows the strongest available attack (for D > 1) is a *sybil inflation*
attack: m malicious leaves choose identifiers vector-aligned with a victim,
inflating the victim's leaf table, hence its system-size estimate L, hence
its cell-ID width W -- which makes the victim's records lossier.  Eq. 20
bounds the damage: the effective redundancy of the victim's records becomes

    lambda' = lambda * (1 - m/L)^D

This module crafts such attacks so simulations can measure lambda' and
compare it with the bound.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.salad.ids import (
    cell_id,
    compose_cell_id,
    coordinate,
    coordinate_width,
    coordinates,
)

IDENTIFIER_BITS = 160


def craft_vector_aligned_identifier(
    victim: int,
    width: int,
    dimensions: int,
    rng: random.Random,
    axis: Optional[int] = None,
) -> int:
    """An identifier vector-aligned with *victim* under the given width.

    Copies the victim's coordinates, randomizes the coordinate on one axis
    (chosen at random unless *axis* is given), and randomizes all identifier
    bits above the cell-ID.  The result lands in the victim's axis vector, so
    the victim will admit it to its leaf table.
    """
    if width < 1:
        raise ValueError("cannot craft against a zero-width SALAD")
    if axis is None:
        candidates = [
            d
            for d in range(dimensions)
            if coordinate_width(width, dimensions, d) > 0
        ]
        axis = rng.choice(candidates)
    coords = coordinates(victim, width, dimensions)
    axis_width = coordinate_width(width, dimensions, axis)
    if axis_width == 0:
        raise ValueError(f"axis {axis} has zero width at W={width}")
    coords[axis] = rng.randrange(1 << axis_width)
    low_bits = compose_cell_id(coords, width, dimensions)
    high_bits = rng.getrandbits(IDENTIFIER_BITS - width) << width
    return high_bits | low_bits


def craft_attack_identifiers(
    victim: int,
    width: int,
    dimensions: int,
    count: int,
    rng: random.Random,
) -> List[int]:
    """*count* sybil identifiers spread evenly across the victim's vectors."""
    axes = [
        d for d in range(dimensions) if coordinate_width(width, dimensions, d) > 0
    ]
    out = []
    for i in range(count):
        out.append(
            craft_vector_aligned_identifier(
                victim, width, dimensions, rng, axis=axes[i % len(axes)]
            )
        )
    return out


def measure_record_redundancy(salad, records) -> float:
    """Mean number of alive leaves storing each of the given records.

    This is the empirical effective redundancy lambda' that Eq. 20 bounds.
    """
    total = 0
    records = list(records)
    if not records:
        return 0.0
    for record in records:
        stored_on = sum(
            1
            for leaf in salad.alive_leaves()
            if record.location in leaf.database.locations(record.fingerprint)
        )
        total += stored_on
    return total / len(records)


def cell_population(salad, identifier: int, width: int) -> int:
    """How many alive leaves are cell-aligned with *identifier* at *width*."""
    return sum(
        1
        for leaf in salad.alive_leaves()
        if cell_id(leaf.identifier, width) == cell_id(identifier, width)
    )
