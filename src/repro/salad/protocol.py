"""SALAD wire-protocol message kinds and payloads.

Keeping the message vocabulary in one place makes the protocol auditable:
every message a SALAD exchanges is one of these kinds, and the traffic
counters of Figs. 9-10 sum over exactly this vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.fingerprint import Fingerprint
from repro.salad.records import SaladRecord

#: A fingerprint record on its way to cell-aligned leaves (Fig. 4).
RECORD = "record"

#: A coalesced batch of records sharing one hop to the same neighbor.
#: Payload: tuple of ``(record, hops)`` pairs.  Aggregation changes only the
#: message *count* (one envelope per neighbor per hop instead of one per
#: record); the per-record routing decisions are exactly those of Fig. 4.
RECORD_BATCH = "record_batch"

#: Join propagation for a new leaf (Fig. 5).
JOIN = "join"

#: Sent by a vector-aligned extant leaf to a joining leaf (section 4.4).
WELCOME = "welcome"

#: Reply from the joining leaf; both sides add leaf-table entries.
WELCOME_ACK = "welcome_ack"

#: Request for leaf-table identifiers after a width decrease (section 4.6).
LEAF_REQUEST = "leaf_request"

#: Response carrying leaf identifiers.
LEAF_RESPONSE = "leaf_response"

#: Clean departure notice (section 4.5).
DEPARTURE = "departure"

#: Periodic liveness refresh (section 4.5).
REFRESH = "refresh"

#: Duplicate notification: "machine k has a file with fingerprint f" (Fig. 4).
MATCH = "match"

ALL_KINDS = (
    RECORD,
    RECORD_BATCH,
    JOIN,
    WELCOME,
    WELCOME_ACK,
    LEAF_REQUEST,
    LEAF_RESPONSE,
    DEPARTURE,
    REFRESH,
    MATCH,
)


@dataclass(frozen=True)
class JoinPayload:
    """`<s, n>` of Fig. 5: forwarding sender and the joining leaf."""

    sender: int
    new_leaf: int


@dataclass(frozen=True)
class MatchPayload:
    """A duplicate notification: some other machine holds the same content."""

    fingerprint: Fingerprint
    other_machine: int


RecordPayload = SaladRecord
#: Payload of a RECORD_BATCH message: ``(record, hops)`` pairs.
RecordBatchPayload = Tuple[Tuple[SaladRecord, int], ...]
LeafResponsePayload = Tuple[int, ...]

#: One in-flight message inside a shard envelope: the hierarchical delivery
#: sort key plus the four :class:`repro.sim.network.Message` fields.
ShardedMessage = Tuple[Tuple[int, ...], int, int, str, object]


@dataclass(frozen=True)
class ShardEnvelope:
    """Logical cross-shard transport unit of the sharded simulation engine.

    The multi-process engine (:mod:`repro.salad.sharded`) applies the
    RECORD_BATCH aggregation idea at the transport layer: all messages one
    shard sends another for one virtual-time window travel together over
    the worker-to-worker pipe, instead of one IPC hop each.  Envelopes are
    *framing*, not SALAD traffic -- the messages inside them keep their
    original kinds, so the Figs. 9-10 counters sum over exactly
    :data:`ALL_KINDS`, identically to the single-process engine.

    On the wire an envelope travels as one or more struct-packed binary
    frames built by :mod:`repro.salad.envelope_codec` (eager non-FINAL
    frames plus one FINAL rendezvous frame per window under the overlapped
    exchange), not as a pickled instance of this class; the class remains
    the documented logical model and the shape codec tests round-trip.

    ``keys`` inside :attr:`messages` are hierarchical delivery sort keys
    (root sequence, then per-handler send sequence, one element per hop):
    merging every shard's window messages in lexicographic key order
    reproduces the single-process scheduler's FIFO delivery order exactly,
    which is what makes sharded runs trace-identical.
    """

    source_shard: int
    window: float
    messages: Tuple[ShardedMessage, ...]
