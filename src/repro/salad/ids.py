"""Cell-IDs and hypercube coordinates (paper section 4.2-4.3, Figs. 1-2).

Each leaf and each record has a large identifier (a 20-byte hash value,
treated here as an integer).  The least significant ``W`` bits form its
*cell-ID* (Eq. 7), where the cell-ID width is derived from the system size
and the target redundancy factor (Eq. 6):

    W = floor(lg(L / Lambda))

so that the mean leaves per cell lambda = L / 2^W satisfies Eq. 5,
``Lambda <= lambda < 2 Lambda``.

The cell-ID is decomposed into D coordinates by bit interleaving (Eq. 10,
Fig. 2): coordinate d takes bits d, D+d, 2D+d, ... of the cell-ID, so when
the system grows and W increments, each coordinate's value changes minimally
(one new high bit on a single axis).
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import List, Tuple


def cell_id_width(system_size: float, target_redundancy: float) -> int:
    """Eq. 6: ``W = floor(lg(L / Lambda))``, floored at zero.

    The floor keeps the actual redundancy factor lambda = L / 2^W inside the
    Eq. 5 band [Lambda, 2*Lambda).
    """
    if target_redundancy <= 0:
        raise ValueError(f"target redundancy must be positive: {target_redundancy}")
    if system_size < 1:
        raise ValueError(f"system size must be at least 1: {system_size}")
    ratio = system_size / target_redundancy
    if ratio < 1:
        return 0
    width = int(math.floor(math.log2(ratio)))
    # math.log2 rounds to nearest, so when the true ratio sits within an
    # ulp of a power of two the floor can land one step off (e.g.
    # log2(32 / (1 + 2**-51)) evaluates to exactly 5.0); correct with the
    # same float comparisons the Eq. 5 band is checked with.
    while width > 0 and system_size / (1 << width) < target_redundancy:
        width -= 1
    while system_size / (1 << (width + 1)) >= target_redundancy:
        width += 1
    return width


def cell_id(identifier: int, width: int) -> int:
    """Eq. 7: ``c(i) = i mod 2^W``."""
    if width < 0:
        raise ValueError(f"cell-ID width cannot be negative: {width}")
    return identifier & ((1 << width) - 1)


def coordinate_width(width: int, dimensions: int, axis: int) -> int:
    """Eq. 9: the bit width W_d of the d-axis coordinate.

    Coordinate d owns the cell-ID bit positions d, D+d, 2D+d, ... below W,
    of which there are ``ceil((W - d) / D)`` when ``d < W`` and 0 otherwise
    (Fig. 2 illustrates the extraction).
    """
    if not 0 <= axis < dimensions:
        raise ValueError(f"axis {axis} out of range for D={dimensions}")
    if width <= axis:
        return 0
    return -(-(width - axis) // dimensions)  # ceiling division


def coordinate(identifier: int, width: int, dimensions: int, axis: int) -> int:
    """Eq. 10: ``c_d(i) = sum_k 2^k * b_{D*k+d}(i)`` over bits below W."""
    value = 0
    bit_index = axis
    out_bit = 0
    while bit_index < width:
        value |= ((identifier >> bit_index) & 1) << out_bit
        bit_index += dimensions
        out_bit += 1
    return value


@lru_cache(maxsize=4096)
def axis_masks(width: int, dimensions: int) -> Tuple[int, ...]:
    """Per-axis bit masks over a cell-ID (the indexed-routing workhorse).

    ``axis_masks(W, D)[d]`` selects exactly the cell-ID bit positions owned
    by coordinate d (positions d, D+d, 2D+d, ... below W, per Eq. 10 /
    Fig. 2).  Because :func:`coordinate` is a pure bit permutation, two
    identifiers agree on coordinate d iff ``(i ^ j) & axis_masks(W, D)[d]``
    is zero -- which turns every alignment predicate into a handful of
    integer ANDs with no per-bit extraction loop.  Cached per (W, D); the
    handful of widths a run ever uses stay resident.
    """
    if width < 0:
        raise ValueError(f"cell-ID width cannot be negative: {width}")
    if dimensions < 1:
        raise ValueError(f"dimensionality must be at least 1: {dimensions}")
    masks = [0] * dimensions
    for bit in range(width):
        masks[bit % dimensions] |= 1 << bit
    return tuple(masks)


def spread_coordinate(coord: int, dimensions: int, axis: int) -> int:
    """Inverse of the per-axis extraction: place coordinate bits on axis bits.

    Returns the cell-ID-positioned image of *coord* on *axis* -- bit k of
    *coord* lands at position ``dimensions * k + axis`` -- i.e. the value of
    ``identifier & axis_masks(W, D)[axis]`` for any identifier whose d-axis
    coordinate is *coord*.  This converts a coordinate *value* into the
    masked-bits bucket key the leaf-table index uses.
    """
    if not 0 <= axis < dimensions:
        raise ValueError(f"axis {axis} out of range for D={dimensions}")
    value = 0
    bit = 0
    while coord:
        if coord & 1:
            value |= 1 << (dimensions * bit + axis)
        coord >>= 1
        bit += 1
    return value


def coordinates(identifier: int, width: int, dimensions: int) -> List[int]:
    """All D coordinates of an identifier's cell-ID."""
    return [coordinate(identifier, width, dimensions, d) for d in range(dimensions)]


def compose_cell_id(coords: List[int], width: int, dimensions: int) -> int:
    """Inverse of :func:`coordinates`: interleave coordinates into a cell-ID."""
    if len(coords) != dimensions:
        raise ValueError(f"expected {dimensions} coordinates, got {len(coords)}")
    value = 0
    for axis, coord in enumerate(coords):
        w_d = coordinate_width(width, dimensions, axis)
        if coord >= (1 << w_d):
            raise ValueError(
                f"coordinate {coord} does not fit in {w_d} bits on axis {axis}"
            )
        for k in range(w_d):
            if (coord >> k) & 1:
                value |= 1 << (dimensions * k + axis)
    return value


def effective_dimensionality(width: int, dimensions: int) -> int:
    """Eq. 16: a SALAD with W < D is effectively only W-dimensional."""
    return min(width, dimensions)
