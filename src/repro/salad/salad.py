"""Whole-SALAD orchestration over the simulated network.

Builds a SALAD the way the paper's experiments do (section 5): "The SALAD
was initialized with a single leaf, and the remaining machines were each
added to the SALAD by the procedure outlined in Subsection 4.4" -- i.e., a
join message to a randomly discovered extant leaf, propagated through the
hypercube, answered by welcomes.

The orchestrator also drives record insertion (Fig. 4) and exposes the
measurements behind every figure: per-machine message counts (Figs. 9-10),
database sizes (Figs. 11-13), leaf-table sizes (Figs. 14-15), and the match
notifications from which reclaimed space is computed (Figs. 7-8).
"""

from __future__ import annotations

import itertools
import os
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.salad.leaf import SaladLeaf
from repro.salad.protocol import MatchPayload
from repro.salad.records import SaladRecord
from repro.salad.storage import (
    make_record_store,
    resolve_db_backend,
    resolve_db_dir,
)
from repro.sim.events import EventScheduler
from repro.sim.failure import fail_exact_fraction
from repro.sim.network import Network
from repro.sim.topology import Topology

#: Per-process sequence distinguishing the durable-store directories of
#: multiple Salad instances built in one process (e.g. one per sweep point).
_salad_sequence = itertools.count()

#: Identifier width: 20-byte hashes (section 2).
IDENTIFIER_BITS = 160

#: Session default for SaladConfig.trace_invariants = None (the CLI
#: ``--trace-invariants`` hook; mirrors set_default_db_backend).
_default_trace_invariants = False


def set_trace_invariants(enabled: bool) -> None:
    """Set the process-wide default for runtime invariant tracing.

    Configs whose ``trace_invariants`` is ``None`` resolve to this value,
    so one CLI flag turns on tracing for every Salad an experiment builds
    (including those built inside worker processes, which re-apply the flag
    on startup; the sharded coordinator instead pins the resolved value
    into the config it ships to its workers).
    """
    global _default_trace_invariants
    _default_trace_invariants = bool(enabled)


def resolve_trace_invariants(value) -> bool:
    """``None`` means the session default; anything else is a plain bool."""
    return _default_trace_invariants if value is None else bool(value)


#: Session default for SaladConfig.detailed_metrics = None (set by
#: ``--metrics-out`` on the CLIs; mirrors set_trace_invariants).
_default_detailed_metrics = False


def set_detailed_metrics(enabled: bool) -> None:
    """Set the process-wide default for detailed record-flow metrics.

    Detailed metrics (per-record arrival/hop counts and per-envelope batch
    statistics) cost real time on the routing hot path -- measurably so on
    insert-heavy workloads -- so they are off unless a run asks for a
    report.  Configs whose ``detailed_metrics`` is ``None`` resolve to this
    value; the sharded coordinator pins the resolved value into the config
    it ships to workers, so both engines always count identically.
    """
    global _default_detailed_metrics
    _default_detailed_metrics = bool(enabled)


def resolve_detailed_metrics(value) -> bool:
    """``None`` means the session default; anything else is a plain bool."""
    return _default_detailed_metrics if value is None else bool(value)


#: Session default for SaladConfig.trace_sample_rate = None (set by
#: ``--trace-sample-rate`` on the CLIs; mirrors set_detailed_metrics).
_default_trace_sample_rate = 0.0


def set_trace_sample_rate(rate: float) -> None:
    """Set the process-wide default causal-trace sampling rate.

    A rate in (0, 1] turns on :mod:`repro.obs.tracing`: a deterministic
    hash of each record's routing id selects the sampled fraction, and
    every engine the session builds emits per-record causal events for
    them.  0 disables tracing entirely (the hot paths pay one ``is None``
    check per batch).  Configs whose ``trace_sample_rate`` is ``None``
    resolve to this value; the sharded coordinator pins the resolved rate
    into the config it ships to workers, so every shard samples the exact
    same records.
    """
    validate_trace_sample_rate(rate)
    global _default_trace_sample_rate
    _default_trace_sample_rate = float(rate)


def resolve_trace_sample_rate(value) -> float:
    """``None`` means the session default; anything else is validated."""
    if value is None:
        return _default_trace_sample_rate
    validate_trace_sample_rate(value)
    return float(value)


def validate_trace_sample_rate(value) -> None:
    """Validate a ``trace_sample_rate`` knob without resolving it."""
    if value is None:
        return
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(
            f"trace_sample_rate must be a number in [0, 1] or None, got "
            f"{type(value).__name__}: {value!r}"
        )
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"trace_sample_rate must be in [0, 1]: {value}")


#: Cross-shard envelope codecs (see :mod:`repro.salad.envelope_codec`):
#: "binary" is the struct-packed wire format, "pickle" reproduces the
#: pre-codec transport for byte/time comparisons.  Trace-identical to each
#: other -- the codec changes how messages travel, never what they say.
ENVELOPE_CODECS = ("binary", "pickle")

#: Session default for SaladConfig.envelope_codec = None (the CLI
#: ``--envelope-codec`` hook; mirrors set_trace_invariants).
_default_envelope_codec = "binary"


def set_envelope_codec(codec: str) -> None:
    """Set the session-default cross-shard envelope codec.

    Configs whose ``envelope_codec`` is ``None`` resolve to this value when
    a :class:`~repro.salad.sharded.ShardedSimulation` is constructed.  Only
    the sharded engine reads the knob -- single-process runs have no
    envelopes.
    """
    validate_envelope_codec(codec)
    global _default_envelope_codec
    _default_envelope_codec = codec


def resolve_envelope_codec(value) -> str:
    """``None`` means the session default; anything else is validated."""
    if value is None:
        return _default_envelope_codec
    validate_envelope_codec(value)
    return value


def validate_envelope_codec(value) -> None:
    """Validate an ``envelope_codec`` knob without resolving it."""
    if value is None:
        return
    if value not in ENVELOPE_CODECS:
        raise ValueError(
            f"envelope_codec must be one of {ENVELOPE_CODECS} or None: {value!r}"
        )


def _topology_link_of(topology):
    """A ``(a, b) -> (link_name, class_name)`` annotator for trace events.

    ``None`` on the flat fabric -- the recorder then omits link fields
    rather than inventing a fake class.
    """
    if topology is None:
        return None

    def link_of(a: int, b: int):
        name, link_class = topology.link(a, b)
        return name, link_class.name

    return link_of


def validate_shard_workers(value) -> None:
    """Validate a ``shard_workers`` knob without resolving it.

    ``None``/1 mean single-process, 0 means auto, and counts >= 2 must be
    powers of two because each worker owns one top-bit sub-cube of the
    hypercube (:mod:`repro.salad.sharded`).  Booleans are rejected for the
    same reason :func:`repro.perf.parallel.resolve_workers` rejects them:
    ``True`` is an ``int`` to Python's numeric checks.
    """
    if value is None:
        return
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(
            f"shard_workers must be an int or None, got "
            f"{type(value).__name__}: {value!r}"
        )
    if value < 0:
        raise ValueError(f"shard_workers must be >= 0 (0 = auto): {value}")
    if value > 1 and value & (value - 1):
        raise ValueError(
            f"shard_workers must be a power of two (sub-cube sharding): {value}"
        )


@dataclass
class SaladConfig:
    """Configuration of a SALAD deployment."""

    target_redundancy: float = 2.0  # Lambda
    dimensions: int = 2  # D
    damping: float = 0.1  # xi (Eq. 19 hysteresis)
    database_capacity: Optional[int] = None  # Fig. 13 record limit
    #: None = Fig. 4 literal pairwise notification (O(copies^2) per group);
    #: an integer caps match notifications per inserted record (O(copies)).
    notify_limit: Optional[int] = None
    bootstrap_count: int = 1  # extant leaves contacted per join
    latency: float = 1.0
    #: Network topology (:class:`repro.sim.topology.Topology`) replacing the
    #: flat constant-latency fabric: per-pair rack/lan/wan delays, per-class
    #: message counters, and named-link cuts.  None keeps the flat fabric
    #: (bit-identical to the seed); the degenerate one-site topology is
    #: trace-identical to None.  The sharded engine only accepts *uniform*
    #: topologies (one reachable latency class); multi-class topologies
    #: raise :class:`repro.salad.sharded.ShardingUnavailable` there.
    topology: Optional["Topology"] = None
    seed: int = 0
    #: Route with the seed's per-axis coordinate scan instead of the indexed
    #: next-hop cache.  Message-for-message identical (the golden-trace tests
    #: assert it); only useful as the oracle side of that comparison.
    reference_routing: bool = False
    #: Commit width increases with the seed's full-table survivor scan
    #: instead of the incrementally maintained drop bucket.  Trace-identical
    #: (the width-golden tests assert it); only useful as the oracle side of
    #: that comparison and as the pre-change leg of the flagship bench.
    reference_width: bool = False
    #: Coalesce width recalculations during bulk-join storms to settle-round
    #: (delivery-window) boundaries instead of running Fig. 6 after every
    #: leaf-table change.  NOT trace-identical to the eager default -- width
    #: transitions land at window granularity, which changes e.g. which
    #: WELCOMEs a joining leaf accepts -- so it is opt-in; the flagship run
    #: turns it on.  Engine-neutral: single-process and sharded runs with
    #: the same setting stay trace-identical to each other.
    deferred_width_recalc: bool = False
    #: Record-database backend per leaf: "memory" (default), "sqlite", or
    #: "wal" (see repro.salad.storage).  None defers to the session default
    #: set by set_default_db_backend (the CLI --db-backend hook).  All three
    #: are contract-identical; the durable two trade insert speed for a
    #: bounded memory footprint and crash recovery.
    db_backend: Optional[str] = None
    #: Directory durable backends write under (each Salad instance gets its
    #: own subdirectory so repeated runs never reopen each other's files).
    #: None = the session default, falling back to a per-process tempdir.
    db_dir: Optional[str] = None
    #: Worker processes for the sub-cube-sharded simulation engine
    #: (:mod:`repro.salad.sharded`).  1 (or None) = the classic
    #: single-process engine; 0 = the largest power of two <= the CPU
    #: count; >= 2 must be a power of two (each worker owns one sub-cube of
    #: the hypercube, selected by the low bits of the cell-ID).  Only
    #: :func:`repro.salad.sharded.make_salad` honors this knob; constructing
    #: :class:`Salad` directly always runs single-process.
    shard_workers: Optional[int] = None
    #: Cross-shard envelope wire codec for the sharded engine: "binary"
    #: (struct-packed, the default) or "pickle" (the pre-codec transport,
    #: kept for byte/time comparisons).  Trace-identical either way.  None
    #: = the session default set by :func:`set_envelope_codec`.  Ignored by
    #: single-process runs.
    envelope_codec: Optional[str] = None
    #: Trace every message and check protocol invariants at harvest time
    #: (the ``--trace-invariants`` runtime mode; see repro.sim.tracer).
    #: None = the session default set by :func:`set_trace_invariants`.
    #: Tracing does not alter the message trace, but it retains every
    #: message in memory -- opt in deliberately on large runs.
    trace_invariants: Optional[bool] = None
    #: Count per-record arrivals/hops and per-envelope batch sizes
    #: (``salad.records.arrivals``/``hops``, ``salad.routing.envelopes``/
    #: ``envelope_records``/``batch_size``).  These increments sit on the
    #: routing hot path, so they are opt-in: ``--metrics-out`` turns them
    #: on; None = the session default set by :func:`set_detailed_metrics`.
    #: Never alters the message trace -- only whether flow counters tally.
    detailed_metrics: Optional[bool] = None
    #: Causal-trace sampling rate in [0, 1] (see :mod:`repro.obs.tracing`):
    #: a deterministic hash of each record's routing id samples this
    #: fraction of inserts, and sampled records emit per-hop/per-store
    #: trace events that export to Perfetto.  Sampling consumes no RNG and
    #: never alters the message trace; 0 disables tracing.  None = the
    #: session default set by :func:`set_trace_sample_rate` (the CLI
    #: ``--trace-sample-rate`` hook).
    trace_sample_rate: Optional[float] = None

    def __post_init__(self) -> None:
        resolve_db_backend(self.db_backend)  # fail fast on unknown names
        validate_shard_workers(self.shard_workers)
        validate_envelope_codec(self.envelope_codec)
        validate_trace_sample_rate(self.trace_sample_rate)
        if self.topology is not None and not isinstance(self.topology, Topology):
            raise ValueError(
                f"topology must be a repro.sim.topology.Topology or None, "
                f"got {type(self.topology).__name__}"
            )
        if self.dimensions < 1:
            raise ValueError(f"dimensions must be >= 1: {self.dimensions}")
        if self.target_redundancy < 1.0:
            raise ValueError(
                f"target redundancy must be >= 1: {self.target_redundancy}"
            )
        if self.bootstrap_count < 1:
            raise ValueError(f"bootstrap count must be >= 1: {self.bootstrap_count}")


class Salad:
    """A SALAD instance: a set of leaves over one simulated network."""

    def __init__(self, config: SaladConfig, network: Optional[Network] = None):
        self.config = config
        self._rng = random.Random(config.seed)
        self.network = network or Network(
            scheduler=EventScheduler(),
            latency=config.latency,
            rng=random.Random(self._rng.getrandbits(64)),
            topology=config.topology,
        )
        self.leaves: Dict[int, SaladLeaf] = {}
        self._join_order: List[int] = []
        # Alive-leaf list in creation order, maintained incrementally so the
        # per-join alive scan in add_leaf/build is O(1) amortized instead of
        # O(leaves) -- at flagship scale (1e5 joins) the rescan is O(L^2).
        # Invalidated by machine-liveness flips via on_liveness_change.
        self._alive_cache: Optional[List[SaladLeaf]] = None
        # Opt-in runtime invariant tracing.  Attached after the network is
        # built (and after the network-seed RNG draw above, so traced and
        # untraced runs see identical randomness).
        self.tracer = None
        if resolve_trace_invariants(config.trace_invariants):
            from repro.sim.tracer import NetworkTracer

            self.tracer = NetworkTracer(self.network)
        # Resolved once so every leaf this SALAD builds counts identically.
        self._detailed_metrics = resolve_detailed_metrics(config.detailed_metrics)
        # Causal tracing (repro.obs.tracing): latest engine wins the module
        # recorder, so sweeps that build several Salads trace the active
        # one.  Activation at rate 0 clears any stale recorder.
        self._trace_sample_rate = resolve_trace_sample_rate(config.trace_sample_rate)
        from repro.obs import tracing

        tracing.activate(
            self._trace_sample_rate,
            shard=None,
            now=lambda: self.network.scheduler.now,
            link_of=_topology_link_of(config.topology),
        )
        # Durable-store housing: resolved lazily so memory-backed SALADs
        # (the default) never touch the filesystem.
        self._db_backend = resolve_db_backend(config.db_backend)
        self._db_dir: Optional[Path] = None

    def _database_for(self, identifier: int):
        """The record store a new leaf gets under this SALAD's backend."""
        if self._db_backend == "memory":
            return make_record_store("memory", capacity=self.config.database_capacity)
        if self._db_dir is None:
            self._db_dir = (
                resolve_db_dir(self.config.db_dir)
                / f"salad-{os.getpid()}-{next(_salad_sequence)}"
            )
        return make_record_store(
            self._db_backend,
            capacity=self.config.database_capacity,
            db_dir=self._db_dir,
            name=f"leaf-{identifier:040x}",
        )

    def close_databases(self) -> None:
        """Flush and close every leaf's record store (durable backends)."""
        for leaf in self.leaves.values():
            leaf.database.close()

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def _fresh_identifier(self) -> int:
        """A random 160-bit identifier, unique within this SALAD.

        Real machines hash their public keys (section 2, and
        :mod:`repro.farsite.machine_id`); the low bits are uniform either
        way, which is all the cell-ID statistics require.
        """
        while True:
            identifier = self._rng.getrandbits(IDENTIFIER_BITS)
            if identifier not in self.leaves:
                return identifier

    def create_leaf(self, identifier: Optional[int] = None) -> SaladLeaf:
        """Create a leaf machine (not yet joined)."""
        if identifier is None:
            identifier = self._fresh_identifier()
        if identifier in self.leaves:
            raise ValueError(f"leaf {identifier:#x} already exists")
        leaf = SaladLeaf(
            identifier,
            self.network,
            target_redundancy=self.config.target_redundancy,
            dimensions=self.config.dimensions,
            damping=self.config.damping,
            database_capacity=self.config.database_capacity,
            notify_limit=self.config.notify_limit,
            rng=random.Random(self._rng.getrandbits(64)),
            reference_routing=self.config.reference_routing,
            database=self._database_for(identifier),
            detailed_metrics=self._detailed_metrics,
            reference_width=self.config.reference_width,
            deferred_width_recalc=self.config.deferred_width_recalc,
        )
        self.leaves[identifier] = leaf
        leaf.on_liveness_change = self._invalidate_alive_cache
        self._alive_cache = None  # callers may rebuild or patch incrementally
        return leaf

    def add_leaf(
        self,
        identifier: Optional[int] = None,
        settle: bool = True,
    ) -> SaladLeaf:
        """Create a leaf and join it to the SALAD (section 4.4).

        The new leaf discovers ``bootstrap_count`` arbitrary extant leaves
        "by some out-of-band means" and sends each a join message.  With
        *settle* (the default), the network runs to quiescence before
        returning, matching the paper's incremental-growth experiments.
        """
        alive = self._alive_leaves_cached()
        leaf = self.create_leaf(identifier)  # invalidates the cache
        if alive:
            count = min(self.config.bootstrap_count, len(alive))
            bootstrap = [extant.identifier for extant in self._rng.sample(alive, count)]
            leaf.initiate_join(bootstrap)
        # The pre-join snapshot plus the (alive) newcomer is the new alive
        # list, in creation order -- reinstall it instead of rescanning.
        alive.append(leaf)
        self._alive_cache = alive
        self._join_order.append(leaf.identifier)
        if settle:
            self.network.run()
        return leaf

    def build(self, count: int, settle_each: bool = True) -> None:
        """Grow the SALAD to *count* live leaves by incremental joins.

        Departed or failed leaves do not count toward the target, so a
        shrunken SALAD can be regrown past its former size.
        """
        while len(self._alive_leaves_cached()) < count:
            self.add_leaf(settle=settle_each)
        if not settle_each:
            self.network.run()

    def run(self) -> int:
        """Settle the network to quiescence (engine-neutral facade name)."""
        return self.network.run()

    @property
    def now(self) -> float:
        """Current virtual time (engine-neutral: sharded runs mirror this)."""
        return self.network.scheduler.now

    def _invalidate_alive_cache(self) -> None:
        self._alive_cache = None

    def _alive_leaves_cached(self) -> List[SaladLeaf]:
        """Alive leaves in creation order; rebuilt only after liveness flips.

        Returns the cache itself -- callers other than add_leaf must not
        mutate it (add_leaf appends the newcomer and reinstalls).
        """
        cache = self._alive_cache
        if cache is None:
            cache = self._alive_cache = [
                leaf for leaf in self.leaves.values() if leaf.alive
            ]
        return cache

    def alive_leaves(self) -> List[SaladLeaf]:
        return list(self._alive_leaves_cached())

    def alive_count(self) -> int:
        return len(self._alive_leaves_cached())

    def alive_identifiers(self) -> List[int]:
        return [leaf.identifier for leaf in self._alive_leaves_cached()]

    def depart_leaf(self, identifier: int, settle: bool = True) -> None:
        """Cleanly depart one leaf (section 4.5) by identifier.

        Identifier-keyed (rather than requiring the leaf object) so drivers
        written against :class:`repro.salad.sharded.ShardedSimulation`, where
        leaves live in worker processes, run unchanged on this engine.
        """
        leaf = self.leaves.get(identifier)
        if leaf is None:
            raise KeyError(f"no such leaf: {identifier:#x}")
        leaf.depart_cleanly()
        if settle:
            self.network.run()

    # ------------------------------------------------------------------
    # failure injection (engine-portable: ShardedSimulation mirrors these)
    # ------------------------------------------------------------------

    def set_loss_probability(self, probability: float) -> None:
        """Every message is lost with this probability (Fig. 8 duty cycle)."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"loss probability must be in [0,1]: {probability}")
        self.network.loss_probability = probability

    def crash_fraction(self, fraction: float, rng: random.Random) -> int:
        """Permanently crash an exact fraction of leaves; returns the count."""
        return len(fail_exact_fraction(list(self.leaves.values()), fraction, rng))

    def shutdown(self) -> None:
        """Release resources (databases here; worker processes when sharded).

        Part of the engine-neutral facade shared with
        :class:`repro.salad.sharded.ShardedSimulation`, so drivers can tear
        down either engine the same way.
        """
        self.close_databases()

    # ------------------------------------------------------------------
    # records
    # ------------------------------------------------------------------

    def insert_records(
        self,
        records_by_leaf: Dict[int, Iterable[SaladRecord]],
        settle: bool = True,
    ) -> int:
        """Each leaf inserts its own file records (Fig. 4); returns count inserted.

        Failed leaves insert nothing -- an off machine cannot publish its
        fingerprints, which is how the Fig. 8 failure experiment works.
        """
        inserted = 0
        for leaf_id, records in records_by_leaf.items():
            leaf = self.leaves.get(leaf_id)
            if leaf is None:
                raise KeyError(f"no such leaf: {leaf_id:#x}")
            if not leaf.alive:
                continue
            # Batched initiation: records sharing a first hop leave in one
            # coalesced envelope (see SaladLeaf.insert_records).
            inserted += leaf.insert_records(records)
        if settle:
            self.network.run()
            # Batch boundary: make the settled round durable, so a crash
            # loses at most the round in flight (no-op for memory stores).
            from repro.obs import tracing

            recorder = tracing.ACTIVE
            for leaf in self.leaves.values():
                if leaf.alive:
                    leaf.database.flush()
                    if recorder is not None:
                        recorder.record_flush(leaf.identifier)
        return inserted

    def collected_matches(self) -> List[Tuple[int, MatchPayload]]:
        """All duplicate notifications received, as (machine, payload) pairs."""
        out: List[Tuple[int, MatchPayload]] = []
        for leaf in self.leaves.values():
            for match in leaf.matches:
                out.append((leaf.identifier, match))
        return out

    # ------------------------------------------------------------------
    # measurements
    # ------------------------------------------------------------------

    def leaf_table_sizes(self, alive_only: bool = True) -> List[int]:
        leaves = self.alive_leaves() if alive_only else list(self.leaves.values())
        return [leaf.table_size for leaf in leaves]

    def database_sizes(self, alive_only: bool = True) -> List[int]:
        leaves = self.alive_leaves() if alive_only else list(self.leaves.values())
        return [len(leaf.database) for leaf in leaves]

    def message_totals(self, alive_only: bool = False) -> List[int]:
        """Per-machine messages sent plus received (Figs. 9-10)."""
        leaves = self.alive_leaves() if alive_only else list(self.leaves.values())
        return [self.network.traffic[leaf.identifier].total for leaf in leaves]

    def width_distribution(self) -> Dict[int, int]:
        """How many alive leaves currently use each cell-ID width."""
        out: Dict[int, int] = {}
        for leaf in self.alive_leaves():
            out[leaf.width] = out.get(leaf.width, 0) + 1
        return dict(sorted(out.items()))

    def total_stored_records(self) -> int:
        return sum(len(leaf.database) for leaf in self.alive_leaves())

    def stored_records(self) -> Dict[int, List[tuple]]:
        """Per-leaf ``(fingerprint, location)`` dumps in store order.

        The golden-trace identity tests compare this against
        :meth:`repro.salad.sharded.ShardedSimulation.stored_records`.
        """
        return {
            identifier: [
                (record.fingerprint, record.location)
                for record in leaf.database.records()
            ]
            for identifier, leaf in self.leaves.items()
        }

    def message_counters(self) -> Tuple[int, int, int]:
        """(sent, delivered, dropped) network totals."""
        return (
            self.network.messages_sent,
            self.network.messages_delivered,
            self.network.messages_dropped,
        )

    def collect_metrics(self, registry):
        """Harvest this SALAD's runtime state into *registry*; returns it.

        Builds fresh entries from the leaves' plain attribute counters (see
        repro.salad.telemetry), so harvesting twice into two registries
        double-counts nothing.  When invariant tracing is on, the protocol
        checks run here and their violation counts land under
        ``sim.invariants.*``.
        """
        from repro.salad.telemetry import harvest_salad_metrics, harvest_trace_metrics

        harvest_salad_metrics(
            registry, self.leaves.values(), self.network, self.config.dimensions
        )
        harvest_trace_metrics(registry)
        if self.tracer is not None:
            self.tracer.feed_registry(registry, self.leaves, self.config.dimensions)
        return registry

    def __len__(self) -> int:
        return len(self.leaves)
