"""Compact binary wire codec for cross-shard envelope frames.

The sharded engine (:mod:`repro.salad.sharded`) originally shipped each
window's cross-shard messages as one pickled
:class:`~repro.salad.protocol.ShardEnvelope` per (source, target) pair.
Pickle is general but pays for that generality twice on the exchange hot
path: the byte stream carries full class/module names and memo machinery,
and both ends run the generic pickle VM.  Every field of a SALAD message is
actually fixed-width -- identifiers are ``IDENTIFIER_BITS``-bit integers,
fingerprints encode to exactly :data:`~repro.core.fingerprint.
FINGERPRINT_BYTES` bytes, route-key elements fit in 64 bits -- so this
module packs messages with :mod:`struct` instead and keeps pickle only as a
per-message fallback for anything outside those bounds.

Frame layout (little-endian)::

    magic    4s   b"SEnv"
    version  u8   FRAME_VERSION
    flags    u8   FLAG_FINAL | FLAG_PICKLED_BODY
    source   u16  sending shard
    window   u32  exchange-round sequence number (not a float timestamp:
                  every worker sees the same step sequence, so an integer
                  index identifies the delivery window exactly)
    count    u32  messages in the body
    body_len u32  length of the body in bytes
    crc      u32  zlib.crc32 of the body
    body     body_len bytes

A FINAL-flagged frame is the rendezvous marker of the overlapped exchange:
it tells the receiver "you now hold everything I will ever send you for
this window".  Empty FINAL frames are legal (and common -- quiescing
shards still rendezvous every window).

Body: a sequence of ``count`` message records.  Each starts with a one-byte
kind code -- an index into :data:`~repro.salad.protocol.ALL_KINDS`, or
:data:`KIND_PICKLED` (0xFF) when the message fell back to pickle::

    kind          u8
    key_len       u8       elements in the delivery sort key
    key           key_len * varint (unsigned LEB128)
    sender        ID_BYTES big-endian
    recipient     ID_BYTES big-endian
    payload       kind-specific (see the per-kind encoders below)

Route-key elements, hop counts, and batch lengths are unsigned LEB128
varints rather than fixed u64/u32: they are almost always tiny (per-hop
send sequence numbers, sub-ten hop counts), and a fixed 8-byte slot per
key element would hand the byte-count win straight back to pickle's
compact small-int opcodes.  Values outside ``[0, 2**64)`` take the
pickle fallback, matching the old fixed-width contract.

Record entries (RECORD and RECORD_BATCH payloads) are interned per frame:
a record routed through several hops in one window appears in many
messages of the same frame, and pickle's object memo collapsed those
repeats to 3-byte refs -- a naive fixed-width encoding re-paying 48 bytes
per occurrence would lose the byte-count comparison outright.  Each entry
starts with a varint: ``0`` introduces a new record (fingerprint +
location follow, appended to the frame's record table), ``k > 0`` refers
to table entry ``k - 1``.  The table is keyed by value (fingerprint
bytes, location), resets at every frame boundary, and rolls back the
additions of any message that falls back to pickle, so backref indices
always match what is actually on the wire.

The ``codec="pickle"`` encoder mode reproduces the original transport cost
model -- the whole message list is pickled at frame time into a
FLAG_PICKLED_BODY body under the same header and CRC -- so byte counts and
serialization spans of the two codecs are directly comparable and the
corruption checks cover both.

Corruption surfaces as typed errors (:class:`TruncatedFrameError`,
:class:`FrameChecksumError`, :class:`CodecVersionError` -- all
:class:`EnvelopeCodecError`), never as garbage messages: the CRC is checked
before any body byte is interpreted.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.fingerprint import FINGERPRINT_BYTES, Fingerprint
from repro.salad.protocol import (
    ALL_KINDS,
    DEPARTURE,
    JOIN,
    LEAF_REQUEST,
    LEAF_RESPONSE,
    MATCH,
    RECORD,
    RECORD_BATCH,
    REFRESH,
    WELCOME,
    WELCOME_ACK,
    JoinPayload,
    MatchPayload,
)
from repro.salad.records import SaladRecord
from repro.salad.salad import IDENTIFIER_BITS

MAGIC = b"SEnv"
FRAME_VERSION = 1

FLAG_FINAL = 0x01
FLAG_PICKLED_BODY = 0x02
#: The frame carries a causal-trace extension *after* its body: sampled
#: trace ids (repro.obs.tracing) keyed to the in-frame message index, so
#: the receiving shard can emit envelope-delivery events without the trace
#: context traveling inside the messages themselves.  Unsampled runs never
#: set this flag, so their frames stay byte-identical to the pre-tracing
#: wire format.  On traced frames the header CRC covers body + extension
#: (the extension is part of what must arrive intact); untraced frames
#: keep the body-only CRC unchanged.
FLAG_TRACED = 0x04

#: Machine identifiers are IDENTIFIER_BITS-bit integers; 20 bytes at the
#: paper's 160-bit identifier space.
ID_BYTES = (IDENTIFIER_BITS + 7) // 8

#: Kind code marking a message that fell back to pickle (the whole
#: ``(key, sender, recipient, kind, payload)`` tuple is pickled).
KIND_PICKLED = 0xFF

_KIND_CODE: Dict[str, int] = {kind: code for code, kind in enumerate(ALL_KINDS)}

_HEADER = struct.Struct("<4sBBHIIII")
HEADER_BYTES = _HEADER.size

_U32 = struct.Struct("<I")

CODEC_BINARY = "binary"
CODEC_PICKLE = "pickle"
CODECS = (CODEC_BINARY, CODEC_PICKLE)


class EnvelopeCodecError(ValueError):
    """A frame failed to decode (corruption, truncation, or bad version)."""


class TruncatedFrameError(EnvelopeCodecError):
    """The frame ends before its declared length."""


class FrameChecksumError(EnvelopeCodecError):
    """The body does not match the frame's CRC32."""


class CodecVersionError(EnvelopeCodecError):
    """The frame was written by an incompatible codec version."""


# ----------------------------------------------------------------------
# per-kind payload encoders
# ----------------------------------------------------------------------

class _Unencodable(Exception):
    """Internal: this message needs the pickle fallback."""


def _enc_varint_into(buf: bytearray, value: int) -> None:
    # Unsigned LEB128, appended in place.  The contract matches a fixed
    # u64 slot: negatives and values >= 2**64 route to the pickle
    # fallback.  Callers roll the buffer back wholesale on fallback, so a
    # partial append never reaches the wire.
    if value < 0 or value >= 1 << 64:
        raise _Unencodable
    while value >= 0x80:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def _dec_varint(body: bytes, offset: int) -> Tuple[int, int]:
    # Single-byte values dominate (send sequences, hop counts), so they
    # skip the accumulation loop entirely.
    if offset >= len(body):
        raise TruncatedFrameError(
            f"message record overruns frame body at offset {offset}"
        )
    byte = body[offset]
    if byte < 0x80:
        return byte, offset + 1
    result = byte & 0x7F
    shift = 7
    offset += 1
    while True:
        _need(body, offset, 1)
        byte = body[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            if result >= 1 << 64:
                raise EnvelopeCodecError("varint exceeds 64 bits")
            return result, offset
        shift += 7
        if shift >= 64:
            raise EnvelopeCodecError("varint exceeds 64 bits")


def _enc_id(value: int) -> bytes:
    # int.to_bytes raises OverflowError for negatives and out-of-range
    # values; both route to the pickle fallback.
    return value.to_bytes(ID_BYTES, "big")


class _FrameInterner:
    """Per-frame record table: (fingerprint bytes, location) -> index.

    Indices are assigned in insertion order, matching the order "new
    record" entries appear on the wire, so the decoder can rebuild the
    table by appending.  :meth:`rollback` undoes the tail additions of a
    message that fell back to pickle mid-encode.
    """

    __slots__ = ("_index",)

    def __init__(self):
        self._index: Dict[Tuple[bytes, int], int] = {}

    def __len__(self) -> int:
        return len(self._index)

    def get(self, key: Tuple[bytes, int]) -> Optional[int]:
        return self._index.get(key)

    def add(self, key: Tuple[bytes, int]) -> None:
        self._index[key] = len(self._index)

    def rollback(self, size: int) -> None:
        while len(self._index) > size:
            self._index.popitem()  # LIFO: exactly the entries past *size*

    def reset(self) -> None:
        self._index.clear()


def _enc_record_entry(
    buf: bytearray, record: SaladRecord, hops: int, intern: _FrameInterner
) -> None:
    if type(record) is not SaladRecord:
        raise _Unencodable
    fp = record.fingerprint.to_bytes()
    key = (fp, record.location)
    index = intern.get(key)
    if index is not None:
        index += 1
        if index < 0x80:
            buf.append(index)
        else:
            _enc_varint_into(buf, index)
    else:
        buf.append(0)
        buf += fp
        buf += _enc_id(record.location)
        # Safe to intern before *hops* encodes: a fallback truncates the
        # buffer and rolls the intern table back to the message start.
        intern.add(key)
    if type(hops) is int and 0 <= hops < 0x80:
        buf.append(hops)
    else:
        _enc_varint_into(buf, hops)


def _enc_record(buf: bytearray, payload: Any, intern: _FrameInterner) -> None:
    record, hops = payload  # RECORD payload is a (record, hops) pair
    _enc_record_entry(buf, record, hops, intern)


def _enc_record_batch(buf: bytearray, payload: Any, intern: _FrameInterner) -> None:
    _enc_varint_into(buf, len(payload))
    for record, hops in payload:
        _enc_record_entry(buf, record, hops, intern)


def _enc_join(buf: bytearray, payload: Any, intern: _FrameInterner) -> None:
    if type(payload) is not JoinPayload:
        raise _Unencodable
    buf += _enc_id(payload.sender)
    buf += _enc_id(payload.new_leaf)


def _enc_leaf_response(buf: bytearray, payload: Any, intern: _FrameInterner) -> None:
    _enc_varint_into(buf, len(payload))
    for identifier in payload:
        buf += _enc_id(identifier)


def _enc_match(buf: bytearray, payload: Any, intern: _FrameInterner) -> None:
    if type(payload) is not MatchPayload:
        raise _Unencodable
    buf += payload.fingerprint.to_bytes()
    buf += _enc_id(payload.other_machine)


def _enc_none(buf: bytearray, payload: Any, intern: _FrameInterner) -> None:
    if payload is not None:
        raise _Unencodable


_PAYLOAD_ENCODERS: Dict[str, Callable[[bytearray, Any, _FrameInterner], None]] = {
    RECORD: _enc_record,
    RECORD_BATCH: _enc_record_batch,
    JOIN: _enc_join,
    WELCOME: _enc_none,
    WELCOME_ACK: _enc_none,
    LEAF_REQUEST: _enc_none,
    LEAF_RESPONSE: _enc_leaf_response,
    DEPARTURE: _enc_none,
    REFRESH: _enc_none,
    MATCH: _enc_match,
}

#: Everything that routes a message to the pickle fallback: unknown kind
#: (KeyError), out-of-range integers (OverflowError/struct.error), payload
#: shape surprises (TypeError/ValueError/AttributeError/_Unencodable).
_FALLBACK_ERRORS = (
    _Unencodable,
    KeyError,
    AttributeError,
    OverflowError,
    TypeError,
    ValueError,
    struct.error,
)


def _encode_binary_into(
    buf: bytearray,
    key: Tuple[int, ...],
    sender: int,
    recipient: int,
    kind: str,
    payload: Any,
    intern: _FrameInterner,
) -> None:
    code = _KIND_CODE[kind]
    n = len(key)
    if n > 0xFF:
        raise _Unencodable
    buf.append(code)
    buf.append(n)
    for element in key:
        # Key elements are per-hop send sequences, almost always < 128.
        if type(element) is int and 0 <= element < 0x80:
            buf.append(element)
        else:
            _enc_varint_into(buf, element)
    buf += _enc_id(sender)
    buf += _enc_id(recipient)
    _PAYLOAD_ENCODERS[kind](buf, payload, intern)


def _encode_pickled(message: tuple) -> bytes:
    blob = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return struct.pack("<BI", KIND_PICKLED, len(blob)) + blob


# ----------------------------------------------------------------------
# encoder
# ----------------------------------------------------------------------

class EnvelopeEncoder:
    """Incremental per-peer frame builder for the overlapped exchange.

    Handlers emit cross-shard messages one at a time; :meth:`add` serializes
    each immediately (binary mode), so by the time the window barrier
    arrives the frame body is already bytes and :meth:`take_frame` only
    joins and stamps a header -- serialization overlaps computation instead
    of extending the barrier.

    In ``pickle`` mode messages are staged raw and the whole list is
    pickled at frame time, reproducing the pre-codec transport's cost
    profile for honest byte/time comparisons.

    Lifetime telemetry (never reset by :meth:`take_frame`):
    ``messages_total``, ``pickled_total``, ``encode_seconds``.
    """

    __slots__ = (
        "codec",
        "count",
        "messages_total",
        "pickled_total",
        "encode_seconds",
        "_buf",
        "_staged",
        "_intern",
        "_trace",
    )

    def __init__(self, codec: str = CODEC_BINARY):
        if codec not in CODECS:
            raise ValueError(f"unknown envelope codec {codec!r} (use one of {CODECS})")
        self.codec = codec
        #: Messages currently staged for the next frame.
        self.count = 0
        self.messages_total = 0
        self.pickled_total = 0
        self.encode_seconds = 0.0
        #: Binary mode serializes straight into one growing frame body --
        #: no per-message byte strings to allocate and join at frame time.
        self._buf = bytearray()
        self._staged: List[tuple] = []
        self._intern = _FrameInterner()
        #: Causal-trace extension entries for the next frame:
        #: (message_index, (trace_id, ...)) pairs.  Empty unless tracing
        #: sampled a record in a staged message.
        self._trace: List[Tuple[int, Tuple[int, ...]]] = []

    def add(
        self,
        key: Tuple[int, ...],
        sender: int,
        recipient: int,
        kind: str,
        payload: Any,
    ) -> None:
        """Stage one message, serializing it now in binary mode."""
        if self.codec == CODEC_BINARY:
            start = perf_counter()
            buf = self._buf
            mark = len(buf)
            interned = len(self._intern)
            try:
                _encode_binary_into(
                    buf, key, sender, recipient, kind, payload, self._intern
                )
            except _FALLBACK_ERRORS:
                # Drop the partial message and any records it interned:
                # neither reached the wire, so backrefs must not see them.
                del buf[mark:]
                self._intern.rollback(interned)
                buf += _encode_pickled((key, sender, recipient, kind, payload))
                self.pickled_total += 1
            self.encode_seconds += perf_counter() - start
        else:
            self._staged.append((key, sender, recipient, kind, payload))
        self.count += 1
        self.messages_total += 1

    def stage_trace(self, trace_ids: Tuple[int, ...]) -> None:
        """Attach sampled trace ids to the *next* :meth:`add`'d message.

        Call immediately before the ``add`` of the message the ids ride
        with; the entry is keyed to the current message index.  The frame's
        trace extension never changes how the messages themselves encode.
        """
        if trace_ids:
            self._trace.append((self.count, tuple(trace_ids)))

    def take_frame(
        self, source_shard: int, window: int, final: bool = False
    ) -> Optional[bytes]:
        """The staged messages as one framed byte string, resetting the stage.

        Returns ``None`` when nothing is staged and *final* is false (no
        frame needed); a FINAL frame is always produced, even empty -- it is
        the rendezvous marker.
        """
        if not self.count and not final:
            return None
        start = perf_counter()
        flags = FLAG_FINAL if final else 0
        if self.codec == CODEC_BINARY:
            body = bytes(self._buf)
            self._buf.clear()
            self._intern.reset()  # backrefs never cross a frame boundary
        else:
            flags |= FLAG_PICKLED_BODY
            body = pickle.dumps(self._staged, protocol=pickle.HIGHEST_PROTOCOL)
            self.pickled_total += self.count
            self._staged = []
        count, self.count = self.count, 0
        extension = b""
        if self._trace:
            flags |= FLAG_TRACED
            extension = _encode_trace_extension(self._trace)
            self._trace = []
        # Untraced frames CRC the body alone (byte-identical to the
        # pre-tracing format); traced frames CRC body + extension so the
        # trace context is integrity-checked too.
        frame = (
            _HEADER.pack(
                MAGIC,
                FRAME_VERSION,
                flags,
                source_shard,
                window,
                count,
                len(body),
                zlib.crc32(body + extension) if extension else zlib.crc32(body),
            )
            + body
            + extension
        )
        self.encode_seconds += perf_counter() - start
        return frame


def _encode_trace_extension(entries: List[Tuple[int, Tuple[int, ...]]]) -> bytes:
    """The trace extension: varint entry count, then per entry a varint
    message index, varint id count, and 8-byte big-endian trace ids."""
    buf = bytearray()
    _enc_varint_into(buf, len(entries))
    for message_index, trace_ids in entries:
        _enc_varint_into(buf, message_index)
        _enc_varint_into(buf, len(trace_ids))
        for trace_id in trace_ids:
            buf += trace_id.to_bytes(8, "big")
    return bytes(buf)


def _decode_trace_extension(
    data: bytes, offset: int
) -> Tuple[Tuple[int, Tuple[int, ...]], ...]:
    n_entries, offset = _dec_varint(data, offset)
    entries = []
    for _ in range(n_entries):
        message_index, offset = _dec_varint(data, offset)
        n_ids, offset = _dec_varint(data, offset)
        _need(data, offset, 8 * n_ids)
        trace_ids = tuple(
            int.from_bytes(data[offset + 8 * i:offset + 8 * (i + 1)], "big")
            for i in range(n_ids)
        )
        offset += 8 * n_ids
        entries.append((message_index, trace_ids))
    if offset != len(data):
        raise EnvelopeCodecError(
            f"{len(data) - offset} trailing bytes after the trace extension"
        )
    return tuple(entries)


# ----------------------------------------------------------------------
# decoder
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class DecodedFrame:
    """One decoded exchange frame."""

    source_shard: int
    window: int
    final: bool
    messages: List[tuple]
    #: Causal-trace extension entries, ``(message_index, (trace_id, ...))``
    #: pairs; empty on untraced frames (the overwhelmingly common case).
    trace: Tuple[Tuple[int, Tuple[int, ...]], ...] = ()


def _need(body: bytes, offset: int, length: int) -> None:
    if offset + length > len(body):
        raise TruncatedFrameError(
            f"message record overruns frame body at offset {offset}"
        )


def _dec_id(body: bytes, offset: int) -> int:
    return int.from_bytes(body[offset:offset + ID_BYTES], "big")


def _dec_record_entry(
    body: bytes, offset: int, records: List[SaladRecord]
) -> Tuple[Tuple[SaladRecord, int], int]:
    # Ref and hops are single-byte varints in the overwhelming common
    # case; read them inline and fall back to _dec_varint for the rest.
    body_len = len(body)
    if offset >= body_len:
        raise TruncatedFrameError(
            f"message record overruns frame body at offset {offset}"
        )
    ref = body[offset]
    if ref < 0x80:
        offset += 1
    else:
        ref, offset = _dec_varint(body, offset)
    if ref:
        if ref > len(records):
            raise EnvelopeCodecError(
                f"record backref {ref} beyond the frame's {len(records)}-entry table"
            )
        record = records[ref - 1]
    else:
        _need(body, offset, FINGERPRINT_BYTES + ID_BYTES)
        fingerprint = Fingerprint.from_bytes(body[offset:offset + FINGERPRINT_BYTES])
        offset += FINGERPRINT_BYTES
        location = _dec_id(body, offset)
        offset += ID_BYTES
        record = SaladRecord(fingerprint, location)
        records.append(record)
    if offset < body_len:
        hops = body[offset]
        if hops < 0x80:
            return (record, hops), offset + 1
    hops, offset = _dec_varint(body, offset)
    return (record, hops), offset


def _dec_record(
    body: bytes, offset: int, records: List[SaladRecord]
) -> Tuple[Any, int]:
    return _dec_record_entry(body, offset, records)


def _dec_record_batch(
    body: bytes, offset: int, records: List[SaladRecord]
) -> Tuple[Any, int]:
    n, offset = _dec_varint(body, offset)
    entries = []
    for _ in range(n):
        entry, offset = _dec_record_entry(body, offset, records)
        entries.append(entry)
    return tuple(entries), offset


def _dec_join(body: bytes, offset: int) -> Tuple[Any, int]:
    _need(body, offset, 2 * ID_BYTES)
    sender = _dec_id(body, offset)
    new_leaf = _dec_id(body, offset + ID_BYTES)
    return JoinPayload(sender, new_leaf), offset + 2 * ID_BYTES


def _dec_leaf_response(body: bytes, offset: int) -> Tuple[Any, int]:
    n, offset = _dec_varint(body, offset)
    _need(body, offset, n * ID_BYTES)
    ids = tuple(
        _dec_id(body, offset + i * ID_BYTES) for i in range(n)
    )
    return ids, offset + n * ID_BYTES


def _dec_match(body: bytes, offset: int) -> Tuple[Any, int]:
    _need(body, offset, FINGERPRINT_BYTES + ID_BYTES)
    fingerprint = Fingerprint.from_bytes(body[offset:offset + FINGERPRINT_BYTES])
    offset += FINGERPRINT_BYTES
    return MatchPayload(fingerprint, _dec_id(body, offset)), offset + ID_BYTES


def _dec_none(body: bytes, offset: int) -> Tuple[Any, int]:
    return None, offset


#: Decoders for record-carrying kinds additionally take the frame's record
#: table (see _decode_messages); the rest are (body, offset) -> (payload, offset).
_RECORD_DECODERS: Dict[
    str, Callable[[bytes, int, List[SaladRecord]], Tuple[Any, int]]
] = {
    RECORD: _dec_record,
    RECORD_BATCH: _dec_record_batch,
}

_PAYLOAD_DECODERS: Dict[str, Callable[[bytes, int], Tuple[Any, int]]] = {
    JOIN: _dec_join,
    WELCOME: _dec_none,
    WELCOME_ACK: _dec_none,
    LEAF_REQUEST: _dec_none,
    LEAF_RESPONSE: _dec_leaf_response,
    DEPARTURE: _dec_none,
    REFRESH: _dec_none,
    MATCH: _dec_match,
}


def _decode_messages(body: bytes, count: int) -> List[tuple]:
    messages: List[tuple] = []
    records: List[SaladRecord] = []  # the frame's record table, in wire order
    offset = 0
    body_len = len(body)
    n_kinds = len(ALL_KINDS)
    from_bytes = int.from_bytes
    for _ in range(count):
        _need(body, offset, 1)
        code = body[offset]
        if code == KIND_PICKLED:
            _need(body, offset + 1, 4)
            (length,) = _U32.unpack_from(body, offset + 1)
            offset += 5
            _need(body, offset, length)
            messages.append(pickle.loads(body[offset:offset + length]))
            offset += length
            continue
        if code >= n_kinds:
            raise EnvelopeCodecError(f"unknown message kind code {code:#x}")
        kind = ALL_KINDS[code]
        _need(body, offset + 1, 1)
        key_len = body[offset + 1]
        offset += 2
        elements = []
        for _ in range(key_len):
            # Inline fast path for the dominant single-byte elements.
            if offset < body_len:
                element = body[offset]
                if element < 0x80:
                    offset += 1
                    elements.append(element)
                    continue
            element, offset = _dec_varint(body, offset)
            elements.append(element)
        key = tuple(elements)
        _need(body, offset, 2 * ID_BYTES)
        sender = from_bytes(body[offset:offset + ID_BYTES], "big")
        offset += ID_BYTES
        recipient = from_bytes(body[offset:offset + ID_BYTES], "big")
        offset += ID_BYTES
        record_decoder = _RECORD_DECODERS.get(kind)
        if record_decoder is not None:
            payload, offset = record_decoder(body, offset, records)
        else:
            payload, offset = _PAYLOAD_DECODERS[kind](body, offset)
        messages.append((key, sender, recipient, kind, payload))
    if offset != len(body):
        raise EnvelopeCodecError(
            f"{len(body) - offset} trailing bytes after the last message"
        )
    return messages


def decode_frame(data: bytes) -> DecodedFrame:
    """Decode one frame produced by :meth:`EnvelopeEncoder.take_frame`.

    Raises an :class:`EnvelopeCodecError` subclass on any corruption; the
    CRC is verified before a single body byte is interpreted.
    """
    if len(data) < HEADER_BYTES:
        raise TruncatedFrameError(
            f"frame shorter than its {HEADER_BYTES}-byte header: {len(data)} bytes"
        )
    magic, version, flags, source_shard, window, count, body_len, crc = (
        _HEADER.unpack_from(data)
    )
    if magic != MAGIC:
        raise EnvelopeCodecError(f"bad frame magic {magic!r}")
    if version != FRAME_VERSION:
        raise CodecVersionError(
            f"frame version {version} unsupported (expected {FRAME_VERSION})"
        )
    body = data[HEADER_BYTES:]
    if len(body) < body_len:
        raise TruncatedFrameError(
            f"frame body truncated: {len(body)} of {body_len} bytes"
        )
    trace: Tuple[Tuple[int, Tuple[int, ...]], ...] = ()
    if flags & FLAG_TRACED:
        # The trace extension lives beyond the declared body; the CRC of a
        # traced frame covers body + extension (see FLAG_TRACED).
        if zlib.crc32(body) != crc:
            raise FrameChecksumError("frame body fails its CRC32 check")
        trace = _decode_trace_extension(data, HEADER_BYTES + body_len)
        body = data[HEADER_BYTES:HEADER_BYTES + body_len]
    else:
        if len(body) > body_len:
            raise EnvelopeCodecError(
                f"{len(body) - body_len} bytes beyond the declared frame body"
            )
        if zlib.crc32(body) != crc:
            raise FrameChecksumError("frame body fails its CRC32 check")
    if flags & FLAG_PICKLED_BODY:
        messages = list(pickle.loads(body))
        if len(messages) != count:
            raise EnvelopeCodecError(
                f"pickled body holds {len(messages)} messages, header says {count}"
            )
    else:
        messages = _decode_messages(body, count)
    return DecodedFrame(
        source_shard=source_shard,
        window=window,
        final=bool(flags & FLAG_FINAL),
        messages=messages,
        trace=trace,
    )
