"""Sub-cube sharded SALAD simulation across worker processes.

One large SALAD run is a single Python process under :class:`Salad`, which
caps the Fig. 14 growth and Fig. 8 failure experiments at one core.  The
paper's hypercube (section 4.2) partitions naturally by cell-ID prefix: the
cell-ID is the *low* W bits of an identifier, so the low ``log2(shards)``
bits select a sub-cube whose leaves share their cellmates.  This module
assigns each sub-cube to a worker process:

- every worker owns the leaves with ``identifier & (shards - 1) == shard``
  and runs its own :class:`~repro.sim.events.EventScheduler` and
  :class:`ShardNetwork` (intra-cell replication traffic never crosses a
  shard boundary, because cellmates share the low bits);
- simulated time advances in *windows* of one network latency.  With
  constant latency (the SALAD experiments' regime), every message sent
  during window ``t`` is delivered at ``t + latency``, so a barrier per
  window is a conservative synchronization: no worker can receive a message
  for a window that another worker is still producing;
- cross-shard messages travel as framed byte envelopes (one logical
  :class:`~repro.salad.protocol.ShardEnvelope` per (source, target, window),
  serialized by :mod:`repro.salad.envelope_codec`) over direct
  worker-to-worker pipes, and the exchange is *overlapped* with local work
  rather than serialized behind the barrier (see below).

**Overlapped exchange.**  Each worker runs a background *drainer* thread
that continuously reads its peer pipes, decodes frames, and parks the
messages by (window, peer); the main thread never blocks on a pipe read.
Outbound messages are serialized *incrementally* as handlers emit them
(:class:`~repro.salad.envelope_codec.EnvelopeEncoder` staging per peer),
and already-staged frames are shipped eagerly -- right after a window's
delivery finishes and right after each driver command -- as non-FINAL
frames tagged with the *next* window's sequence number.  At the next step,
each worker sends one FINAL frame per peer (whatever remains staged, often
empty) as the rendezvous marker, then waits only for every peer's FINAL
tag for that window: by then most bytes have long been drained and
decoded, so the barrier shrinks to a rendezvous on already-staged data.
The conservative send-at-``t``/deliver-at-``t+latency`` invariant makes
eager shipping safe: a frame tagged for window ``k+1`` is never *needed*
until every worker has finished step ``k``, so early arrival only ever
moves bytes sooner, never reorders delivery (the merged lexicographic key
sort fully determines delivery order -- keys are globally unique).
Windows are identified by an integer step sequence number, not the float
timestamp: every worker sees the same step sequence, so the tag is exact.

**Trace identity.**  The single-process scheduler delivers a window's
messages in the order they were *sent* during the previous window.  To
reproduce that order across processes, every buffered message carries a
hierarchical sort key: a message sent while handling a message with key
``K`` gets ``K + (i,)`` (``i`` = the handler's i-th send), and a message
sent by a driver command gets ``(r,)`` with ``r`` a coordinator-assigned
global sequence.  Merging all shards' messages for a window in lexicographic
key order *is* the single-process delivery order (induction over windows:
equal-key prefixes arrive in the previous window's proven order, and within
one handler sends are FIFO).  The coordinator additionally replicates
:class:`Salad`'s master-RNG consumption sequence exactly (identifier draws,
leaf seeds, bootstrap samples), so a sharded run is message-for-message and
record-for-record identical to the single-process engine --
``tests/salad/test_sharded_golden.py`` asserts it.

**Degradation and failure.**  :func:`make_salad` follows the rules of
:mod:`repro.perf.parallel`: if worker processes cannot be created in this
environment (sandbox, resource limits, or a daemonic parent such as a
``ParallelMap`` pool worker running a sweep point), construction raises
:class:`ShardingUnavailable` and the factory falls back to the
single-process engine with a one-line :class:`RuntimeWarning` naming the
fallback worker count.  Failures *inside* a worker propagate -- degradation
hides environmental limits, never bugs.  A worker process that *dies*
mid-run (crash, OOM kill) raises :class:`ShardWorkerDied` naming the shard
and window instead of blocking the barrier forever: the coordinator polls
worker liveness while awaiting replies, and each worker's drainer thread
detects a peer pipe EOF and reports the lost peer.

Unsupported under sharding (use the single-process engine): network
partitions, jitter, and direct access to leaf objects.  Loss is supported
but uses one loss substream per shard, so lossy sharded runs are
statistically equivalent -- not trace-identical -- to single-process ones.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import threading
import traceback
import warnings
from dataclasses import dataclass, replace
from multiprocessing.connection import wait as _connection_wait
from operator import itemgetter
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.obs import tracing as _tracing
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import Span, aggregate_phases, reset_spans, span, take_phases
from repro.salad.envelope_codec import (
    CODEC_BINARY,
    EnvelopeCodecError,
    EnvelopeEncoder,
    decode_frame,
)
from repro.salad.leaf import SaladLeaf
from repro.salad.protocol import MatchPayload
from repro.salad.records import SaladRecord
from repro.salad.salad import (
    IDENTIFIER_BITS,
    Salad,
    SaladConfig,
    _topology_link_of,
    resolve_detailed_metrics,
    resolve_envelope_codec,
    resolve_trace_invariants,
    resolve_trace_sample_rate,
    validate_shard_workers,
)
from repro.salad.telemetry import (
    ShardTransportStats,
    harvest_salad_metrics,
    harvest_shard_transport_metrics,
    harvest_trace_metrics,
)
from repro.salad.storage import (
    make_record_store,
    resolve_db_backend,
    resolve_db_dir,
)
from repro.sim.events import EventScheduler
from repro.sim.network import MachineTraffic, Message, Network


class ShardingUnavailable(RuntimeError):
    """Worker processes cannot be created in this environment."""


class ShardWorkerDied(RuntimeError):
    """A shard worker process died mid-run (crash, OOM kill, signal).

    Raised by the coordinator instead of blocking a barrier forever; names
    the dead shard and the window being exchanged when death was detected.
    """

    def __init__(self, shard: int, window: float):
        super().__init__(
            f"shard {shard} worker died (window {window:g}); the sharded run "
            "cannot continue -- worker state is unrecoverable"
        )
        self.shard = shard
        self.window = window


class _PeerConnectionLost(RuntimeError):
    """Worker-internal: a peer's exchange pipe closed mid-run."""

    def __init__(self, peer: int, window: int):
        super().__init__(
            f"peer shard {peer} connection lost (exchange window {window})"
        )
        self.peer = peer
        self.window = window


def resolve_shard_workers(value: Optional[int]) -> int:
    """Normalize a ``shard_workers`` knob to an effective worker count.

    ``None``/1 mean single-process; ``0`` means the largest power of two
    not exceeding the CPU count; counts >= 2 must be powers of two (each
    worker owns one top-bit sub-cube).
    """
    validate_shard_workers(value)
    if value is None:
        return 1
    if value == 0:
        cpus = os.cpu_count() or 1
        return 1 << (cpus.bit_length() - 1)
    return value


def shard_of(identifier: int, shards: int) -> int:
    """The shard owning *identifier*: its low ``log2(shards)`` bits.

    The low bits are the cell-ID prefix shared by all of a leaf's cellmates
    (cell-ID = low W bits, and W >= log2(shards) once the SALAD outgrows
    ``shards * target_redundancy`` leaves), so cell replication traffic is
    intra-shard by construction.
    """
    return identifier & (shards - 1)


class ShardNetwork(Network):
    """One shard's network fabric: buffers sends instead of scheduling them.

    Inherits delivery (:meth:`Network._deliver`, including the alive and
    partition re-checks and all traffic counters) but replaces scheduling:
    a sent message is appended, with its hierarchical sort key, to the local
    next-window buffer or handed to the recipient shard's
    :class:`~repro.salad.envelope_codec.EnvelopeEncoder`, which serializes
    it immediately (binary codec) so outbound bytes accumulate while
    handlers run.  The worker loop ships staged frames eagerly between
    barriers, rendezvouses on FINAL frames at each barrier, and calls
    :meth:`deliver_window` to merge, sort, and deliver.

    Counter placement mirrors the single-process engine under summation:
    sender-side counters accrue on the sender's shard, receiver-side (and
    delivery-time drops) on the recipient's, and the coordinator sums per
    machine across shards.
    """

    def __init__(
        self,
        shard: int,
        shards: int,
        scheduler: EventScheduler,
        latency: float,
        loss_seed: str,
        codec: str = CODEC_BINARY,
        topology=None,
    ):
        super().__init__(scheduler=scheduler, latency=latency, topology=topology)
        self.shard = shard
        self.shards = shards
        self._shard_mask = shards - 1
        # Per-shard loss substream: statistically equivalent to the
        # single-process loss stream, but not draw-for-draw identical
        # (documented; golden tests cover deterministic configs only).
        self._loss_rng = random.Random(loss_seed)
        self._route_key: Tuple[int, ...] = (0,)
        self._route_seq = 0
        #: Messages for the next window that stay on this shard.
        self._local_next: List[Tuple[Tuple[int, ...], Message]] = []
        #: Per-peer incremental frame encoders: a cross-shard send is
        #: serialized the moment it is emitted (binary codec), so frame
        #: bodies are ready bytes by the time the barrier arrives.
        self._outbound: Dict[int, EnvelopeEncoder] = {
            peer: EnvelopeEncoder(codec)
            for peer in range(shards)
            if peer != shard
        }

    #: Sort-key root for post-window callbacks: above any driver root
    #: sequence, so a deferred callback's sends order *after* every
    #: handler-originated send of the same window across all shards --
    #: exactly where the single-process engine appends them (its post-window
    #: queue drains after the delivery batch).
    _POST_WINDOW_ROOT = 1 << 63

    def begin_root(self, root: int) -> None:
        """Start a driver command: its sends get keys ``(root, 0..)``."""
        self._route_key = (root,)
        self._route_seq = 0

    def defer_post_window(self, callback: Any) -> bool:
        """Queue *callback* until the current window's batch has delivered.

        The queue entry remembers the route key of the message that first
        requested the deferral: replayed under ``(_POST_WINDOW_ROOT,) +
        that_key``, the callback's sends sort identically to the
        single-process engine's post-window drain (first-deferral order is,
        by the trace-identity induction, the merged key order).
        """
        if not self._delivering:
            return False
        self._post_window.append((self._route_key, callback))
        return True

    def send(self, sender: int, recipient: int, kind: str, payload: Any) -> None:
        traffic = self.traffic.get(sender)
        if traffic is None:
            traffic = self.traffic[sender] = MachineTraffic()
        traffic.sent += 1
        traffic.by_kind_sent[kind] = traffic.by_kind_sent.get(kind, 0) + 1
        self.messages_sent += 1
        if self.topology is not None:
            # Uniform-topology runs keep the per-class counters (sender side
            # on the sender's shard, mirroring the single-process engine
            # under shard summation).
            class_name = self.topology.link(sender, recipient)[1].name
            self.class_sent[class_name] = self.class_sent.get(class_name, 0) + 1
        key = self._route_key + (self._route_seq,)
        self._route_seq += 1
        if self.loss_probability and self._loss_rng.random() < self.loss_probability:
            traffic.dropped_to += 1
            self.messages_dropped += 1
            if self.topology is not None:
                self.class_dropped[class_name] = (
                    self.class_dropped.get(class_name, 0) + 1
                )
            return
        target = recipient & self._shard_mask
        if target == self.shard:
            self._local_next.append((key, Message(sender, recipient, kind, payload)))
        else:
            encoder = self._outbound[target]
            recorder = _tracing.ACTIVE
            if recorder is not None and (
                kind == "record" or kind == "record_batch"
            ):
                # Sampled records crossing a shard boundary get their trace
                # ids staged onto the envelope frame (FLAG_TRACED extension)
                # so the receiver can emit the matching deliver events.
                ids = recorder.sampled_ids_in(kind, payload)
                if ids:
                    encoder.stage_trace(ids)
                    recorder.record_envelope_stage(ids, target, machine=sender)
            encoder.add(key, sender, recipient, kind, payload)

    def pending_count(self) -> int:
        """Messages buffered locally or staged-but-unshipped for peers.

        Frames already shipped eagerly are *not* visible here -- the worker
        loop tracks those separately (they still count as in-flight for the
        coordinator's quiescence check until the peers deliver them).
        """
        return len(self._local_next) + self.cross_staged()

    def cross_staged(self) -> int:
        """Messages staged for peer shards but not yet shipped."""
        return sum(encoder.count for encoder in self._outbound.values())

    def take_frame(
        self, peer: int, window: int, final: bool = False
    ) -> Tuple[Optional[bytes], int]:
        """One serialized frame of *peer*'s staged messages and its count.

        Returns ``(None, 0)`` when nothing is staged and *final* is false;
        a FINAL frame is produced even when empty (rendezvous marker).
        """
        encoder = self._outbound[peer]
        count = encoder.count
        frame = encoder.take_frame(self.shard, window, final=final)
        return frame, count

    def deliver_window(self, time: float, incoming: Iterable[tuple]) -> int:
        """Deliver one window: merge local + cross-shard messages by key.

        Returns the number of messages buffered for the *next* window.
        """
        due = self._local_next
        self._local_next = []
        for key, sender, recipient, kind, payload in incoming:
            due.append((key, Message(sender, recipient, kind, payload)))
        due.sort(key=itemgetter(0))
        # Advance virtual time (the scheduler is empty: sharded sends never
        # schedule events), so handlers reading scheduler.now see exactly
        # the single-process window timestamp.
        self.scheduler.advance_to(time)
        deliver = self._deliver
        self._delivering = True
        try:
            for key, message in due:
                self._route_key = key
                self._route_seq = 0
                deliver(message)
        finally:
            self._delivering = False
        if self._post_window:
            entries, self._post_window = self._post_window, []
            for first_key, callback in entries:
                self._route_key = (self._POST_WINDOW_ROOT,) + first_key
                self._route_seq = 0
                callback()
        return self.pending_count()

    def partition(self, groups) -> None:
        raise NotImplementedError(
            "network partitions are not supported under sharding; "
            "use the single-process engine"
        )


class _ExchangeInbox:
    """Drainer-thread side of the overlapped exchange.

    A daemon thread continuously waits on the peer pipes, decodes arriving
    frames off the main thread's critical path, and parks the decoded
    messages by (window, peer).  :meth:`collect` hands the main thread one
    window's merged messages, blocking only until every peer's FINAL frame
    for that window has arrived -- which, with eager shipping, has usually
    already happened while the main thread was delivering the previous
    window.

    Thread safety: each duplex peer pipe has exactly one reader (this
    thread) and one writer (the worker main thread), using opposite pipe
    directions -- no shared direction, no tournament scheduling needed.
    A peer pipe EOF (the peer process died) is recorded, not raised, so the
    main thread gets a precise :class:`_PeerConnectionLost` from
    :meth:`collect` instead of a blocked barrier.
    """

    _WAIT_SECONDS = 0.5

    def __init__(self, shard: int, peers: Dict[int, Any]):
        self._peers = peers
        self._by_conn = {conn: peer for peer, conn in peers.items()}
        self._cond = threading.Condition()
        #: window -> peer -> decoded messages accumulated so far.
        self._messages: Dict[int, Dict[int, List[tuple]]] = {}
        #: window -> [(peer, frame trace extension), ...] for traced frames.
        #: The drainer thread only *parks* them -- trace events must be
        #: emitted on the main thread, whose recorder owns the event list.
        self._trace: Dict[int, List[Tuple[int, tuple]]] = {}
        #: window -> peers whose FINAL frame for that window has arrived.
        self._final: Dict[int, Set[int]] = {}
        self._lost: Set[int] = set()
        self._error: Optional[str] = None
        self._stop = False
        self.bytes_received = 0
        self.frames_received = 0
        self._thread = threading.Thread(
            target=self._drain, name=f"shard{shard}-exchange-drainer", daemon=True
        )
        self._thread.start()

    def _drain(self) -> None:
        conns = list(self._peers.values())
        while conns and not self._stop:
            try:
                ready = _connection_wait(conns, timeout=self._WAIT_SECONDS)
            except OSError:
                ready = []
            for conn in ready:
                peer = self._by_conn[conn]
                try:
                    blob = conn.recv_bytes()
                except (EOFError, OSError):
                    conns.remove(conn)
                    with self._cond:
                        self._lost.add(peer)
                        self._cond.notify_all()
                    continue
                try:
                    frame = decode_frame(blob)
                except EnvelopeCodecError as exc:
                    with self._cond:
                        self._error = f"frame from shard {peer} undecodable: {exc}"
                        self._cond.notify_all()
                    return
                with self._cond:
                    self.bytes_received += len(blob)
                    self.frames_received += 1
                    per_peer = self._messages.setdefault(frame.window, {})
                    per_peer.setdefault(peer, []).extend(frame.messages)
                    if frame.trace:
                        self._trace.setdefault(frame.window, []).append(
                            (peer, frame.trace)
                        )
                    if frame.final:
                        self._final.setdefault(frame.window, set()).add(peer)
                        self._cond.notify_all()

    def collect(self, window: int) -> List[tuple]:
        """Every peer's messages for *window* once all FINAL frames are in.

        Concatenated in ascending peer order (any fixed order works -- the
        delivery sort keys are globally unique, so the caller's merge sort
        fully determines delivery order) and removed from the inbox.
        Raises :class:`_PeerConnectionLost` if a peer died before sending
        its FINAL frame for this window.
        """
        expected = frozenset(self._peers)
        with self._cond:
            while True:
                if self._error is not None:
                    raise RuntimeError(self._error)
                finals = self._final.get(window, set())
                if expected <= finals:
                    break
                missing_lost = (self._lost & expected) - finals
                if missing_lost:
                    raise _PeerConnectionLost(min(missing_lost), window)
                self._cond.wait(timeout=self._WAIT_SECONDS)
            per_peer = self._messages.pop(window, {})
            self._final.pop(window, None)
        merged: List[tuple] = []
        for peer in sorted(per_peer):
            merged.extend(per_peer[peer])
        return merged

    def pop_trace(self, window: int) -> List[Tuple[int, tuple]]:
        """Parked trace extensions for *window*: ``[(peer, entries), ...]``.

        Call after :meth:`collect` for the same window (every traced frame
        precedes its peer's FINAL, so by then all extensions are parked).
        """
        with self._cond:
            return self._trace.pop(window, [])

    def snapshot(self) -> Tuple[int, int]:
        """(bytes received, frames received) -- consistent pair."""
        with self._cond:
            return self.bytes_received, self.frames_received

    def close(self) -> None:
        self._stop = True
        with self._cond:
            self._cond.notify_all()
        self._thread.join(timeout=2)


def _shard_worker_main(
    config: SaladConfig,
    shard: int,
    shards: int,
    loss_seed: str,
    conn,
    peers: Dict[int, Any],
) -> None:
    """Worker command loop: owns one sub-cube's leaves, scheduler, network."""
    # Fork-started workers inherit a copy of the parent's span state (open
    # stack, completed roots); this worker's phase tree must start clean.
    reset_spans()
    scheduler = EventScheduler()
    # Causal tracing: the coordinator pins the resolved sampling rate into
    # the shipped config (same reason as trace_invariants below); activating
    # before any leaf exists lets the SaladLeaf constructor bind its traced
    # store path.  deactivate() first: fork inherits the parent's recorder
    # *and* orphan buffer, and shipping those events from every worker
    # would multiply them by the worker count.
    _tracing.deactivate()
    _tracing.activate(
        resolve_trace_sample_rate(config.trace_sample_rate),
        shard=shard,
        now=lambda: scheduler.now,
        link_of=_topology_link_of(config.topology),
    )
    network = ShardNetwork(
        shard=shard,
        shards=shards,
        scheduler=scheduler,
        latency=config.latency,
        loss_seed=loss_seed,
        codec=resolve_envelope_codec(config.envelope_codec),
        topology=config.topology,
    )
    leaves: Dict[int, SaladLeaf] = {}
    backend = resolve_db_backend(config.db_backend)
    db_dir = None
    # Invariant tracing: the coordinator pins the resolved flag into the
    # config it ships (set_trace_invariants session state does not cross the
    # process boundary), so resolving again here is a no-op for sharded runs
    # and only matters if a worker is somehow started with a None flag.
    tracer = None
    if resolve_trace_invariants(config.trace_invariants):
        from repro.sim.tracer import NetworkTracer

        tracer = NetworkTracer(network)
    # Sharded-only transport telemetry, reported under salad.sharded.* by
    # the ("metrics",) op -- namespaced so the engine-identity comparison
    # can exclude it (the single-process engine has no envelopes).
    transport = ShardTransportStats()
    # Worker-side phase tree: every work op runs under a span, drained and
    # folded into one name-keyed aggregate per command so memory stays
    # O(distinct op kinds) however many windows the run steps through.  The
    # ("metrics",) op ships the folded tree for the RunReport's per-shard
    # breakdown.
    phase_agg: Dict[str, Span] = {}

    def drain_phases() -> None:
        aggregate_phases(take_phases(), phase_agg)

    def database_for(identifier: int):
        nonlocal db_dir
        if backend == "memory":
            return make_record_store("memory", capacity=config.database_capacity)
        if db_dir is None:
            db_dir = (
                resolve_db_dir(config.db_dir) / f"salad-shard{shard}-{os.getpid()}"
            )
        return make_record_store(
            backend,
            capacity=config.database_capacity,
            db_dir=db_dir,
            name=f"leaf-{identifier:040x}",
        )

    inbox = _ExchangeInbox(shard, peers)
    peer_order = sorted(peers)
    # Exchange-round sequence number: increments once per "step" op (every
    # worker sees the same step sequence, so the integer tags windows
    # exactly); frames emitted after round k completes are tagged k+1.
    exchange_round = 0
    # Messages already shipped eagerly for round exchange_round + 1: gone
    # from the network's staging but still in flight from the coordinator's
    # perspective until the peers deliver them, so every pending reply adds
    # this count.
    shipped_ahead = 0
    # encode_seconds/messages already folded into phase_agg by a previous
    # ("metrics",) op -- the fold ships deltas so repeat harvests never
    # double-count.
    reported_encode_seconds = 0.0
    reported_encoded = 0

    def ship(window: int, final: bool = False) -> int:
        """Send staged frames (and FINAL markers) to every peer.

        Returns the number of messages shipped.  Fixed peer order; frame
        arrival order is irrelevant (the inbox parks by window and peer,
        and delivery order comes entirely from the key sort).
        """
        shipped = 0
        for peer in peer_order:
            frame, count = network.take_frame(peer, window, final=final)
            if frame is None:
                continue
            try:
                peers[peer].send_bytes(frame)
            except (BrokenPipeError, OSError):
                raise _PeerConnectionLost(peer, window) from None
            transport.envelopes += 1
            transport.envelope_messages += count
            transport.envelope_hist.observe(count)
            transport.exchange_bytes += len(frame)
            shipped += count
        return shipped

    def pending() -> int:
        return network.pending_count() + shipped_ahead

    def cross_pending() -> int:
        """Cross-shard backlog: staged for peers or already shipped ahead.

        The coordinator sums this across workers; a zero sum proves the
        next exchange round moves no frame at all, so the step command can
        skip the rendezvous (``exchange=False``).
        """
        return network.cross_staged() + shipped_ahead

    while True:
        try:
            command = conn.recv()
        except EOFError:
            break
        op = command[0]
        try:
            if op == "step":
                window = command[1]
                exchange = command[2]
                exchange_round += 1
                transport.windows += 1
                recorder = _tracing.ACTIVE
                bytes_before = transport.exchange_bytes
                with span("shard.step") as step_span:
                    if exchange:
                        # Rendezvous: whatever is still staged goes out as
                        # the FINAL frame per peer (often empty -- eager
                        # shipping already moved the bulk), then wait only
                        # for every peer's FINAL tag.  The drainer has been
                        # decoding their frames in the background all along.
                        with span("exchange.finalize"):
                            ship(exchange_round, final=True)
                        with span("exchange.wait"):
                            incoming = inbox.collect(exchange_round)
                        traced_frames = inbox.pop_trace(exchange_round)
                        if recorder is not None:
                            # Emitted here (main thread, pre-advance) so the
                            # deliver events stamp the *send* window's time,
                            # ordering after their envelope.stage twins and
                            # before the hops the delivery triggers.
                            for peer, entries in traced_frames:
                                ids = [
                                    tid
                                    for _index, tids in entries
                                    for tid in tids
                                ]
                                recorder.record_envelope_deliver(
                                    ids,
                                    source_shard=peer,
                                    window=exchange_round,
                                )
                        # The eagerly shipped messages of this round are in
                        # the peers' hands now (their FINALs arrived after
                        # them); they stop counting as ours.
                        shipped_ahead = 0
                    else:
                        # The coordinator proved no shard staged or shipped
                        # anything for this round; no frame exists to wait
                        # for.  Guard the invariant -- silently skipping a
                        # round that does hold messages would diverge the
                        # trace.
                        if shipped_ahead or network.cross_staged():
                            raise RuntimeError(
                                f"shard {shard}: exchange-free step for round "
                                f"{exchange_round} but cross-shard messages "
                                "are pending"
                            )
                        incoming = ()
                        traced_frames = []
                    with span("deliver"):
                        network.deliver_window(window, incoming)
                    # Overlap: handler-emitted messages for the next round
                    # are already serialized bytes -- ship them while peers
                    # are still delivering.
                    with span("exchange.eager"):
                        shipped_ahead = ship(exchange_round + 1)
                    step_span.set_ops(1)
                if recorder is not None and traced_frames:
                    # One run-level marker per round that moved sampled
                    # records; renders as a window-wide span in Perfetto.
                    recorder.record_exchange_round(
                        window,
                        exchange_round,
                        transport.exchange_bytes - bytes_before,
                    )
                drain_phases()
                conn.send(("ok", pending(), cross_pending()))
            elif op == "add_leaf":
                _, root, identifier, leaf_seed, bootstrap = command
                with span("shard.add_leaf", ops=1):
                    network.begin_root(root)
                    leaf = SaladLeaf(
                        identifier,
                        network,
                        target_redundancy=config.target_redundancy,
                        dimensions=config.dimensions,
                        damping=config.damping,
                        database_capacity=config.database_capacity,
                        notify_limit=config.notify_limit,
                        rng=random.Random(leaf_seed),
                        reference_routing=config.reference_routing,
                        database=database_for(identifier),
                        detailed_metrics=resolve_detailed_metrics(
                            config.detailed_metrics
                        ),
                        reference_width=config.reference_width,
                        deferred_width_recalc=config.deferred_width_recalc,
                    )
                    leaves[identifier] = leaf
                    leaf.initiate_join(bootstrap)
                    # Driver-command sends belong to the next window; ship
                    # them now so the step's rendezvous finds them staged.
                    shipped_ahead += ship(exchange_round + 1)
                drain_phases()
                conn.send(("ok", pending(), cross_pending()))
            elif op == "insert":
                with span("shard.insert") as insert_span:
                    inserted = 0
                    for root, leaf_id, records in command[1]:
                        network.begin_root(root)
                        inserted += leaves[leaf_id].insert_records(records)
                    insert_span.set_ops(inserted)
                    shipped_ahead += ship(exchange_round + 1)
                drain_phases()
                conn.send(("ok", pending(), cross_pending()))
            elif op == "depart":
                _, root, leaf_id = command
                with span("shard.depart", ops=1):
                    network.begin_root(root)
                    leaves[leaf_id].depart_cleanly()
                    shipped_ahead += ship(exchange_round + 1)
                drain_phases()
                conn.send(("ok", pending(), cross_pending()))
            elif op == "fail":
                with span("shard.fail", ops=len(command[1])):
                    for leaf_id in command[1]:
                        leaves[leaf_id].fail()
                drain_phases()
                conn.send(("ok", pending(), cross_pending()))
            elif op == "set_loss":
                network.loss_probability = command[1]
                conn.send(("ok",))
            elif op == "flush":
                recorder = _tracing.ACTIVE
                with span("shard.flush"):
                    for leaf in leaves.values():
                        if leaf.alive:
                            leaf.database.flush()
                            if recorder is not None:
                                recorder.record_flush(leaf.identifier)
                drain_phases()
                conn.send(("ok",))
            elif op == "stats":
                leaf_stats = {
                    identifier: (leaf.alive, leaf.table_size, len(leaf.database), leaf.width)
                    for identifier, leaf in leaves.items()
                }
                traffic = {
                    identifier: (
                        t.sent,
                        t.received,
                        t.dropped_to,
                        dict(t.by_kind_sent),
                        dict(t.by_kind_received),
                    )
                    for identifier, t in network.traffic.items()
                }
                counters = (
                    network.messages_sent,
                    network.messages_delivered,
                    network.messages_dropped,
                )
                conn.send(("ok", leaf_stats, traffic, counters))
            elif op == "matches":
                conn.send(
                    ("ok", {i: list(leaf.matches) for i, leaf in leaves.items() if leaf.matches})
                )
            elif op == "records":
                dump = {
                    identifier: [
                        (record.fingerprint, record.location)
                        for record in leaf.database.records()
                    ]
                    for identifier, leaf in leaves.items()
                }
                conn.send(("ok", dump))
            elif op == "metrics":
                registry = MetricsRegistry()
                harvest_salad_metrics(
                    registry, leaves.values(), network, config.dimensions
                )
                transport.exchange_bytes_received, transport.frames_received = (
                    inbox.snapshot()
                )
                transport.pickled_messages = sum(
                    encoder.pickled_total
                    for encoder in network._outbound.values()
                )
                harvest_shard_transport_metrics(registry, transport)
                harvest_trace_metrics(registry)
                if tracer is not None:
                    tracer.feed_registry(registry, leaves, config.dimensions)
                drain_phases()
                # Serialization happens inside EnvelopeEncoder, outside any
                # span (during handlers and ship calls); fold the accrued
                # time into the phase tree as a synthetic root span, delta
                # since the last harvest so repeat harvests never
                # double-count.
                encode_seconds = sum(
                    e.encode_seconds for e in network._outbound.values()
                )
                encoded = sum(
                    e.messages_total for e in network._outbound.values()
                )
                if (
                    encode_seconds > reported_encode_seconds
                    or encoded > reported_encoded
                ):
                    serialize = Span(
                        "exchange.serialize", ops=encoded - reported_encoded
                    )
                    serialize.seconds = encode_seconds - reported_encode_seconds
                    aggregate_phases([serialize], phase_agg)
                    reported_encode_seconds = encode_seconds
                    reported_encoded = encoded
                phases = [
                    phase_agg[name].to_dict() for name in sorted(phase_agg)
                ]
                conn.send(
                    ("ok", registry.to_dict(), phases, _tracing.take_events())
                )
            elif op == "close_db":
                for leaf in leaves.values():
                    leaf.database.close()
                conn.send(("ok",))
            elif op == "stop":
                conn.send(("ok",))
                break
            else:
                conn.send(("error", f"unknown command {op!r}"))
                break
        except _PeerConnectionLost as exc:
            # A peer's process died: tell the coordinator *which* shard is
            # gone (it maps this to ShardWorkerDied) instead of dressing a
            # neighbour's death up as our own failure.
            try:
                conn.send(("peer_lost", exc.peer, exc.window))
            except Exception:
                pass
            break
        except BaseException:
            try:
                conn.send(("error", traceback.format_exc()))
            except Exception:
                pass
            break
    inbox.close()
    conn.close()


@dataclass(frozen=True)
class ShardLeafRef:
    """What :meth:`ShardedSimulation.add_leaf` returns: the leaf lives in a
    worker process, so callers get its identifier and owning shard, not the
    object (matching the only attribute drivers use, ``.identifier``)."""

    identifier: int
    shard: int


class ShardedSimulation:
    """Coordinator for a sub-cube sharded SALAD; API-compatible with
    :class:`Salad` for everything the experiment drivers use.

    The coordinator holds no leaves.  It replicates the single-process
    engine's master-RNG consumption sequence exactly (network-seed draw,
    identifier draws, per-leaf seeds, bootstrap samples -- all of whose
    consumption depends only on values the coordinator knows), assigns each
    driver command a global root sequence number for delivery ordering, and
    drives the per-window barrier until quiescence.
    """

    def __init__(self, config: SaladConfig, workers: Optional[int] = None):
        resolved = resolve_shard_workers(
            config.shard_workers if workers is None else workers
        )
        if resolved < 2:
            raise ShardingUnavailable(
                f"sharding needs >= 2 workers (resolved: {resolved})"
            )
        if multiprocessing.current_process().daemon:
            # Pool workers (e.g. a per-Lambda sweep fan-out) cannot spawn
            # children; degrade exactly as ParallelMap does.
            raise ShardingUnavailable("daemonic process cannot spawn shard workers")
        # The barrier protocol advances every shard by ONE latency window per
        # step: it is sound exactly when all in-flight messages of a window
        # share one delivery tick.  A uniform topology (every reachable pair
        # the same delay) satisfies that -- the window is the uniform delay.
        # Mixed latency classes do not: a rack message sent in window w and
        # a wan message sent in window w-9 would both deliver in window w+1,
        # and the hierarchical sort key alone cannot interleave them in
        # single-process order (keys carry no send window).  Refuse loudly
        # rather than silently mis-order; make_salad degrades to the
        # single-process engine, which handles any topology.
        if config.topology is not None and not config.topology.is_uniform():
            classes = ", ".join(
                f"{cls.name}={cls.latency_ticks}t"
                for cls in config.topology.reachable_classes()
            )
            raise ShardingUnavailable(
                f"topology {config.topology.describe()} has multiple latency "
                f"classes ({classes}); the one-window barrier cannot align "
                "mixed per-link delays"
            )
        # Pin the session-default trace/metrics flags into the config the
        # workers receive: set_trace_invariants / set_detailed_metrics
        # state lives in this process only.
        config = replace(
            config,
            trace_invariants=resolve_trace_invariants(config.trace_invariants),
            detailed_metrics=resolve_detailed_metrics(config.detailed_metrics),
            envelope_codec=resolve_envelope_codec(config.envelope_codec),
            trace_sample_rate=resolve_trace_sample_rate(config.trace_sample_rate),
        )
        self.config = config
        self.shards = resolved
        self._mask = resolved - 1
        self._rng = random.Random(config.seed)
        # Mirrors Salad.__init__'s draw for the network rng seed; the value
        # seeds the per-shard loss substreams.
        loss_master = self._rng.getrandbits(64)
        self.now = 0.0
        # Uniform-topology window clock: the single-process engine stamps
        # windows as ``tick * quantum`` (one multiplication), so the
        # coordinator tracks the integer tick and multiplies too -- the
        # flat-fabric ``now += latency`` accumulation would drift by ulps
        # against it for non-dyadic quanta.
        if config.topology is not None:
            self._window_ticks: Optional[int] = config.topology.uniform_ticks()
            self._quantum = config.topology.quantum
        else:
            self._window_ticks = None
            self._quantum = 0.0
        self._tick = 0
        self._root = 0
        self._order: List[int] = []  # every leaf ever created, creation order
        self._alive: Dict[int, bool] = {}
        # Alive identifiers in creation order, maintained incrementally (the
        # per-join rescan of _order is O(L^2) over a flagship-scale build).
        # The coordinator sees every liveness flip (depart/crash ops), so a
        # simple invalidate-on-death suffices.
        self._alive_list: Optional[List[int]] = None
        #: Per-shard folded span trees from the latest collect_metrics call
        #: (list of span dicts per shard, shard order).
        self.worker_phases: List[List[dict]] = []
        #: Causal-trace events drained from the workers, accumulated across
        #: collect_metrics calls (each drain empties the workers' buffers).
        self.trace_events: List[dict] = []
        self._buffered = [0] * resolved
        #: Per-shard cross-shard backlog (staged for peers or already
        #: shipped eagerly) from each worker's latest reply.  When the sum
        #: is zero, no frame can exist for the next exchange round, so the
        #: step broadcast tells workers to skip the rendezvous entirely --
        #: intra-cell replication traffic never crosses shards, so many
        #: settling windows are exchange-free.
        self._cross = [0] * resolved
        self._procs: List[Any] = []
        self._conns: List[Any] = []
        try:
            context = multiprocessing.get_context(
                "fork" if "fork" in multiprocessing.get_all_start_methods() else None
            )
            # Full pipe mesh between workers for the XOR-schedule exchange.
            mesh: Dict[int, Dict[int, Any]] = {s: {} for s in range(resolved)}
            for a in range(resolved):
                for b in range(a + 1, resolved):
                    end_a, end_b = context.Pipe(duplex=True)
                    mesh[a][b] = end_a
                    mesh[b][a] = end_b
            for shard in range(resolved):
                parent_end, child_end = context.Pipe(duplex=True)
                process = context.Process(
                    target=_shard_worker_main,
                    args=(
                        config,
                        shard,
                        resolved,
                        f"{loss_master}/loss/{shard}",
                        child_end,
                        mesh[shard],
                    ),
                    daemon=True,
                )
                process.start()
                self._procs.append(process)
                self._conns.append(parent_end)
                child_end.close()
            for ends in mesh.values():
                for end in ends.values():
                    end.close()
        except (OSError, ValueError, ImportError, AssertionError) as exc:
            self.close()
            raise ShardingUnavailable(f"cannot start shard workers: {exc}") from exc

    # ------------------------------------------------------------------
    # worker protocol
    # ------------------------------------------------------------------

    #: How often the coordinator re-checks worker liveness while awaiting
    #: a reply.  A dead worker can never reply, so without this poll a
    #: crashed shard would hang the barrier forever.
    _LIVENESS_POLL_SECONDS = 0.1

    def _dead_worker(self) -> Optional[int]:
        for shard, proc in enumerate(self._procs):
            if not proc.is_alive():
                return shard
        return None

    def _reply(self, shard: int) -> tuple:
        conn = self._conns[shard]
        while True:
            try:
                if conn.poll(self._LIVENESS_POLL_SECONDS):
                    break
            except (OSError, EOFError):
                break  # surfaced as EOFError by the recv below
            # Any dead worker stalls every barrier (peers wait on its
            # frames), so check them all, not just the awaited shard.
            dead = self._dead_worker()
            if dead is not None and not conn.poll(0):
                self.close()
                raise ShardWorkerDied(dead, self.now)
        try:
            reply = conn.recv()
        except EOFError:
            self.close()
            raise ShardWorkerDied(shard, self.now) from None
        if reply[0] == "peer_lost":
            # The worker detected a dead peer via pipe EOF; the *peer* is
            # the failure, this worker was the messenger.
            peer = reply[1]
            self.close()
            raise ShardWorkerDied(peer, self.now)
        if reply[0] == "error":
            self.close()
            raise RuntimeError(f"shard {shard} worker failed:\n{reply[1]}")
        return reply

    def _send_command(self, shard: int, command: tuple) -> None:
        try:
            self._conns[shard].send(command)
        except (BrokenPipeError, OSError):
            self.close()
            raise ShardWorkerDied(shard, self.now) from None

    def _request(self, shard: int, command: tuple) -> tuple:
        self._send_command(shard, command)
        return self._reply(shard)

    def _broadcast(self, command: tuple) -> List[tuple]:
        for shard in range(self.shards):
            self._send_command(shard, command)
        return [self._reply(shard) for shard in range(self.shards)]

    def _next_root(self) -> int:
        root = self._root
        self._root += 1
        return root

    # ------------------------------------------------------------------
    # membership (RNG consumption mirrors Salad exactly -- see class doc)
    # ------------------------------------------------------------------

    def _fresh_identifier(self) -> int:
        while True:
            identifier = self._rng.getrandbits(IDENTIFIER_BITS)
            if identifier not in self._alive:
                return identifier

    def add_leaf(
        self,
        identifier: Optional[int] = None,
        settle: bool = True,
    ) -> ShardLeafRef:
        """Create a leaf in its owner shard and join it to the SALAD."""
        # Same draw order as Salad.add_leaf: alive snapshot, identifier,
        # leaf seed, then the bootstrap sample (whose rng consumption
        # depends only on the population length, so sampling identifiers
        # here selects exactly the leaves Salad's object sample would).
        alive_ids = self._alive_ids_cached()
        if identifier is None:
            identifier = self._fresh_identifier()
        elif identifier in self._alive:
            raise ValueError(f"leaf {identifier:#x} already exists")
        leaf_seed = self._rng.getrandbits(64)
        bootstrap: Tuple[int, ...] = ()
        if alive_ids:
            count = min(self.config.bootstrap_count, len(alive_ids))
            bootstrap = tuple(self._rng.sample(alive_ids, count))
        shard = identifier & self._mask
        reply = self._request(
            shard, ("add_leaf", self._next_root(), identifier, leaf_seed, bootstrap)
        )
        self._buffered[shard] = reply[1]
        self._cross[shard] = reply[2]
        self._order.append(identifier)
        self._alive[identifier] = True
        # The pre-join snapshot plus the newcomer is the new alive list
        # (creation order); extend it instead of rescanning _order.
        alive_ids.append(identifier)
        self._alive_list = alive_ids
        if settle:
            self.run()
        return ShardLeafRef(identifier=identifier, shard=shard)

    def build(self, count: int, settle_each: bool = True) -> None:
        """Grow to *count* live leaves by incremental joins (cf. Salad.build)."""
        while len(self._alive_ids_cached()) < count:
            self.add_leaf(settle=settle_each)
        if not settle_each:
            self.run()

    def depart_leaf(self, identifier: int, settle: bool = True) -> None:
        """Cleanly depart one leaf (section 4.5)."""
        if identifier not in self._alive:
            raise KeyError(f"no such leaf: {identifier:#x}")
        shard = identifier & self._mask
        reply = self._request(shard, ("depart", self._next_root(), identifier))
        self._buffered[shard] = reply[1]
        self._cross[shard] = reply[2]
        self._alive[identifier] = False
        self._alive_list = None
        if settle:
            self.run()

    def _alive_ids_cached(self) -> List[int]:
        """Alive identifiers, creation order; rebuilt only after deaths.

        Returns the cache itself -- callers other than add_leaf must not
        mutate it (add_leaf appends the newcomer and reinstalls).
        """
        ids = self._alive_list
        if ids is None:
            ids = self._alive_list = [i for i in self._order if self._alive[i]]
        return ids

    def alive_count(self) -> int:
        return len(self._alive_ids_cached())

    def alive_identifiers(self) -> List[int]:
        return list(self._alive_ids_cached())

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------

    def set_loss_probability(self, probability: float) -> None:
        """Fig. 8 duty-cycle loss (per-shard substreams; see module doc)."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"loss probability must be in [0,1]: {probability}")
        self._broadcast(("set_loss", probability))

    def crash_fraction(self, fraction: float, rng: random.Random) -> int:
        """Permanently crash an exact fraction of leaves; returns the count.

        RNG consumption mirrors :func:`repro.sim.failure.fail_exact_fraction`
        over the same creation-ordered population, so crashes hit the same
        identifiers as the single-process engine under the same rng.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"failure fraction must be in [0,1]: {fraction}")
        count = round(len(self._order) * fraction)
        chosen = rng.sample(list(self._order), count)
        per_shard: Dict[int, List[int]] = {}
        for identifier in chosen:
            per_shard.setdefault(identifier & self._mask, []).append(identifier)
            self._alive[identifier] = False
        self._alive_list = None
        for shard, ids in per_shard.items():
            self._send_command(shard, ("fail", ids))
        for shard in per_shard:
            reply = self._reply(shard)
            self._buffered[shard] = reply[1]
            self._cross[shard] = reply[2]
        return len(chosen)

    # ------------------------------------------------------------------
    # records
    # ------------------------------------------------------------------

    def insert_records(
        self,
        records_by_leaf: Dict[int, Iterable[SaladRecord]],
        settle: bool = True,
    ) -> int:
        """Each leaf inserts its own records (Fig. 4); returns count inserted.

        Commands are batched per shard (one pipe round-trip each); the root
        sequence numbers assigned here preserve the single-process send
        order across the batches.
        """
        per_shard: Dict[int, List[tuple]] = {}
        inserted = 0
        for leaf_id, records in records_by_leaf.items():
            if leaf_id not in self._alive:
                raise KeyError(f"no such leaf: {leaf_id:#x}")
            if not self._alive[leaf_id]:
                continue
            batch = list(records)
            per_shard.setdefault(leaf_id & self._mask, []).append(
                (self._next_root(), leaf_id, batch)
            )
            inserted += len(batch)
        for shard, batches in per_shard.items():
            self._send_command(shard, ("insert", batches))
        for shard in per_shard:
            reply = self._reply(shard)
            self._buffered[shard] = reply[1]
            self._cross[shard] = reply[2]
        if settle:
            self.run()
            self._broadcast(("flush",))
        return inserted

    def collected_matches(self) -> List[Tuple[int, MatchPayload]]:
        """All duplicate notifications, in the single-process engine's order."""
        merged: Dict[int, List[MatchPayload]] = {}
        for reply in self._broadcast(("matches",)):
            merged.update(reply[1])
        return [
            (identifier, match)
            for identifier in self._order
            for match in merged.get(identifier, ())
        ]

    def stored_records(self) -> Dict[int, List[tuple]]:
        """Per-leaf ``(fingerprint, location)`` dumps (golden-trace identity)."""
        merged: Dict[int, List[tuple]] = {}
        for reply in self._broadcast(("records",)):
            merged.update(reply[1])
        return {identifier: merged[identifier] for identifier in self._order}

    # ------------------------------------------------------------------
    # settling
    # ------------------------------------------------------------------

    def run(self) -> int:
        """Advance windows until every shard is quiescent; returns windows run.

        Window times mirror the single-process engine's float operations
        exactly: repeated ``+= latency`` on the flat fabric (the scheduler
        accumulates the same way) and ``tick * quantum`` under a uniform
        topology (the topology network stamps windows the same way) -- so
        virtual timestamps are bit-identical between engines either way.
        """
        windows = 0
        while any(self._buffered):
            if self._window_ticks is not None:
                self._tick += self._window_ticks
                self.now = self._tick * self._quantum
            else:
                self.now += self.config.latency
            # Exchange-free windows (no shard staged or shipped anything
            # cross-shard) skip the FINAL-frame rendezvous outright.
            replies = self._broadcast(("step", self.now, any(self._cross)))
            self._buffered = [reply[1] for reply in replies]
            self._cross = [reply[2] for reply in replies]
            windows += 1
        return windows

    # ------------------------------------------------------------------
    # measurements (same semantics and ordering as Salad's)
    # ------------------------------------------------------------------

    def _gather_stats(self):
        leaf_stats: Dict[int, tuple] = {}
        traffic: Dict[int, list] = {}
        sent = delivered = dropped = 0
        for reply in self._broadcast(("stats",)):
            _, shard_leaves, shard_traffic, counters = reply
            leaf_stats.update(shard_leaves)
            for identifier, (s, r, d, by_sent, by_recv) in shard_traffic.items():
                agg = traffic.get(identifier)
                if agg is None:
                    traffic[identifier] = [s, r, d, dict(by_sent), dict(by_recv)]
                else:
                    agg[0] += s
                    agg[1] += r
                    agg[2] += d
                    for kind, n in by_sent.items():
                        agg[3][kind] = agg[3].get(kind, 0) + n
                    for kind, n in by_recv.items():
                        agg[4][kind] = agg[4].get(kind, 0) + n
            sent += counters[0]
            delivered += counters[1]
            dropped += counters[2]
        return leaf_stats, traffic, (sent, delivered, dropped)

    def _ordered(self, leaf_stats, alive_only: bool) -> List[tuple]:
        return [
            leaf_stats[i]
            for i in self._order
            if not alive_only or leaf_stats[i][0]
        ]

    def leaf_table_sizes(self, alive_only: bool = True) -> List[int]:
        leaf_stats, _, _ = self._gather_stats()
        return [stats[1] for stats in self._ordered(leaf_stats, alive_only)]

    def database_sizes(self, alive_only: bool = True) -> List[int]:
        leaf_stats, _, _ = self._gather_stats()
        return [stats[2] for stats in self._ordered(leaf_stats, alive_only)]

    def message_totals(self, alive_only: bool = False) -> List[int]:
        """Per-machine messages sent plus received, summed across shards."""
        leaf_stats, traffic, _ = self._gather_stats()
        out = []
        for identifier in self._order:
            if alive_only and not leaf_stats[identifier][0]:
                continue
            entry = traffic.get(identifier)
            out.append(entry[0] + entry[1] if entry else 0)
        return out

    def width_distribution(self) -> Dict[int, int]:
        leaf_stats, _, _ = self._gather_stats()
        out: Dict[int, int] = {}
        for stats in self._ordered(leaf_stats, alive_only=True):
            out[stats[3]] = out.get(stats[3], 0) + 1
        return dict(sorted(out.items()))

    def total_stored_records(self) -> int:
        leaf_stats, _, _ = self._gather_stats()
        return sum(stats[2] for stats in self._ordered(leaf_stats, alive_only=True))

    def message_counters(self) -> Tuple[int, int, int]:
        """(sent, delivered, dropped) summed across shards."""
        _, _, counters = self._gather_stats()
        return counters

    def collect_metrics(self, registry) -> List[dict]:
        """Merge every worker's freshly harvested registry into *registry*.

        Each worker harvests its sub-cube into a registry of its own and
        ships the ``to_dict`` dump back; the merge (counters sum, gauges
        max, histograms bucket-wise) is order-independent and -- outside
        the sharded-only ``salad.sharded.*`` namespace -- bit-identical in
        counter totals to a single-process harvest of the same trace.
        Returns the per-shard dumps (shard order) for the RunReport's
        ``shards`` section; the workers' folded span trees land on
        :attr:`worker_phases` (same shard order), kept separate so the
        return shape every caller depends on stays a list of registry
        dumps.
        """
        replies = self._broadcast(("metrics",))
        shard_dumps = [reply[1] for reply in replies]
        self.worker_phases = [list(reply[2]) for reply in replies]
        for reply in replies:
            # Workers ship drained trace-event buffers as a 4th element;
            # accumulate (draining empties their side, so no double count).
            if len(reply) > 3 and reply[3]:
                self.trace_events.extend(reply[3])
        for dump in shard_dumps:
            registry.merge_dict(dump)
        return shard_dumps

    def take_trace_events(self) -> List[dict]:
        """Drain the accumulated worker trace events (once each)."""
        events, self.trace_events = self.trace_events, []
        return events

    def __len__(self) -> int:
        return len(self._order)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close_databases(self) -> None:
        """Flush and close every leaf's record store (durable backends)."""
        self._broadcast(("close_db",))

    def shutdown(self) -> None:
        """Tear down worker processes (engine-neutral facade method)."""
        self.close()

    def close(self) -> None:
        """Stop workers and release pipes; idempotent and safe mid-init."""
        # Undrained worker trace events survive teardown in the process-wide
        # orphan buffer -- a driver that only calls tracing.take_events()
        # after the run (the experiment runner) still sees them.
        if getattr(self, "trace_events", None):
            _tracing.adopt_events(self.take_trace_events())
        procs, conns = self._procs, self._conns
        self._procs, self._conns = [], []
        for conn in conns:
            try:
                conn.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in procs:
            proc.join(timeout=5)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1)

    def __enter__(self) -> "ShardedSimulation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass


def make_salad(config: SaladConfig, network=None, workers: Optional[int] = None):
    """Engine factory: sharded when requested and possible, else Salad.

    Follows :mod:`repro.perf.parallel`'s degradation rules: a resolved
    worker count of 1 and an explicit *network* (single-process by
    definition) silently select the single-process engine; an environmental
    failure to start workers falls back to it too, but with a
    :class:`RuntimeWarning` naming the worker count that was requested --
    the run is observably identical on deterministic workloads, just not
    parallel, and a silent fallback would quietly eat the speedup.
    """
    resolved = resolve_shard_workers(
        config.shard_workers if workers is None else workers
    )
    if network is not None or resolved < 2:
        return Salad(config, network=network)
    try:
        return ShardedSimulation(config, workers=resolved)
    except ShardingUnavailable as exc:
        warnings.warn(
            f"sharding unavailable ({exc}); running single-process instead "
            f"of {resolved} shard workers",
            RuntimeWarning,
            stacklevel=2,
        )
        return Salad(config)
