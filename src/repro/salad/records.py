"""SALAD fingerprint records (paper section 4.1).

A record is a ``<key, value>`` pair where the key is a file's fingerprint
(size prepended to the 20-byte content hash) and the value is the identifier
of the machine where the file resides.  Records are routed and stored by the
cell-ID of their fingerprint; the cell-ID bits come from the hash portion,
which is uniformly distributed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fingerprint import Fingerprint


@dataclass(frozen=True)
class SaladRecord:
    """A `(fingerprint, location)` record."""

    fingerprint: Fingerprint
    location: int  # machine identifier of the file's host

    def __post_init__(self) -> None:
        # The routing id is consulted at every hop; precompute it so hot
        # paths read a plain attribute (``_rid``) instead of re-deriving the
        # integer from digest bytes.  object.__setattr__ sidesteps the
        # frozen guard; equality still compares only the declared fields.
        object.__setattr__(self, "_rid", self.fingerprint.hash_as_int())

    @property
    def routing_id(self) -> int:
        """The integer whose low bits form this record's cell-ID.

        Cell-IDs take the *least significant* W bits of an identifier
        (Eq. 7); for a fingerprint those are the low bits of the content
        hash, which are cryptographically uniform.  (The size prefix sits in
        the most significant bytes and never reaches the cell-ID.)
        """
        return self._rid

    def sort_key(self) -> bytes:
        """Total order used by the Fig. 13 eviction policy.

        "the lowest fingerprint value (corresponding to the smallest file)":
        fingerprints order by their encoded bytes, size prefix first.
        """
        return self.fingerprint.to_bytes()

    def __repr__(self) -> str:
        return (
            f"SaladRecord(size={self.fingerprint.size}, "
            f"digest={self.fingerprint.content_digest.hex()[:8]}..., "
            f"location={self.location:#x})"
        )
