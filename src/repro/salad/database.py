"""Per-leaf record database with the Fig. 13 size-limit policy.

The database is associative on fingerprints: inserting a record returns all
already-stored records with the same fingerprint (those are the duplicate
matches that trigger notifications in Fig. 4).

Fig. 13's experiment bounds the database size: "When a machine receives a
record that it should store, if its database size limit has been reached, it
discards a record in the database with the lowest fingerprint value
(corresponding to the smallest file) and replaces it with the newly received
record.  If no record in the database has a lower fingerprint value than the
new record, the machine discards the new record."

Eviction uses a lazy min-heap over fingerprint sort keys, so inserts stay
O(log n) amortized even under heavy eviction churn.  Removals leave stale
entries in the heap; a stale-ratio-triggered compaction rebuilds it from the
live records, so long churn runs keep the heap within a constant factor of
the live record count instead of growing without bound.

This is the in-memory implementation of the
:class:`repro.salad.storage.RecordStore` contract; the sqlite and WAL
backends in :mod:`repro.salad.storage` are observably identical (the shared
contract suite asserts it).  Matches are returned sorted by location and
:meth:`records` iterates in ``(sort_key, location)`` order -- the orderings
the contract fixes so every backend can reproduce them.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.fingerprint import Fingerprint
from repro.salad.records import SaladRecord
from repro.salad.storage import RecordStore


class RecordDatabase(RecordStore):
    """Associative in-memory store of `(fingerprint, location)` records."""

    #: Compact the lazy heap when it exceeds this many times the live record
    #: count (and the floor below, so small databases never bother).
    _HEAP_COMPACT_RATIO = 2
    _HEAP_COMPACT_FLOOR = 64

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be positive if set: {capacity}")
        self.capacity = capacity
        self._by_fingerprint: Dict[Fingerprint, Set[int]] = {}
        self._count = 0
        # Lazy min-heap of (sort_key, fingerprint, location); entries may be
        # stale if the record was already evicted/removed.  Only used when a
        # capacity is set (uncapped databases never evict).
        self._heap: List[Tuple[bytes, bytes, int]] = []
        self._fp_by_encoding: Dict[bytes, Fingerprint] = {}
        self.evictions = 0
        self.rejections = 0
        self.heap_compactions = 0

    def __len__(self) -> int:
        return self._count

    def __contains__(self, fingerprint: Fingerprint) -> bool:
        return fingerprint in self._by_fingerprint

    def locations(self, fingerprint: Fingerprint) -> Set[int]:
        """Machines known to hold a file with this fingerprint."""
        return set(self._by_fingerprint.get(fingerprint, ()))

    def has_location(self, fingerprint: Fingerprint, location: int) -> bool:
        """Whether this exact record is stored (no set copy; hot-path probe)."""
        locations = self._by_fingerprint.get(fingerprint)
        return locations is not None and location in locations

    def records(self) -> Iterator[SaladRecord]:
        for fingerprint in sorted(self._by_fingerprint, key=Fingerprint.to_bytes):
            for location in sorted(self._by_fingerprint[fingerprint]):
                yield SaladRecord(fingerprint=fingerprint, location=location)

    def _remove(self, fingerprint: Fingerprint, location: int) -> None:
        locations = self._by_fingerprint.get(fingerprint)
        if locations is None or location not in locations:
            return
        locations.discard(location)
        self._count -= 1
        if not locations:
            del self._by_fingerprint[fingerprint]
            self._fp_by_encoding.pop(fingerprint.to_bytes(), None)
        self._maybe_compact_heap()

    def _maybe_compact_heap(self) -> None:
        """Rebuild the heap from live records once stale entries dominate.

        Every live record of a capacity-bounded database has exactly one
        heap entry, so ``len(_heap) - _count`` is the stale count.  Popping
        (eviction) consumes entries; only removals strand them, so without
        this check a long join/depart churn run grows the heap without
        bound while the live count stays flat.
        """
        heap_len = len(self._heap)
        if heap_len <= self._HEAP_COMPACT_FLOOR:
            return
        if heap_len <= self._HEAP_COMPACT_RATIO * self._count:
            return
        self._heap = [
            (encoding, encoding, location)
            for encoding, fingerprint in self._fp_by_encoding.items()
            for location in self._by_fingerprint.get(fingerprint, ())
        ]
        heapq.heapify(self._heap)
        self.heap_compactions += 1

    def _pop_lowest(self) -> Optional[SaladRecord]:
        """Remove and return the stored record with the lowest fingerprint."""
        while self._heap:
            sort_key, fp_encoding, location = heapq.heappop(self._heap)
            fingerprint = self._fp_by_encoding.get(fp_encoding)
            if fingerprint is None:
                continue  # stale: every record of that fingerprint is gone
            locations = self._by_fingerprint.get(fingerprint)
            if locations is None or location not in locations:
                continue  # stale: this record was removed already
            self._remove(fingerprint, location)
            return SaladRecord(fingerprint=fingerprint, location=location)
        return None

    def _peek_lowest_key(self) -> Optional[bytes]:
        while self._heap:
            sort_key, fp_encoding, location = self._heap[0]
            fingerprint = self._fp_by_encoding.get(fp_encoding)
            if fingerprint is None:
                heapq.heappop(self._heap)
                continue
            locations = self._by_fingerprint.get(fingerprint)
            if locations is None or location not in locations:
                heapq.heappop(self._heap)
                continue
            return sort_key
        return None

    def insert(self, record: SaladRecord) -> Tuple[bool, List[SaladRecord]]:
        """Insert a record, applying the capacity policy.

        Returns ``(stored, matches)`` where *matches* are the records already
        present with the same fingerprint (computed before insertion, sorted
        by location, and regardless of whether the new record is stored -- a
        leaf that rejects a record for capacity can still report matches it
        knows about).
        """
        existing = self._by_fingerprint.get(record.fingerprint)
        if existing is None:
            matches: List[SaladRecord] = []
            if self.capacity is None:
                # Uncapped database (the common configuration): no eviction
                # can ever occur, so skip the heap and encoding-index
                # bookkeeping that exists only to serve the Fig. 13 policy.
                self._by_fingerprint[record.fingerprint] = {record.location}
                self._count += 1
                return True, matches
        else:
            matches = [
                SaladRecord(fingerprint=record.fingerprint, location=location)
                for location in sorted(existing)
            ]
            if record.location in existing:
                return False, matches  # duplicate record; nothing to do
            if self.capacity is None:
                existing.add(record.location)
                self._count += 1
                return True, matches

        if self.capacity is not None and self._count >= self.capacity:
            lowest_key = self._peek_lowest_key()
            if lowest_key is None or record.sort_key() <= lowest_key:
                # No stored record is lower than the new one: discard it.
                self.rejections += 1
                return False, matches
            self._pop_lowest()
            self.evictions += 1

        self._by_fingerprint.setdefault(record.fingerprint, set()).add(record.location)
        self._fp_by_encoding[record.fingerprint.to_bytes()] = record.fingerprint
        self._count += 1
        heapq.heappush(
            self._heap, (record.sort_key(), record.fingerprint.to_bytes(), record.location)
        )
        return True, matches

    def remove_location(self, location: int) -> int:
        """Drop every record pointing at *location* (a departed machine).

        Returns the number of records removed.
        """
        removed = 0
        for fingerprint in list(self._by_fingerprint):
            if location in self._by_fingerprint[fingerprint]:
                self._remove(fingerprint, location)
                removed += 1
        return removed

    @property
    def pending_records(self) -> int:
        """Everything is lost on a crash: memory stores have no durability."""
        return self._count
