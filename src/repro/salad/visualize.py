"""ASCII visualization of a two-dimensional SALAD.

Renders the Fig. 1 / Fig. 3 picture for a live system: the hypercube's
cells as a grid, each showing its leaf population (and optionally record
load), plus one leaf's-eye view marking its own cell, its vectors, and its
leaf-table coverage.  Used by ``examples/salad_map.py`` and handy when
debugging protocol changes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.salad.ids import coordinate, coordinate_width
from repro.salad.salad import Salad


def _grid_shape(width: int, dimensions: int) -> Tuple[int, int]:
    """Cells along axis 0 (columns) and axis 1 (rows) at this width."""
    if dimensions != 2:
        raise ValueError("the grid renderer draws two-dimensional SALADs only")
    cols = 1 << coordinate_width(width, 2, 0)
    rows = 1 << coordinate_width(width, 2, 1)
    return cols, rows


def _dominant_width(salad: Salad) -> int:
    distribution = salad.width_distribution()
    if not distribution:
        return 0
    return max(distribution, key=lambda w: distribution[w])


def cell_grid(salad: Salad, width: Optional[int] = None) -> str:
    """Grid of cells with leaf counts (rows: axis 1, columns: axis 0)."""
    width = _dominant_width(salad) if width is None else width
    cols, rows = _grid_shape(width, salad.config.dimensions)
    counts: Dict[Tuple[int, int], int] = {}
    for leaf in salad.alive_leaves():
        c0 = coordinate(leaf.identifier, width, 2, 0)
        c1 = coordinate(leaf.identifier, width, 2, 1)
        counts[(c0, c1)] = counts.get((c0, c1), 0) + 1

    lines = [f"SALAD cell grid at W={width}: {cols} x {rows} cells, "
             f"{len(salad.alive_leaves())} leaves"]
    header = "      " + " ".join(f"c0={c0}".rjust(5) for c0 in range(cols))
    lines.append(header)
    for c1 in range(rows):
        row = [f"c1={c1}".ljust(6)]
        for c0 in range(cols):
            row.append(f"{counts.get((c0, c1), 0):>5}")
        lines.append(" ".join(row))
    return "\n".join(lines)


def leaf_view(salad: Salad, leaf_id: int, width: Optional[int] = None) -> str:
    """One leaf's perspective (the Fig. 3 picture).

    Legend: ``#`` the leaf's own cell, ``|``/``-`` cells in its axis-0 /
    axis-1 vectors, ``+`` cells it has leaf-table entries in although
    off-vector (stale or width-skewed knowledge), ``.`` unknown cells.
    """
    leaf = salad.leaves[leaf_id]
    width = leaf.width if width is None else width
    cols, rows = _grid_shape(width, salad.config.dimensions)
    my_c0 = coordinate(leaf.identifier, width, 2, 0)
    my_c1 = coordinate(leaf.identifier, width, 2, 1)

    known_cells = set()
    for other in leaf.leaf_table:
        known_cells.add(
            (coordinate(other, width, 2, 0), coordinate(other, width, 2, 1))
        )

    lines = [
        f"leaf {leaf.identifier:#x} view at W={width} "
        f"(cell c0={my_c0}, c1={my_c1}; table={leaf.table_size})"
    ]
    for c1 in range(rows):
        row = []
        for c0 in range(cols):
            if (c0, c1) == (my_c0, my_c1):
                row.append("#")
            elif c0 == my_c0:
                row.append("|")
            elif c1 == my_c1:
                row.append("-")
            elif (c0, c1) in known_cells:
                row.append("+")
            else:
                row.append(".")
        lines.append(" ".join(row))
    coverage = sum(
        1
        for cell in known_cells
        if (cell[0] == my_c0 or cell[1] == my_c1) and cell != (my_c0, my_c1)
    )
    vector_cells = cols + rows - 2
    lines.append(
        f"vector coverage: table entries span {coverage}/{vector_cells} vector cells"
    )
    return "\n".join(lines)


def load_histogram(salad: Salad, bins: int = 10, bar_width: int = 40) -> str:
    """ASCII histogram of per-leaf record-database sizes."""
    sizes = salad.database_sizes()
    if not sizes or max(sizes) == 0:
        return "no records stored"
    low, high = min(sizes), max(sizes)
    span = max(1, high - low)
    counts = [0] * bins
    for size in sizes:
        index = min(bins - 1, (size - low) * bins // span)
        counts[index] += 1
    peak = max(counts)
    lines = [f"database sizes across {len(sizes)} leaves (records per leaf)"]
    for i, count in enumerate(counts):
        lo = low + i * span // bins
        hi = low + (i + 1) * span // bins
        bar = "#" * (count * bar_width // peak if peak else 0)
        lines.append(f"{lo:>6}-{hi:<6} {bar} {count}")
    return "\n".join(lines)
