"""Periodic SALAD maintenance (paper section 4.5).

"We employ the standard technique of sending periodic refresh messages
between leaves, and each leaf flushes timed-out entries in its leaf table."

:class:`RefreshDriver` schedules those periodic rounds on the simulation's
event loop: every *period*, each live leaf sends one refresh to every
leaf-table entry and flushes entries not heard from within *timeout*.
Crashed leaves stop answering, so their entries age out everywhere within
one timeout; recovered leaves re-introduce themselves with their next
refresh round (the leaf re-adds vector-aligned senders it had forgotten).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.salad.salad import Salad
from repro.sim.events import EventHandle


@dataclass
class RefreshStats:
    rounds: int = 0
    refreshes_sent: int = 0
    entries_flushed: int = 0


class RefreshDriver:
    """Drives periodic refresh rounds over every leaf of a SALAD."""

    def __init__(self, salad: Salad, period: float = 10.0, timeout: Optional[float] = None):
        if period <= 0:
            raise ValueError(f"refresh period must be positive: {period}")
        self.salad = salad
        self.period = period
        # The paper's standard technique: entries survive a few missed
        # rounds before being flushed.
        self.timeout = timeout if timeout is not None else 3.0 * period
        if self.timeout <= period:
            raise ValueError(
                f"timeout ({self.timeout}) must exceed the period ({period})"
            )
        self.stats = RefreshStats()
        self._handle: Optional[EventHandle] = None
        self._running = False

    def start(self) -> None:
        """Begin periodic rounds (idempotent).

        Staleness is measured from this moment: leaf-table entries acquired
        before refreshing began carry join-time timestamps, so they are
        re-stamped to now — a peer only ages out by missing rounds that were
        actually sent to it.
        """
        if self._running:
            return
        self._running = True
        now = self.salad.network.scheduler.now
        for leaf in self.salad.alive_leaves():
            for identifier in leaf.leaf_table:
                leaf.leaf_table[identifier] = max(leaf.leaf_table[identifier], now)
        self._schedule_next()

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _schedule_next(self) -> None:
        self._handle = self.salad.network.scheduler.schedule(self.period, self._round)

    def _round(self) -> None:
        if not self._running:
            return
        self.stats.rounds += 1
        for leaf in self.salad.alive_leaves():
            before = self.salad.network.messages_sent
            leaf.send_refreshes()
            self.stats.refreshes_sent += self.salad.network.messages_sent - before
            self.stats.entries_flushed += leaf.flush_stale_entries(self.timeout)
        self._schedule_next()

    def run_rounds(self, count: int) -> RefreshStats:
        """Convenience: run exactly *count* rounds to quiescence, then stop."""
        self.start()
        horizon = self.salad.network.scheduler.now + count * self.period + 1e-9
        self.salad.network.scheduler.run(until=horizon)
        self.stop()
        self.salad.network.run()
        return self.stats
