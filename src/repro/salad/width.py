"""Cell-ID width recalculation support (paper section 4.6, Fig. 6).

A leaf estimates the system size L from the size T of its own leaf table:
the expected fraction of all leaves that are vector-aligned with it (and
hence in its table) is the *known leaf ratio* r of Eq. 18,

    r = (sum_d 2^(W_d)  -  D + 1) / 2^W

so the leaf inverts ``T ~= r * L`` to get ``L = T / r``, then derives a
target width ``W^ = floor(lg(L / Lambda))`` (Eq. 6).  Decreases use an
attenuated target redundancy ``Lambda' = Lambda / (1 + xi)`` (Eq. 19) --
hysteresis that prevents W from oscillating when T hovers near a threshold.

The stateful parts of Fig. 6 (requesting newly vector-aligned leaves after a
fold, forgetting leaves after an unfold, the stability check before an
increment) live in :meth:`repro.salad.leaf.SaladLeaf._recalculate_width`;
this module holds the pure calculations.
"""

from __future__ import annotations

import math
from functools import lru_cache

from repro.salad.ids import coordinate_width


@lru_cache(maxsize=4096)
def known_leaf_ratio(width: int, dimensions: int) -> float:
    """Eq. 18: expected fraction of all leaves in a leaf's own leaf table.

    A leaf sees the leaves of ``sum_d 2^(W_d)`` cells along its D vectors;
    its own cell is counted once per axis, hence the ``- D + 1``.
    """
    visible_cells = (
        sum(1 << coordinate_width(width, dimensions, d) for d in range(dimensions))
        - dimensions
        + 1
    )
    return visible_cells / (1 << width)


def attenuated_redundancy(target_redundancy: float, damping: float) -> float:
    """Eq. 19: Lambda' = Lambda / (1 + xi)."""
    if damping < 0:
        raise ValueError(f"damping factor cannot be negative: {damping}")
    return target_redundancy / (1.0 + damping)


def target_width(estimated_size: float, redundancy: float) -> int:
    """Eq. 6 applied to an estimate: W^ = floor(lg(L / Lambda)), min 0."""
    if estimated_size <= 0:
        return 0
    ratio = estimated_size / redundancy
    if ratio < 1:
        return 0
    return int(math.floor(math.log2(ratio)))


def fold_axis(width: int, dimensions: int) -> int:
    """The axis along which decrementing W folds the hypercube in half.

    Decrementing W removes cell-ID bit ``W - 1``, which belongs to
    coordinate ``(W - 1) mod D`` (section 4.6).
    """
    if width < 1:
        raise ValueError("cannot fold a zero-width SALAD")
    return (width - 1) % dimensions


def estimate_system_size(table_size_with_self: int, width: int, dimensions: int) -> float:
    """Invert Eq. 18: L = T / r, with T counting the leaf itself."""
    r = known_leaf_ratio(width, dimensions)
    return table_size_with_self / r
