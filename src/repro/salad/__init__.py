"""SALAD: a Self-Arranging, Lossy, Associative Database (paper section 4).

SALAD stores `(fingerprint, location)` records for every file in the system,
partitioned statistically among all machines ("leaves") with no central
coordination.  Leaves and records share a cell-ID address space derived from
the low bits of their 20-byte identifiers; records are stored redundantly on
every leaf of the cell-aligned cell; cells form a D-dimensional hypercube
routed in at most D hops.

Module map:

- :mod:`repro.salad.ids` -- cell-IDs and coordinate extraction (Eqs. 6-10).
- :mod:`repro.salad.alignment` -- cell/vector/delta-dimensional alignment
  predicates (Eqs. 11, 12, 15).
- :mod:`repro.salad.records` -- fingerprint records.
- :mod:`repro.salad.database` -- per-leaf in-memory record store with the
  Fig. 13 size-limit eviction policy.
- :mod:`repro.salad.storage` -- the RecordStore backend contract plus the
  durable sqlite and append-log (WAL) implementations with crash recovery.
- :mod:`repro.salad.leaf` -- the leaf state machine (leaf table, record
  insertion per Fig. 4, join handling per Fig. 5, width recalc per Fig. 6).
- :mod:`repro.salad.width` -- the Fig. 6 cell-ID width procedure.
- :mod:`repro.salad.model` -- the paper's analytic formulas (Eqs. 5-20).
- :mod:`repro.salad.attack` -- the section 4.7 targeted-attack model.
- :mod:`repro.salad.salad` -- whole-system orchestration over the simulator.
"""

from repro.salad.ids import cell_id, cell_id_width, coordinate, coordinate_width, coordinates
from repro.salad.alignment import (
    cell_aligned,
    d_vector_aligned,
    delta_dimensionally_aligned,
    mismatching_dimensions,
    vector_aligned,
)
from repro.salad.database import RecordDatabase
from repro.salad.leaf import SaladLeaf
from repro.salad.records import SaladRecord
from repro.salad.salad import Salad, SaladConfig
from repro.salad.storage import (
    RecordStore,
    SqliteRecordStore,
    WalRecordStore,
    make_record_store,
    set_default_db_backend,
)

__all__ = [
    "RecordDatabase",
    "RecordStore",
    "SqliteRecordStore",
    "WalRecordStore",
    "make_record_store",
    "set_default_db_backend",
    "Salad",
    "SaladConfig",
    "SaladLeaf",
    "SaladRecord",
    "cell_aligned",
    "cell_id",
    "cell_id_width",
    "coordinate",
    "coordinate_width",
    "coordinates",
    "d_vector_aligned",
    "delta_dimensionally_aligned",
    "mismatching_dimensions",
    "vector_aligned",
]
