"""The paper's analytic model of SALAD behavior (Eqs. 5, 8, 13, 14, 17, 20).

These closed forms predict what the simulation should measure; tests and
benchmarks compare Monte-Carlo results against them:

- Eq. 5:  Lambda <= lambda < 2*Lambda (actual redundancy band)
- Eq. 8:  R = lambda * F / L (mean records per leaf)
- Eq. 13: T ~= D * lambda^(1-1/D) * L^(1/D) (mean leaf table size)
- Eq. 14: P_loss = 1 - (1 - e^-lambda)^D ~= D * e^-lambda
- Eq. 17: M = D * lambda^(1-1/D) * L^(1/D) (messages per join fan-out)
- Eq. 20: lambda' = lambda * (1 - m/L)^D (attacked redundancy)
"""

from __future__ import annotations

import math

from repro.salad.ids import cell_id_width, coordinate_width


def actual_redundancy(system_size: int, target_redundancy: float) -> float:
    """lambda = L / 2^W, the mean leaves per cell; satisfies Eq. 5."""
    width = cell_id_width(system_size, target_redundancy)
    return system_size / (1 << width)


def expected_records_per_leaf(
    system_size: int, file_count: int, target_redundancy: float
) -> float:
    """Eq. 8: R = lambda * F / L."""
    return actual_redundancy(system_size, target_redundancy) * file_count / system_size


def expected_leaf_table_size(
    system_size: int, target_redundancy: float, dimensions: int
) -> float:
    """Eq. 13 (exact form): T = D*lambda*(L/lambda)^(1/D) - D*lambda + lambda.

    The leaf's own cell is shared by all D vectors, hence the correction
    terms.  The approximation D * lambda^(1-1/D) * L^(1/D) holds for large L.
    """
    lam = actual_redundancy(system_size, target_redundancy)
    per_vector = lam * (system_size / lam) ** (1.0 / dimensions)
    return dimensions * per_vector - dimensions * lam + lam


def expected_leaf_table_size_exact_width(
    system_size: int, width: int, dimensions: int
) -> float:
    """Leaf table expectation for a *given* W (shows the Fig. 14 ripple).

    With lambda = L/2^W leaves per cell and axis-d vectors spanning 2^(W_d)
    cells, the expected table size (including self's cellmates) is
    ``lambda * (sum_d 2^(W_d) - D + 1)`` minus the leaf itself.
    """
    lam = system_size / (1 << width)
    cells_visible = (
        sum(1 << coordinate_width(width, dimensions, d) for d in range(dimensions))
        - dimensions
        + 1
    )
    return lam * cells_visible - 1


def loss_probability(target_redundancy: float, dimensions: int, system_size: int = 0) -> float:
    """Eq. 14: P_loss = 1 - (1 - e^-lambda)^D.

    If *system_size* is given, lambda is the actual redundancy at that size;
    otherwise lambda defaults to the target (the paper quotes e.g.
    "lambda = 3 and D = 2 gives P_loss ~= 10%").
    """
    lam = (
        actual_redundancy(system_size, target_redundancy)
        if system_size
        else target_redundancy
    )
    return 1.0 - (1.0 - math.exp(-lam)) ** dimensions


def join_message_count(system_size: int, target_redundancy: float, dimensions: int) -> float:
    """Eq. 17: M = D * lambda^(D-1)/D ... = D * lambda^(1-1/D) * L^(1/D).

    Messages forwarded per initially contacted leaf per join, asymptotically.
    """
    lam = actual_redundancy(system_size, target_redundancy)
    return dimensions * lam ** (1.0 - 1.0 / dimensions) * system_size ** (1.0 / dimensions)


def attacked_redundancy(
    base_redundancy: float, malicious_count: int, system_size: int, dimensions: int
) -> float:
    """Eq. 20: lambda' = lambda * (1 - m/L)^D.

    m sybil leaves vector-aligned with a victim inflate its system-size
    estimate, shrinking the effective redundancy of the victim's records.
    """
    if malicious_count < 0 or system_size <= 0:
        raise ValueError("need m >= 0 and L > 0")
    return base_redundancy * (1.0 - malicious_count / system_size) ** dimensions


def fingerprint_collision_probability(file_count: int) -> float:
    """Section 4.1: P(any same-size hash collision) ~= F^2 / 2^161 ~= F * 1e-24.

    (The paper writes it as F * F / (2^160 * 2); we keep their form.)
    """
    return file_count * file_count / (2.0**160 * 2.0)
