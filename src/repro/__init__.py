"""Reproduction of Douceur et al., "Reclaiming Space from Duplicate Files in
a Serverless Distributed File System" (ICDCS 2002 / MSR-TR-2002-30).

Public API tour:

- :mod:`repro.core` -- convergent encryption and file fingerprints.
- :mod:`repro.salad` -- the SALAD distributed fingerprint database.
- :mod:`repro.sim` -- the discrete-event simulation substrate.
- :mod:`repro.farsite` -- Farsite substrates: Single-Instance Store, file
  hosts, directory groups, replica placement and relocation.
- :mod:`repro.workload` -- synthetic file-system corpus generation.
- :mod:`repro.experiments` -- one module per paper figure (Figs. 7-15).
- :mod:`repro.analysis` -- space accounting, CDFs, report rendering.
"""

__version__ = "1.0.0"

from repro.core import (
    ConvergentCiphertext,
    Fingerprint,
    User,
    UserDirectory,
    convergent_decrypt,
    convergent_encrypt,
    fingerprint_of,
)

__all__ = [
    "ConvergentCiphertext",
    "Fingerprint",
    "User",
    "UserDirectory",
    "convergent_decrypt",
    "convergent_encrypt",
    "fingerprint_of",
    "__version__",
]
