"""The random-oracle model of paper section 3.1.

The convergent-encryption security proof is stated in the random-oracle
model: the hash H is a uniformly random function {0,1}^m -> {0,1}^n, and the
cipher E is a uniformly random keyed permutation family, all accessible to
the attacker *only* through oracle queries.  This module realizes those
oracles with lazy sampling so the theorem can be tested empirically
(:mod:`repro.core.security_model` builds attacker programs on top of them).

Lazy sampling is the standard technique: each oracle answers fresh queries
with uniformly random values and repeats itself on repeated queries, which is
distributionally identical to sampling the whole function up front.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple


class OracleQueryBudgetExceeded(Exception):
    """Raised when an attacker program exceeds its query budget."""


class RandomOracleHash:
    """A random function H: {0,1}^m -> {0,1}^n with query counting."""

    def __init__(self, output_bytes: int, rng: random.Random, budget: int = 2**62):
        self.output_bytes = output_bytes
        self._rng = rng
        self._table: Dict[bytes, bytes] = {}
        self.queries = 0
        self.budget = budget

    def query(self, message: bytes) -> bytes:
        self.queries += 1
        if self.queries > self.budget:
            raise OracleQueryBudgetExceeded("hash oracle budget exhausted")
        if message not in self._table:
            self._table[message] = bytes(
                self._rng.getrandbits(8) for _ in range(self.output_bytes)
            )
        return self._table[message]


class RandomOraclePermutation:
    """A random keyed permutation family E and its inverse, lazily sampled.

    For each key we maintain a partial injection plaintext -> ciphertext.
    Forward queries sample a fresh ciphertext uniformly from the unused
    codomain; inverse queries sample a fresh plaintext uniformly from the
    unused domain.  Over the message space {0,1}^(8*width) this is an exact
    lazy sampling of a uniform permutation (collisions with the used set are
    re-drawn).
    """

    def __init__(self, width_bytes: int, rng: random.Random, budget: int = 2**62):
        self.width_bytes = width_bytes
        self._rng = rng
        self._forward: Dict[Tuple[bytes, bytes], bytes] = {}
        self._inverse: Dict[Tuple[bytes, bytes], bytes] = {}
        self.queries = 0
        self.budget = budget

    def _count(self) -> None:
        self.queries += 1
        if self.queries > self.budget:
            raise OracleQueryBudgetExceeded("permutation oracle budget exhausted")

    def _fresh(self, used: Dict[Tuple[bytes, bytes], bytes], key: bytes) -> bytes:
        while True:
            candidate = bytes(self._rng.getrandbits(8) for _ in range(self.width_bytes))
            if (key, candidate) not in used:
                return candidate

    def encrypt(self, key: bytes, plaintext: bytes) -> bytes:
        """Query E_k(p)."""
        self._count()
        slot = (key, plaintext)
        if slot not in self._forward:
            ciphertext = self._fresh(self._inverse, key)
            self._forward[slot] = ciphertext
            self._inverse[(key, ciphertext)] = plaintext
        return self._forward[slot]

    def decrypt(self, key: bytes, ciphertext: bytes) -> bytes:
        """Query E^-1_k(c)."""
        self._count()
        slot = (key, ciphertext)
        if slot not in self._inverse:
            plaintext = self._fresh(self._forward, key)
            self._inverse[slot] = plaintext
            self._forward[(key, plaintext)] = ciphertext
        return self._inverse[slot]
