"""FIPS-197 AES block cipher, implemented from scratch in pure Python.

Convergent encryption (paper section 3) needs a symmetric cipher ``E`` keyed
by the hash of the plaintext.  The security proof models ``E`` as a random
permutation family; any standard block cipher realizes it.  We implement AES
(128/192/256-bit keys) directly from the FIPS-197 specification -- key
expansion, SubBytes/ShiftRows/MixColumns rounds, and their inverses -- so the
repository has no external crypto dependency.

Two encryption paths share the key schedule:

- a *scalar reference* path (:meth:`AES.encrypt_block_scalar`) that applies
  SubBytes/ShiftRows/MixColumns byte by byte, straight from the spec; and
- a *T-table* fast path (:meth:`AES.encrypt_block`, the default) that fuses
  the three key-agnostic round functions into four precomputed 256-entry
  tables of 32-bit words, so each round costs 16 table lookups and 20 XORs
  instead of ~60 byte operations.  The tables are derived from the same
  S-box and GF(2^8) arithmetic as the scalar path, and the property suite
  (``tests/property/test_prop_bulk_crypto.py``) asserts byte-identical
  output.

Verified against the FIPS-197 appendix test vectors in
``tests/crypto/test_aes.py``.
"""

from __future__ import annotations

from typing import List

BLOCK_SIZE = 16

# --- S-box generation -------------------------------------------------------
#
# Rather than hard-coding 256 magic numbers, derive the S-box from its
# definition: multiplicative inverse in GF(2^8) followed by the affine
# transform (FIPS-197 section 5.1.1).


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sbox() -> List[int]:
    # Compute inverses via exhaustive search once; 256*256 is trivial.
    inverse = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if _gf_mul(x, y) == 1:
                inverse[x] = y
                break
    sbox = [0] * 256
    for x in range(256):
        b = inverse[x]
        # Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
        value = 0x63
        for shift in range(5):
            value ^= ((b << shift) | (b >> (8 - shift))) & 0xFF
        sbox[x] = value
    return sbox


_SBOX = _build_sbox()
_INV_SBOX = [0] * 256
for _i, _v in enumerate(_SBOX):
    _INV_SBOX[_v] = _i

_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_gf_mul(_RCON[-1], 0x02))

# Precomputed GF multiplication tables for MixColumns and its inverse.
_MUL2 = [_gf_mul(x, 2) for x in range(256)]
_MUL3 = [_gf_mul(x, 3) for x in range(256)]
_MUL9 = [_gf_mul(x, 9) for x in range(256)]
_MUL11 = [_gf_mul(x, 11) for x in range(256)]
_MUL13 = [_gf_mul(x, 13) for x in range(256)]
_MUL14 = [_gf_mul(x, 14) for x in range(256)]

_ROUNDS_BY_KEY_BYTES = {16: 10, 24: 12, 32: 14}

# --- T-tables ---------------------------------------------------------------
#
# SubBytes, ShiftRows, and MixColumns are all key-agnostic, so their
# composition over one input byte is a pure function of that byte: a 256-entry
# table of 32-bit column contributions.  Four tables (one per row position)
# reduce a full round to 16 lookups and 20 XORs.  Each entry packs the
# MixColumns column (b0, b1, b2, b3) produced by S[x] big-endian, matching the
# big-endian word packing of the state columns.


def _build_t_tables() -> List[List[int]]:
    t0 = []
    for x in range(256):
        s = _SBOX[x]
        t0.append((_MUL2[s] << 24) | (s << 16) | (s << 8) | _MUL3[s])
    # T1..T3 are byte rotations of T0 (the contribution pattern shifts with
    # the row position).
    t1 = [((w >> 8) | ((w & 0xFF) << 24)) & 0xFFFFFFFF for w in t0]
    t2 = [((w >> 8) | ((w & 0xFF) << 24)) & 0xFFFFFFFF for w in t1]
    t3 = [((w >> 8) | ((w & 0xFF) << 24)) & 0xFFFFFFFF for w in t2]
    return [t0, t1, t2, t3]


_T0, _T1, _T2, _T3 = _build_t_tables()


class AES:
    """The AES block cipher over 16-byte blocks.

    >>> key = bytes(range(16))
    >>> cipher = AES(key)
    >>> block = b"sixteen byte msg"
    >>> cipher.decrypt_block(cipher.encrypt_block(block)) == block
    True
    """

    def __init__(self, key: bytes):
        if len(key) not in _ROUNDS_BY_KEY_BYTES:
            raise ValueError(
                f"AES key must be 16, 24, or 32 bytes, got {len(key)}"
            )
        self.key = bytes(key)
        self.rounds = _ROUNDS_BY_KEY_BYTES[len(key)]
        self._round_keys = self._expand_key(key)
        # Round keys packed as four big-endian 32-bit column words each, for
        # the T-table path.
        self._round_key_words = [
            [
                (rk[c] << 24) | (rk[c + 1] << 16) | (rk[c + 2] << 8) | rk[c + 3]
                for c in (0, 4, 8, 12)
            ]
            for rk in self._round_keys
        ]

    def _expand_key(self, key: bytes) -> List[List[int]]:
        """FIPS-197 key expansion; returns one 16-int round key per round."""
        nk = len(key) // 4
        words = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        total_words = 4 * (self.rounds + 1)
        for i in range(nk, total_words):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([words[i - nk][j] ^ temp[j] for j in range(4)])
        round_keys = []
        for r in range(self.rounds + 1):
            rk: List[int] = []
            for w in words[4 * r : 4 * r + 4]:
                rk.extend(w)
            round_keys.append(rk)
        return round_keys

    # State layout: a flat list of 16 bytes in column-major order, matching
    # the byte order of the input block (FIPS-197 section 3.4).

    @staticmethod
    def _add_round_key(state: List[int], rk: List[int]) -> None:
        for i in range(16):
            state[i] ^= rk[i]

    @staticmethod
    def _sub_bytes(state: List[int], box: List[int]) -> None:
        for i in range(16):
            state[i] = box[state[i]]

    @staticmethod
    def _shift_rows(state: List[int]) -> None:
        # Row r (bytes r, r+4, r+8, r+12) rotates left by r.
        state[1], state[5], state[9], state[13] = state[5], state[9], state[13], state[1]
        state[2], state[6], state[10], state[14] = state[10], state[14], state[2], state[6]
        state[3], state[7], state[11], state[15] = state[15], state[3], state[7], state[11]

    @staticmethod
    def _inv_shift_rows(state: List[int]) -> None:
        state[5], state[9], state[13], state[1] = state[1], state[5], state[9], state[13]
        state[10], state[14], state[2], state[6] = state[2], state[6], state[10], state[14]
        state[15], state[3], state[7], state[11] = state[3], state[7], state[11], state[15]

    @staticmethod
    def _mix_columns(state: List[int]) -> None:
        for c in range(0, 16, 4):
            a0, a1, a2, a3 = state[c : c + 4]
            state[c] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
            state[c + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
            state[c + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
            state[c + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]

    @staticmethod
    def _inv_mix_columns(state: List[int]) -> None:
        for c in range(0, 16, 4):
            a0, a1, a2, a3 = state[c : c + 4]
            state[c] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
            state[c + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
            state[c + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
            state[c + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]

    def encrypt_block_scalar(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block via the per-byte reference rounds.

        This is the FIPS-197 spec transcribed literally; it exists as the
        ground truth the T-table path is property-tested against.
        """
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for r in range(1, self.rounds):
            self._sub_bytes(state, _SBOX)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[r])
        self._sub_bytes(state, _SBOX)
        self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self.rounds])
        return bytes(state)

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block (T-table fast path)."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        t0, t1, t2, t3 = _T0, _T1, _T2, _T3
        words = self._round_key_words
        rk = words[0]
        s0 = int.from_bytes(block[0:4], "big") ^ rk[0]
        s1 = int.from_bytes(block[4:8], "big") ^ rk[1]
        s2 = int.from_bytes(block[8:12], "big") ^ rk[2]
        s3 = int.from_bytes(block[12:16], "big") ^ rk[3]
        for r in range(1, self.rounds):
            rk = words[r]
            u0 = t0[s0 >> 24] ^ t1[(s1 >> 16) & 0xFF] ^ t2[(s2 >> 8) & 0xFF] ^ t3[s3 & 0xFF] ^ rk[0]
            u1 = t0[s1 >> 24] ^ t1[(s2 >> 16) & 0xFF] ^ t2[(s3 >> 8) & 0xFF] ^ t3[s0 & 0xFF] ^ rk[1]
            u2 = t0[s2 >> 24] ^ t1[(s3 >> 16) & 0xFF] ^ t2[(s0 >> 8) & 0xFF] ^ t3[s1 & 0xFF] ^ rk[2]
            u3 = t0[s3 >> 24] ^ t1[(s0 >> 16) & 0xFF] ^ t2[(s1 >> 8) & 0xFF] ^ t3[s2 & 0xFF] ^ rk[3]
            s0, s1, s2, s3 = u0, u1, u2, u3
        # Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
        rk = words[self.rounds]
        sbox = _SBOX
        u0 = (
            (sbox[s0 >> 24] << 24)
            | (sbox[(s1 >> 16) & 0xFF] << 16)
            | (sbox[(s2 >> 8) & 0xFF] << 8)
            | sbox[s3 & 0xFF]
        ) ^ rk[0]
        u1 = (
            (sbox[s1 >> 24] << 24)
            | (sbox[(s2 >> 16) & 0xFF] << 16)
            | (sbox[(s3 >> 8) & 0xFF] << 8)
            | sbox[s0 & 0xFF]
        ) ^ rk[1]
        u2 = (
            (sbox[s2 >> 24] << 24)
            | (sbox[(s3 >> 16) & 0xFF] << 16)
            | (sbox[(s0 >> 8) & 0xFF] << 8)
            | sbox[s1 & 0xFF]
        ) ^ rk[2]
        u3 = (
            (sbox[s3 >> 24] << 24)
            | (sbox[(s0 >> 16) & 0xFF] << 16)
            | (sbox[(s1 >> 8) & 0xFF] << 8)
            | sbox[s2 & 0xFF]
        ) ^ rk[3]
        return (
            u0.to_bytes(4, "big")
            + u1.to_bytes(4, "big")
            + u2.to_bytes(4, "big")
            + u3.to_bytes(4, "big")
        )

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, self._round_keys[self.rounds])
        for r in range(self.rounds - 1, 0, -1):
            self._inv_shift_rows(state)
            self._sub_bytes(state, _INV_SBOX)
            self._add_round_key(state, self._round_keys[r])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._sub_bytes(state, _INV_SBOX)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)
