"""FIPS-197 AES block cipher, implemented from scratch in pure Python.

Convergent encryption (paper section 3) needs a symmetric cipher ``E`` keyed
by the hash of the plaintext.  The security proof models ``E`` as a random
permutation family; any standard block cipher realizes it.  We implement AES
(128/192/256-bit keys) directly from the FIPS-197 specification -- key
expansion, SubBytes/ShiftRows/MixColumns rounds, and their inverses -- so the
repository has no external crypto dependency.

Verified against the FIPS-197 appendix test vectors in
``tests/crypto/test_aes.py``.
"""

from __future__ import annotations

from typing import List

BLOCK_SIZE = 16

# --- S-box generation -------------------------------------------------------
#
# Rather than hard-coding 256 magic numbers, derive the S-box from its
# definition: multiplicative inverse in GF(2^8) followed by the affine
# transform (FIPS-197 section 5.1.1).


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sbox() -> List[int]:
    # Compute inverses via exhaustive search once; 256*256 is trivial.
    inverse = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if _gf_mul(x, y) == 1:
                inverse[x] = y
                break
    sbox = [0] * 256
    for x in range(256):
        b = inverse[x]
        # Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
        value = 0x63
        for shift in range(5):
            value ^= ((b << shift) | (b >> (8 - shift))) & 0xFF
        sbox[x] = value
    return sbox


_SBOX = _build_sbox()
_INV_SBOX = [0] * 256
for _i, _v in enumerate(_SBOX):
    _INV_SBOX[_v] = _i

_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_gf_mul(_RCON[-1], 0x02))

# Precomputed GF multiplication tables for MixColumns and its inverse.
_MUL2 = [_gf_mul(x, 2) for x in range(256)]
_MUL3 = [_gf_mul(x, 3) for x in range(256)]
_MUL9 = [_gf_mul(x, 9) for x in range(256)]
_MUL11 = [_gf_mul(x, 11) for x in range(256)]
_MUL13 = [_gf_mul(x, 13) for x in range(256)]
_MUL14 = [_gf_mul(x, 14) for x in range(256)]

_ROUNDS_BY_KEY_BYTES = {16: 10, 24: 12, 32: 14}


class AES:
    """The AES block cipher over 16-byte blocks.

    >>> key = bytes(range(16))
    >>> cipher = AES(key)
    >>> block = b"sixteen byte msg"
    >>> cipher.decrypt_block(cipher.encrypt_block(block)) == block
    True
    """

    def __init__(self, key: bytes):
        if len(key) not in _ROUNDS_BY_KEY_BYTES:
            raise ValueError(
                f"AES key must be 16, 24, or 32 bytes, got {len(key)}"
            )
        self.key = bytes(key)
        self.rounds = _ROUNDS_BY_KEY_BYTES[len(key)]
        self._round_keys = self._expand_key(key)

    def _expand_key(self, key: bytes) -> List[List[int]]:
        """FIPS-197 key expansion; returns one 16-int round key per round."""
        nk = len(key) // 4
        words = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        total_words = 4 * (self.rounds + 1)
        for i in range(nk, total_words):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([words[i - nk][j] ^ temp[j] for j in range(4)])
        round_keys = []
        for r in range(self.rounds + 1):
            rk: List[int] = []
            for w in words[4 * r : 4 * r + 4]:
                rk.extend(w)
            round_keys.append(rk)
        return round_keys

    # State layout: a flat list of 16 bytes in column-major order, matching
    # the byte order of the input block (FIPS-197 section 3.4).

    @staticmethod
    def _add_round_key(state: List[int], rk: List[int]) -> None:
        for i in range(16):
            state[i] ^= rk[i]

    @staticmethod
    def _sub_bytes(state: List[int], box: List[int]) -> None:
        for i in range(16):
            state[i] = box[state[i]]

    @staticmethod
    def _shift_rows(state: List[int]) -> None:
        # Row r (bytes r, r+4, r+8, r+12) rotates left by r.
        state[1], state[5], state[9], state[13] = state[5], state[9], state[13], state[1]
        state[2], state[6], state[10], state[14] = state[10], state[14], state[2], state[6]
        state[3], state[7], state[11], state[15] = state[15], state[3], state[7], state[11]

    @staticmethod
    def _inv_shift_rows(state: List[int]) -> None:
        state[5], state[9], state[13], state[1] = state[1], state[5], state[9], state[13]
        state[10], state[14], state[2], state[6] = state[2], state[6], state[10], state[14]
        state[15], state[3], state[7], state[11] = state[3], state[7], state[11], state[15]

    @staticmethod
    def _mix_columns(state: List[int]) -> None:
        for c in range(0, 16, 4):
            a0, a1, a2, a3 = state[c : c + 4]
            state[c] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
            state[c + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
            state[c + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
            state[c + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]

    @staticmethod
    def _inv_mix_columns(state: List[int]) -> None:
        for c in range(0, 16, 4):
            a0, a1, a2, a3 = state[c : c + 4]
            state[c] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
            state[c + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
            state[c + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
            state[c + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for r in range(1, self.rounds):
            self._sub_bytes(state, _SBOX)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[r])
        self._sub_bytes(state, _SBOX)
        self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self.rounds])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, self._round_keys[self.rounds])
        for r in range(self.rounds - 1, 0, -1):
            self._inv_shift_rows(state)
            self._sub_bytes(state, _INV_SBOX)
            self._add_round_key(state, self._round_keys[r])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._sub_bytes(state, _INV_SBOX)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)
