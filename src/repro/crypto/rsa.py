"""Textbook RSA, implemented from scratch.

Farsite gives every user and every machine its own public/private key pair
(paper section 2).  Convergent encryption (section 3) uses the *user* keys
only to encrypt the per-file hash key in the ciphertext metadata
``mu_u = F_{K_u}(H(P_f))`` (Eq. 3), and machine keys only to derive verifiable
machine identifiers and authenticate channels.  Both payloads are short,
fresh, high-entropy values, so unpadded ("textbook") RSA on a
randomized-padded block is sufficient for the simulation; we nevertheless
apply a simple random-nonce padding so that equal payloads encrypt to
different ciphertexts under the same key, matching the semantics of a real
IND-CPA public-key scheme (the determinism of *convergent* encryption must
come only from the convergent construction itself, never from F).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.crypto.primes import generate_prime

#: Default modulus size.  512-bit RSA is of course obsolete for real
#: deployments; it keeps simulated key generation fast while exercising the
#: identical code path.
DEFAULT_MODULUS_BITS = 512

_PUBLIC_EXPONENT = 65537
_PAD_NONCE_BYTES = 8


class RSAError(Exception):
    """Raised on malformed RSA operations (oversized payloads, bad keys)."""


@dataclass(frozen=True)
class RSAPublicKey:
    """An RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def modulus_bits(self) -> int:
        return self.n.bit_length()

    @property
    def max_payload_bytes(self) -> int:
        """Largest plaintext (in bytes) the padded encryption accepts."""
        # Sentinel byte + length byte + nonce + payload, strictly below n.
        return (self.modulus_bits - 1) // 8 - _PAD_NONCE_BYTES - 2

    def to_bytes(self) -> bytes:
        """Serialize deterministically; used to derive machine identifiers."""
        n_bytes = self.n.to_bytes((self.modulus_bits + 7) // 8, "big")
        e_bytes = self.e.to_bytes(4, "big")
        return len(n_bytes).to_bytes(2, "big") + n_bytes + e_bytes

    def encrypt(self, payload: bytes, rng: Optional[random.Random] = None) -> bytes:
        """Encrypt *payload* with random-nonce padding.

        Layout of the padded block (big-endian integer below n):
        ``0x01 || len(payload) || nonce (8 bytes) || payload``.  The sentinel
        keeps the block parseable even when the length byte is zero.
        """
        if len(payload) > self.max_payload_bytes:
            raise RSAError(
                f"payload of {len(payload)} bytes exceeds maximum of "
                f"{self.max_payload_bytes} for a {self.modulus_bits}-bit key"
            )
        rng = rng or random.Random()
        nonce = bytes(rng.getrandbits(8) for _ in range(_PAD_NONCE_BYTES))
        block = bytes([1, len(payload)]) + nonce + payload
        m = int.from_bytes(block, "big")
        c = pow(m, self.e, self.n)
        return c.to_bytes((self.modulus_bits + 7) // 8, "big")


@dataclass(frozen=True)
class RSAKeyPair:
    """An RSA key pair; the private exponent never leaves this object."""

    public: RSAPublicKey
    _d: int

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Invert :meth:`RSAPublicKey.encrypt`, returning the payload."""
        c = int.from_bytes(ciphertext, "big")
        if c >= self.public.n:
            raise RSAError("ciphertext is not below the modulus")
        m = pow(c, self._d, self.public.n)
        block = m.to_bytes((self.public.modulus_bits + 7) // 8, "big")
        # Strip leading zeros introduced by fixed-width serialization; the
        # first nonzero byte must be the 0x01 sentinel.
        idx = 0
        while idx < len(block) and block[idx] == 0:
            idx += 1
        if idx + 1 >= len(block) or block[idx] != 1:
            raise RSAError("padding check failed: corrupt ciphertext or wrong key")
        length = block[idx + 1]
        payload = block[idx + 2 + _PAD_NONCE_BYTES :]
        if len(payload) != length:
            raise RSAError("padding check failed: corrupt ciphertext or wrong key")
        return payload


def generate_keypair(
    bits: int = DEFAULT_MODULUS_BITS,
    rng: Optional[random.Random] = None,
) -> RSAKeyPair:
    """Generate an RSA key pair with a modulus of roughly *bits* bits."""
    rng = rng or random.Random()
    half = bits // 2
    while True:
        p = generate_prime(half, rng=rng)
        q = generate_prime(bits - half, rng=rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % _PUBLIC_EXPONENT == 0:
            continue
        d = pow(_PUBLIC_EXPONENT, -1, phi)
        return RSAKeyPair(public=RSAPublicKey(n=n, e=_PUBLIC_EXPONENT), _d=d)
