"""Primality testing and prime generation for RSA key pairs.

Implements the Miller-Rabin probabilistic primality test plus a small-prime
sieve pre-filter, and a generator for random primes of a requested bit width.
All randomness flows through a caller-supplied :class:`random.Random` so key
generation is reproducible inside simulations.
"""

from __future__ import annotations

import random
from typing import Optional

# Primes below 1000, used as a cheap trial-division pre-filter before the
# Miller-Rabin rounds.
_SMALL_PRIMES = [2, 3]
for _candidate in range(5, 1000, 2):
    if all(_candidate % p for p in _SMALL_PRIMES):
        _SMALL_PRIMES.append(_candidate)

#: Number of Miller-Rabin rounds.  40 rounds gives a false-positive
#: probability below 2**-80 for random candidates.
DEFAULT_ROUNDS = 40


def _miller_rabin_round(n: int, d: int, r: int, witness: int) -> bool:
    """Return ``True`` if *n* passes one Miller-Rabin round for *witness*.

    *d* and *r* satisfy ``n - 1 == d * 2**r`` with *d* odd.
    """
    x = pow(witness, d, n)
    if x == 1 or x == n - 1:
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(
    n: int,
    rounds: int = DEFAULT_ROUNDS,
    rng: Optional[random.Random] = None,
) -> bool:
    """Return ``True`` if *n* is prime with overwhelming probability.

    Uses trial division by all primes below 1000 followed by *rounds* of
    Miller-Rabin with random witnesses drawn from *rng* (a fresh
    ``random.Random`` if omitted).
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = rng or random.Random()
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        witness = rng.randrange(2, n - 1)
        if not _miller_rabin_round(n, d, r, witness):
            return False
    return True


def generate_prime(
    bits: int,
    rng: Optional[random.Random] = None,
    rounds: int = DEFAULT_ROUNDS,
) -> int:
    """Generate a random prime of exactly *bits* bits.

    The top two bits are forced to 1 so that the product of two such primes
    has exactly ``2 * bits`` bits, and the bottom bit is forced to 1 so the
    candidate is odd.
    """
    if bits < 8:
        raise ValueError(f"prime width must be at least 8 bits, got {bits}")
    rng = rng or random.Random()
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate, rounds=rounds, rng=rng):
            return candidate
