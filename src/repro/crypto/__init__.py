"""Cryptographic primitives implemented from scratch.

Farsite roots data privacy in symmetric-key and public-key cryptography
(paper section 2).  This package supplies every primitive the Duplicate-File
Coalescing subsystem needs:

- :mod:`repro.crypto.aes` -- FIPS-197 AES block cipher, pure Python.
- :mod:`repro.crypto.modes` -- CTR and CBC modes of operation.
- :mod:`repro.crypto.primes` -- Miller-Rabin primality and prime generation.
- :mod:`repro.crypto.rsa` -- textbook RSA key pairs for user and machine keys.
- :mod:`repro.crypto.hashing` -- the 20-byte "cryptographically strong hash"
  used for machine identifiers and file fingerprints.
- :mod:`repro.crypto.random_oracle` -- the random-oracle model of section 3.1,
  used to test the convergent-encryption security theorem.
"""

from repro.crypto.aes import AES
from repro.crypto.hashing import (
    FINGERPRINT_HASH_BYTES,
    content_hash,
    convergence_key,
    strong_hash,
)
from repro.crypto.modes import ctr_keystream, decrypt_cbc, decrypt_ctr, encrypt_cbc, encrypt_ctr
from repro.crypto.primes import generate_prime, is_probable_prime
from repro.crypto.rsa import RSAKeyPair, RSAPublicKey, generate_keypair

__all__ = [
    "AES",
    "FINGERPRINT_HASH_BYTES",
    "RSAKeyPair",
    "RSAPublicKey",
    "content_hash",
    "convergence_key",
    "ctr_keystream",
    "decrypt_cbc",
    "decrypt_ctr",
    "encrypt_cbc",
    "encrypt_ctr",
    "generate_keypair",
    "generate_prime",
    "is_probable_prime",
    "strong_hash",
]
