"""Modes of operation for the AES block cipher.

Convergent encryption requires that the ciphertext of a file be *fully
determined* by the file plaintext (paper section 3): ``c_f = E_{H(P_f)}(P_f)``
(Eq. 2).  We therefore use CTR mode with a fixed zero nonce: the key is
already a collision-resistant hash of the plaintext, so keystream reuse
across *different* plaintexts is impossible, and reuse across *identical*
plaintexts is precisely the feature.

CBC mode with a deterministic IV is provided as an alternative realization
(and to exercise the padding path); both satisfy Eq. 2.
"""

from __future__ import annotations

from repro.crypto.aes import AES, BLOCK_SIZE


def ctr_keystream(cipher: AES, nonce: int, blocks: int) -> bytes:
    """Return *blocks* blocks of CTR keystream starting at counter *nonce*."""
    out = bytearray()
    for counter in range(nonce, nonce + blocks):
        out.extend(cipher.encrypt_block(counter.to_bytes(BLOCK_SIZE, "big")))
    return bytes(out)


def encrypt_ctr(key: bytes, plaintext: bytes, nonce: int = 0) -> bytes:
    """Encrypt *plaintext* under *key* in CTR mode.

    The output has exactly the length of the input, so coalesced storage of a
    convergently encrypted file costs no more space than the plaintext.
    """
    cipher = AES(key)
    blocks = (len(plaintext) + BLOCK_SIZE - 1) // BLOCK_SIZE
    stream = ctr_keystream(cipher, nonce, blocks)
    return bytes(p ^ s for p, s in zip(plaintext, stream))


def decrypt_ctr(key: bytes, ciphertext: bytes, nonce: int = 0) -> bytes:
    """CTR decryption is CTR encryption."""
    return encrypt_ctr(key, ciphertext, nonce)


def _pad(data: bytes) -> bytes:
    """PKCS#7 padding to a whole number of blocks."""
    pad_len = BLOCK_SIZE - len(data) % BLOCK_SIZE
    return data + bytes([pad_len]) * pad_len


def _unpad(data: bytes) -> bytes:
    if not data or len(data) % BLOCK_SIZE:
        raise ValueError("ciphertext is not a whole number of blocks")
    pad_len = data[-1]
    if not 1 <= pad_len <= BLOCK_SIZE or data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise ValueError("invalid PKCS#7 padding")
    return data[:-pad_len]


def encrypt_cbc(key: bytes, plaintext: bytes, iv: bytes = bytes(BLOCK_SIZE)) -> bytes:
    """Encrypt in CBC mode with PKCS#7 padding and a deterministic IV."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
    cipher = AES(key)
    padded = _pad(plaintext)
    out = bytearray()
    prev = iv
    for i in range(0, len(padded), BLOCK_SIZE):
        block = bytes(a ^ b for a, b in zip(padded[i : i + BLOCK_SIZE], prev))
        prev = cipher.encrypt_block(block)
        out.extend(prev)
    return bytes(out)


def decrypt_cbc(key: bytes, ciphertext: bytes, iv: bytes = bytes(BLOCK_SIZE)) -> bytes:
    """Invert :func:`encrypt_cbc`."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
    cipher = AES(key)
    out = bytearray()
    prev = iv
    for i in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[i : i + BLOCK_SIZE]
        plain = cipher.decrypt_block(block)
        out.extend(a ^ b for a, b in zip(plain, prev))
        prev = block
    return _unpad(bytes(out))
