"""Modes of operation for the AES block cipher.

Convergent encryption requires that the ciphertext of a file be *fully
determined* by the file plaintext (paper section 3): ``c_f = E_{H(P_f)}(P_f)``
(Eq. 2).  We therefore use CTR mode with a fixed zero nonce: the key is
already a collision-resistant hash of the plaintext, so keystream reuse
across *different* plaintexts is impossible, and reuse across *identical*
plaintexts is precisely the feature.

CTR mode is embarrassingly parallel across blocks -- every keystream block is
``E_k(counter)`` for an independent counter -- so the hot path here is
*vectorized*: :func:`bulk_encrypt_ctr` runs all AES rounds for every block of
a file simultaneously as numpy array operations (SubBytes as a fancy-index
table lookup over the whole state matrix, ShiftRows as a column permutation,
MixColumns as xtime-table lookups and XORs).  A small LRU cache keyed by
``(key, nonce)`` re-serves keystream for repeated encryptions of the same
content, which the DFC pipeline hits whenever duplicate files are encrypted
on multiple machines.

The scalar per-block path (:func:`ctr_keystream` driving
``AES.encrypt_block``) is retained both as the numpy-free fallback and as
the reference implementation the property suite checks the vectorized path
against, bit for bit.

CBC mode with a deterministic IV is provided as an alternative realization
(and to exercise the padding path); both satisfy Eq. 2.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.crypto.aes import AES, BLOCK_SIZE, _MUL2, _MUL3, _SBOX

try:  # numpy is a declared dependency, but the scalar path must survive
    import numpy as _np  # pragma: no cover - import guard
except ImportError:  # pragma: no cover
    _np = None

#: Below this many blocks the numpy dispatch overhead beats the win.
_VECTOR_MIN_BLOCKS = 8


def ctr_keystream(cipher: AES, nonce: int, blocks: int) -> bytes:
    """Return *blocks* blocks of CTR keystream starting at counter *nonce*.

    Scalar reference path: one ``encrypt_block`` call per counter.  The
    counter wraps modulo 2^128, as in standard CTR.
    """
    out = bytearray()
    for counter in range(nonce, nonce + blocks):
        out.extend(
            cipher.encrypt_block((counter % (1 << 128)).to_bytes(BLOCK_SIZE, "big"))
        )
    return bytes(out)


# --- vectorized keystream ---------------------------------------------------
#
# State layout matches the scalar cipher: each row of the (N, 16) uint8 matrix
# is one block in column-major byte order.  All N blocks advance through each
# round together.

_NP_TABLES: Dict[str, "object"] = {}


def _np_tables():
    """Lazily built numpy views of the AES lookup tables."""
    if not _NP_TABLES:
        sbox = _np.array(_SBOX, dtype=_np.uint8)
        # new_state[i] = old_state[perm[i]]: apply the scalar ShiftRows to the
        # identity permutation to read the gather indices off directly.
        perm = list(range(16))
        AES._shift_rows(perm)
        _NP_TABLES.update(
            sbox=sbox,
            mul2=_np.array(_MUL2, dtype=_np.uint8),
            mul3=_np.array(_MUL3, dtype=_np.uint8),
            shift_perm=_np.array(perm, dtype=_np.intp),
        )
    return _NP_TABLES


def _counter_blocks(nonce: int, blocks: int) -> "object":
    """All counter blocks ``nonce .. nonce+blocks-1`` as an (N, 16) uint8 array."""
    low_start = nonce & 0xFFFFFFFFFFFFFFFF
    if nonce >= 0 and low_start + blocks <= 1 << 64:
        high = (nonce >> 64).to_bytes(8, "big")
        out = _np.empty((blocks, 16), dtype=_np.uint8)
        out[:, :8] = _np.frombuffer(high, dtype=_np.uint8)
        low = _np.arange(low_start, low_start + blocks, dtype=_np.uint64)
        out[:, 8:] = low.astype(">u8").view(_np.uint8).reshape(blocks, 8)
        return out
    # Counter range straddles a 64-bit carry (or nonce is negative-exotic):
    # build the blocks with exact integer arithmetic.
    raw = b"".join(
        ((nonce + i) % (1 << 128)).to_bytes(BLOCK_SIZE, "big") for i in range(blocks)
    )
    return _np.frombuffer(raw, dtype=_np.uint8).reshape(blocks, 16).copy()


def _vector_keystream(cipher: AES, nonce: int, blocks: int) -> bytes:
    """All *blocks* keystream blocks at once via numpy-vectorized AES rounds."""
    tables = _np_tables()
    sbox, mul2, mul3 = tables["sbox"], tables["mul2"], tables["mul3"]
    shift_perm = tables["shift_perm"]
    round_keys = [
        _np.array(rk, dtype=_np.uint8) for rk in cipher._round_keys
    ]

    state = _counter_blocks(nonce, blocks)
    state ^= round_keys[0]
    for r in range(1, cipher.rounds):
        state = sbox[state]  # SubBytes over every byte of every block
        state = state[:, shift_perm]  # ShiftRows as one gather
        # MixColumns on the (N, 4, 4) column view.
        cols = state.reshape(blocks, 4, 4)
        a0, a1, a2, a3 = cols[:, :, 0], cols[:, :, 1], cols[:, :, 2], cols[:, :, 3]
        mixed = _np.empty_like(cols)
        mixed[:, :, 0] = mul2[a0] ^ mul3[a1] ^ a2 ^ a3
        mixed[:, :, 1] = a0 ^ mul2[a1] ^ mul3[a2] ^ a3
        mixed[:, :, 2] = a0 ^ a1 ^ mul2[a2] ^ mul3[a3]
        mixed[:, :, 3] = mul3[a0] ^ a1 ^ a2 ^ mul2[a3]
        state = mixed.reshape(blocks, 16)
        state ^= round_keys[r]
    state = sbox[state]
    state = state[:, shift_perm]
    state ^= round_keys[cipher.rounds]
    return state.tobytes()


def keystream_blocks(cipher: AES, nonce: int, blocks: int) -> bytes:
    """CTR keystream, vectorized when numpy is present and the run is long."""
    if blocks <= 0:
        return b""
    if _np is None or blocks < _VECTOR_MIN_BLOCKS:
        return ctr_keystream(cipher, nonce, blocks)
    return _vector_keystream(cipher, nonce, blocks)


# --- keystream cache --------------------------------------------------------


class KeystreamCache:
    """LRU cache of generated keystream, keyed by ``(key, nonce)``.

    Repeated encryptions of the same content (duplicate files on different
    machines, or a verify pass right after an encrypt) reuse the already
    computed stream; a request longer than the cached prefix extends it from
    the next counter rather than regenerating from scratch.
    """

    def __init__(self, max_entries: int = 16, max_entry_bytes: int = 1 << 20):
        if max_entries < 1:
            raise ValueError(f"cache needs at least one entry: {max_entries}")
        self.max_entries = max_entries
        self.max_entry_bytes = max_entry_bytes
        self._entries: "OrderedDict[Tuple[bytes, int], bytes]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def keystream(self, key: bytes, nonce: int, nbytes: int) -> bytes:
        """At least *nbytes* of keystream for ``(key, nonce)``."""
        cache_key = (bytes(key), nonce)
        cached = self._entries.get(cache_key)
        if cached is not None and len(cached) >= nbytes:
            self._entries.move_to_end(cache_key)
            self.hits += 1
            return cached[:nbytes]
        self.misses += 1
        blocks_needed = (nbytes + BLOCK_SIZE - 1) // BLOCK_SIZE
        if cached is None:
            stream = keystream_blocks(AES(key), nonce, blocks_needed)
        else:
            have_blocks = len(cached) // BLOCK_SIZE
            stream = cached + keystream_blocks(
                AES(key), nonce + have_blocks, blocks_needed - have_blocks
            )
        if len(stream) <= self.max_entry_bytes:
            self._entries[cache_key] = stream
            self._entries.move_to_end(cache_key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        else:
            self._entries.pop(cache_key, None)
        return stream[:nbytes]

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


#: Process-wide cache used by the bulk API.
_KEYSTREAM_CACHE = KeystreamCache()

#: Bulk-kernel lifetime totals (plain module ints on the hot path; harvested
#: into a MetricsRegistry by :func:`collect_metrics` at report time).
_BULK_CALLS = 0
_BULK_BYTES = 0


def keystream_cache() -> KeystreamCache:
    """The process-wide keystream cache (exposed for stats and tests)."""
    return _KEYSTREAM_CACHE


def collect_metrics(registry) -> None:
    """Harvest the bulk-CTR kernel's lifetime totals into *registry*.

    Builds fresh entries from the module counters and the process-wide
    keystream cache; calling it twice on two registries double-counts
    nothing (a harvest is a snapshot).
    """
    registry.counter("crypto.ctr.bulk_calls").inc(_BULK_CALLS)
    registry.counter("crypto.ctr.bulk_bytes").inc(_BULK_BYTES)
    cache = _KEYSTREAM_CACHE
    registry.counter("crypto.ctr.keystream_cache_hits").inc(cache.hits)
    registry.counter("crypto.ctr.keystream_cache_misses").inc(cache.misses)
    probes = cache.hits + cache.misses
    if probes:
        registry.gauge("crypto.ctr.keystream_cache_hit_rate").set(cache.hits / probes)


def _xor_bytes(data: bytes, stream: bytes) -> bytes:
    if _np is not None and len(data) >= _VECTOR_MIN_BLOCKS * BLOCK_SIZE:
        a = _np.frombuffer(data, dtype=_np.uint8)
        b = _np.frombuffer(stream, dtype=_np.uint8, count=len(data))
        return (a ^ b).tobytes()
    return bytes(p ^ s for p, s in zip(data, stream))


def bulk_encrypt_ctr(key: bytes, plaintext: bytes, nonce: int = 0) -> bytes:
    """Encrypt *plaintext* in CTR mode with the vectorized keystream kernel.

    Byte-identical to :func:`encrypt_ctr`; the whole keystream for the file
    is generated in one shot and cached under ``(key, nonce)``.
    """
    global _BULK_CALLS, _BULK_BYTES
    if not plaintext:
        return b""
    _BULK_CALLS += 1
    _BULK_BYTES += len(plaintext)
    stream = _KEYSTREAM_CACHE.keystream(key, nonce, len(plaintext))
    return _xor_bytes(plaintext, stream)


def bulk_decrypt_ctr(key: bytes, ciphertext: bytes, nonce: int = 0) -> bytes:
    """CTR decryption is CTR encryption."""
    return bulk_encrypt_ctr(key, ciphertext, nonce)


def encrypt_ctr(key: bytes, plaintext: bytes, nonce: int = 0) -> bytes:
    """Encrypt *plaintext* under *key* in CTR mode.

    The output has exactly the length of the input, so coalesced storage of a
    convergently encrypted file costs no more space than the plaintext.
    Delegates to the bulk kernel; the scalar path is :func:`encrypt_ctr_scalar`.
    """
    return bulk_encrypt_ctr(key, plaintext, nonce)


def decrypt_ctr(key: bytes, ciphertext: bytes, nonce: int = 0) -> bytes:
    """CTR decryption is CTR encryption."""
    return encrypt_ctr(key, ciphertext, nonce)


def encrypt_ctr_scalar(key: bytes, plaintext: bytes, nonce: int = 0) -> bytes:
    """The seed repository's scalar CTR path, kept as the reference."""
    cipher = AES(key)
    blocks = (len(plaintext) + BLOCK_SIZE - 1) // BLOCK_SIZE
    stream = ctr_keystream(cipher, nonce, blocks)
    return bytes(p ^ s for p, s in zip(plaintext, stream))


def _pad(data: bytes) -> bytes:
    """PKCS#7 padding to a whole number of blocks."""
    pad_len = BLOCK_SIZE - len(data) % BLOCK_SIZE
    return data + bytes([pad_len]) * pad_len


def _unpad(data: bytes) -> bytes:
    if not data or len(data) % BLOCK_SIZE:
        raise ValueError("ciphertext is not a whole number of blocks")
    pad_len = data[-1]
    if not 1 <= pad_len <= BLOCK_SIZE or data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise ValueError("invalid PKCS#7 padding")
    return data[:-pad_len]


def encrypt_cbc(key: bytes, plaintext: bytes, iv: bytes = bytes(BLOCK_SIZE)) -> bytes:
    """Encrypt in CBC mode with PKCS#7 padding and a deterministic IV."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
    cipher = AES(key)
    padded = _pad(plaintext)
    out = bytearray()
    prev = iv
    for i in range(0, len(padded), BLOCK_SIZE):
        block = bytes(a ^ b for a, b in zip(padded[i : i + BLOCK_SIZE], prev))
        prev = cipher.encrypt_block(block)
        out.extend(prev)
    return bytes(out)


def decrypt_cbc(key: bytes, ciphertext: bytes, iv: bytes = bytes(BLOCK_SIZE)) -> bytes:
    """Invert :func:`encrypt_cbc`."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
    cipher = AES(key)
    out = bytearray()
    prev = iv
    for i in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[i : i + BLOCK_SIZE]
        plain = cipher.decrypt_block(block)
        out.extend(a ^ b for a, b in zip(plain, prev))
        prev = block
    return _unpad(bytes(out))
