"""Cryptographic hashing for identifiers, fingerprints, and convergence keys.

The paper uses a 20-byte cryptographically strong hash for machine
identifiers (section 2) and file-content fingerprints (section 4.1).  We keep
the 20-byte arithmetic exact by using SHA-1 for those roles; the convergent
encryption key ``H(P_f)`` uses SHA-256 truncated to the symmetric key size
(any strong hash satisfies the construction -- the security proof in section
3.1 treats H as a random oracle of output length n).
"""

from __future__ import annotations

import hashlib

#: Identifier / fingerprint hash width used throughout section 4 (20 bytes).
FINGERPRINT_HASH_BYTES = 20

#: Symmetric key width for convergent encryption (AES-128 by default).
CONVERGENCE_KEY_BYTES = 16


def strong_hash(data: bytes) -> bytes:
    """The paper's 20-byte "cryptographically strong hash" (section 2)."""
    return hashlib.sha1(data).digest()


def content_hash(data: bytes) -> bytes:
    """Hash of file content used in fingerprints; 20 bytes."""
    return strong_hash(data)


def convergence_key(plaintext: bytes, key_bytes: int = CONVERGENCE_KEY_BYTES) -> bytes:
    """Derive the convergent encryption key ``H(P_f)`` from file plaintext.

    SHA-256 truncated to *key_bytes* (16, 24, or 32 for AES).  Identical
    plaintexts always yield identical keys; that determinism is the heart of
    convergent encryption.
    """
    if key_bytes not in (16, 24, 32):
        raise ValueError(f"key width must be an AES key size, got {key_bytes}")
    return hashlib.sha256(plaintext).digest()[:key_bytes]
