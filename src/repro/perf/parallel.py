"""A process-pool map with a deterministic serial fallback.

Design constraints, in order:

1. **Identical results.**  A parallel map must return exactly what the serial
   loop returns, in input order.  That restricts eligible work to pure
   per-item functions (encryption, hashing, content materialization) and is
   why result collection uses ordered chunks rather than
   completion-order streaming.
2. **Graceful degradation.**  Sandboxes, restricted containers, and
   single-CPU machines must not crash or hang: any failure to *create* the
   pool silently downgrades to the serial path.  (Failures *inside* a worker
   propagate -- degradation hides environmental limits, never bugs.)
3. **No dependency.**  Only the standard library's :mod:`multiprocessing`.

Workers receive chunks, not single items, so per-item dispatch overhead is
amortized.  The default chunk size targets ~4 chunks per worker for load
balance, floored at :data:`MIN_CHUNK_ITEMS` items per chunk (unless that
would leave workers idle) so that cheap per-item functions are not drowned
in per-chunk pickling -- the old ``ceil(n / (4 * workers))`` rule degenerated
to 1-2 item chunks on mid-sized inputs, where dispatch overhead erased the
parallel win.

Coarse-grained work (a handful of multi-second experiment runs) opts in with
``min_items``: the :data:`MIN_PARALLEL_ITEMS` gate assumes per-item cost is
tiny, which is wrong for sweep points, so sweeps pass ``min_items=2``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.obs.registry import Histogram

T = TypeVar("T")
R = TypeVar("R")

#: Below this many items a pool costs more than it saves (for cheap items;
#: coarse tasks override via ``min_items``).
MIN_PARALLEL_ITEMS = 32

#: Chunks smaller than this pay more in pickling/dispatch than they win in
#: load balance, so the default heuristic never goes below it voluntarily.
MIN_CHUNK_ITEMS = 16

#: Session-wide default worker count; the experiments/benchmark CLIs set it
#: once (``--workers``) and every `workers=None` call site inherits it.
_DEFAULT_WORKERS = 1


def set_default_workers(workers: int) -> None:
    """Set the session default used when a ``workers`` knob is ``None``."""
    global _DEFAULT_WORKERS
    _DEFAULT_WORKERS = resolve_workers(workers)


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers`` knob to an effective worker count.

    ``None`` means "whatever the session default is" (1 unless
    :func:`set_default_workers` was called); ``0`` means "use the machine":
    one worker per available CPU.  Negative values are an error.
    """
    if workers is None:
        return _DEFAULT_WORKERS
    # bool is a subclass of int, so ``workers=True`` would sail through the
    # numeric checks below and yield a 1-worker pool named ``True``; floats
    # and strings would fail later with confusing errors.  Reject anything
    # that is not literally an int.
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise TypeError(
            f"workers must be an int or None, got {type(workers).__name__}: "
            f"{workers!r}"
        )
    if workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0 (0 = auto): {workers}")
    return workers


#: Worker chunk latencies for the life of the process.  Each pool chunk
#: times itself in the worker and ships the duration back with its results,
#: so the coordinator sees per-chunk latency (previously invisible: the pool
#: only returned the result payload).  Harvested by :func:`collect_metrics`;
#: :func:`chunk_stats` gives the min/median/max view directly.
_CHUNK_SECONDS = Histogram()
_CHUNK_DURATIONS: List[float] = []


def chunk_stats() -> Optional[Tuple[float, float, float]]:
    """(min, median, max) pool-chunk latency so far, or None if no chunks ran."""
    if not _CHUNK_DURATIONS:
        return None
    ordered = sorted(_CHUNK_DURATIONS)
    return ordered[0], ordered[len(ordered) // 2], ordered[-1]


def collect_metrics(registry) -> None:
    """Harvest pool-chunk latencies into *registry*.

    The min/median/max gauges summarize this process's lifetime view; under
    a registry merge gauges take the max, so only the histogram (exact
    bucket-wise merge) should be trusted across merged reports.
    """
    registry.histogram("perf.parallel.chunk_seconds").merge_from(_CHUNK_SECONDS)
    stats = chunk_stats()
    if stats is not None:
        low, median, high = stats
        registry.gauge("perf.parallel.chunk_seconds_min").set(low)
        registry.gauge("perf.parallel.chunk_seconds_median").set(median)
        registry.gauge("perf.parallel.chunk_seconds_max").set(high)


def _record_chunk_durations(durations: Iterable[float]) -> None:
    for duration in durations:
        _CHUNK_SECONDS.observe(duration)
        _CHUNK_DURATIONS.append(duration)


def _apply_chunk(args):
    fn, chunk = args
    start = time.perf_counter()
    results = [fn(item) for item in chunk]
    return time.perf_counter() - start, results


class ParallelMap:
    """Map a pure function over items with *workers* processes.

    >>> with ParallelMap(workers=1) as pm:
    ...     pm.map(abs, [-1, -2, 3])
    [1, 2, 3]

    With ``workers > 1`` the items are chunked across a process pool; with
    ``workers <= 1`` (or when a pool cannot be created in this environment)
    the map runs serially in-process.  Results are always in input order, so
    both modes are interchangeable wherever the mapped function is pure.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        chunksize: Optional[int] = None,
        min_items: int = MIN_PARALLEL_ITEMS,
    ):
        self.workers = resolve_workers(workers)
        self.chunksize = chunksize
        #: Smallest input length worth a pool.  The default assumes cheap
        #: per-item functions; callers mapping multi-second tasks (sweep
        #: points) lower it -- two slow items already justify two workers.
        self.min_items = min_items
        self._pool = None
        #: True when a pool was requested but could not be created.
        self.degraded = False

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "ParallelMap":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def _ensure_pool(self):
        if self._pool is None and not self.degraded:
            try:
                # fork shares the parent's lookup tables (AES T-tables, sbox)
                # for free; spawn re-imports, which is correct but slower.
                context = multiprocessing.get_context(
                    "fork" if "fork" in multiprocessing.get_all_start_methods() else None
                )
                self._pool = context.Pool(processes=self.workers)
            except (OSError, ValueError, ImportError):
                self.degraded = True
        return self._pool

    # -- mapping -------------------------------------------------------------

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """``[fn(item) for item in items]``, possibly across processes."""
        items = list(items)
        if self.workers <= 1 or len(items) < self.min_items:
            return [fn(item) for item in items]
        pool = self._ensure_pool()
        if pool is None:
            return [fn(item) for item in items]
        chunks = self._chunks(items)
        try:
            results = pool.map(_apply_chunk, [(fn, chunk) for chunk in chunks])
        except (OSError, multiprocessing.ProcessError):
            # The pool died under us (e.g. container resource limits hit at
            # dispatch time): degrade for the rest of this executor's life.
            self.close()
            self.degraded = True
            return [fn(item) for item in items]
        out: List[R] = []
        durations: List[float] = []
        for elapsed, chunk_result in results:
            durations.append(elapsed)
            out.extend(chunk_result)
        _record_chunk_durations(durations)
        return out

    def _chunks(self, items: Sequence[T]) -> List[Sequence[T]]:
        size = self.chunksize
        if size is None:
            n = len(items)
            # ~4 chunks per worker for load balance against uneven items ...
            size = -(-n // (4 * self.workers))
            if size < MIN_CHUNK_ITEMS:
                # ... but no tiny chunks: per-chunk pickling would dominate.
                # Cap at one chunk per worker so nobody idles on small inputs.
                size = min(MIN_CHUNK_ITEMS, -(-n // self.workers))
            size = max(1, size)
        return [items[i : i + size] for i in range(0, len(items), size)]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    min_items: int = MIN_PARALLEL_ITEMS,
) -> List[R]:
    """One-shot :class:`ParallelMap`; serial when the resolved count is 1."""
    with ParallelMap(workers=workers, chunksize=chunksize, min_items=min_items) as pm:
        return pm.map(fn, items)
