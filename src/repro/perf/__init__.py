"""Performance substrate: batch-parallel execution for the DFC hot paths.

The paper's thesis (sections 3 and 7) is that convergent encryption and
duplicate detection are cheap enough to run opportunistically on desktop
machines; this package is where the reproduction makes that true in wall
clock, not just in argument.  It provides:

- :class:`ParallelMap` / :func:`parallel_map` -- a process-pool map with a
  deterministic serial fallback, used by convergent batch encryption, corpus
  synthesis, and the DFC pipeline's per-file encrypt+fingerprint phase;
- :func:`resolve_workers` -- one interpretation of the ``workers`` knob for
  every subsystem (``DfcConfig.workers``, experiment CLIs, benchmarks).

Everything dispatched through this package must be *order-independent and
deterministic per item*, so parallel runs are byte-identical to serial runs;
see ``docs/PERFORMANCE.md``.
"""

from repro.perf.parallel import (
    ParallelMap,
    chunk_stats,
    collect_metrics,
    parallel_map,
    resolve_workers,
    set_default_workers,
)

__all__ = [
    "ParallelMap",
    "chunk_stats",
    "collect_metrics",
    "parallel_map",
    "resolve_workers",
    "set_default_workers",
]
