"""Fig. 15: CDF of machines by leaf table size at two system sizes.

Shape claims checked (paper section 5):
- Lambda = 1.5 shows a visible fraction of nearly empty leaf tables (join
  lossiness); larger Lambda shows fewer;
- tables at the large system size stochastically dominate the small one.
"""

import pytest

from benchmarks.conftest import report
from repro.experiments import fig15_leaftable_cdf
from repro.experiments.scales import PAPER_LAMBDAS


@pytest.mark.figure
def test_bench_fig15(benchmark, bench_scale, bench_seed, shared_growth):
    result = benchmark.pedantic(
        fig15_leaftable_cdf.run,
        args=(bench_scale, PAPER_LAMBDAS),
        kwargs={"seed": bench_seed, "growth": shared_growth},
        rounds=1,
        iterations=1,
    )
    report("Fig. 15: CDFs of machines by leaf table size", result.render())

    # Lossiness ordering: Lambda = 1.5 has at least as many nearly empty
    # tables as Lambda = 2.5 (paper: "significant (if small) fraction").
    assert result.nearly_empty_fraction(1.5) >= result.nearly_empty_fraction(2.5)

    # Larger systems have larger tables at every quartile.
    for lam in result.lambdas:
        small, large = result.cdfs_small[lam], result.cdfs_large[lam]
        assert large.quantile(0.5) >= small.quantile(0.5) * 0.9
        assert large.mean >= small.mean * 0.9
