"""Fig. 7: consumed space vs. minimum file size for coalescing.

Shape claims checked (paper section 5):
- consumed space is flat below ~4 KB and climbs toward the raw total;
- Lambda = 2.5 lands close to the ideal curve ("achieves nearly all
  possible space reclamation");
- larger Lambda never reclaims less.
"""

import pytest

from benchmarks.conftest import report
from repro.experiments import fig07_space_vs_minsize


@pytest.fixture(scope="module")
def sweep(shared_sweep):
    return shared_sweep


@pytest.mark.figure
def test_bench_fig07(benchmark, bench_scale, bench_seed, sweep):
    result = benchmark.pedantic(
        fig07_space_vs_minsize.run,
        args=(bench_scale,),
        kwargs={"seed": bench_seed, "sweep": sweep},
        rounds=1,
        iterations=1,
    )
    report("Fig. 7: consumed space vs. minimum file size", result.render())

    points = sweep.points
    ideal = sweep.ideal_consumed
    total = sweep.corpus_summary.total_bytes

    for lam in sweep.lambdas:
        consumed = [p.consumed_bytes for p in points[lam]]
        # Monotone non-decreasing in the threshold, bounded by the raw total.
        assert consumed == sorted(consumed)
        assert consumed[-1] <= total
        # Flat region: tiny thresholds change nothing measurable (<2%).
        assert consumed[1] - consumed[0] < 0.02 * total

    # Lambda ordering: more redundancy reclaims at least as much space.
    lams = sorted(sweep.lambdas)
    for low, high in zip(lams, lams[1:]):
        assert points[high][0].consumed_bytes <= points[low][0].consumed_bytes * 1.02

    # Lambda = 2.5 is near-ideal at no threshold (paper: "nearly all").
    best = max(sweep.lambdas)
    gap = points[best][0].consumed_bytes - ideal[0]
    reclaimable = total - ideal[0]
    assert gap <= 0.35 * reclaimable
