"""Fig. 12: CDF of machines by database size.

Shape claims checked (paper section 5): storage load distributions exist per
Lambda; skew comes primarily from machines disagreeing about W (the Eq. 6
step), visible as a wide spread between low and high quantiles.
"""

import pytest

from benchmarks.conftest import report
from repro.experiments import fig12_dbsize_cdf


@pytest.mark.figure
def test_bench_fig12(benchmark, bench_scale, bench_seed, shared_sweep):
    result = benchmark.pedantic(
        fig12_dbsize_cdf.run,
        args=(bench_scale,),
        kwargs={"seed": bench_seed, "sweep": shared_sweep},
        rounds=1,
        iterations=1,
    )
    report("Fig. 12: CDF of machines by database size", result.render())

    for label, cdf in result.cdfs.items():
        assert len(cdf) == bench_scale.machines
        assert cdf.mean > 0
        # A machine at the 90th percentile stores at least somewhat more
        # than one at the 10th -- the W-step skew the paper analyzes.
        assert cdf.quantile(0.9) >= cdf.quantile(0.1)

    for lam, cov in result.cov.items():
        assert cov < 1.5, (lam, cov)
