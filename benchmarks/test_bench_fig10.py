"""Fig. 10: CDF of machines by message count.

Shape claims checked (paper section 5): smooth load sharing with
coefficients of variation comparable to the paper's (0.64, 0.39, 0.39),
improving (or at least not degrading) as Lambda grows from 1.5.
"""

import pytest

from benchmarks.conftest import report
from repro.experiments import fig10_message_cdf


@pytest.mark.figure
def test_bench_fig10(benchmark, bench_scale, bench_seed, shared_sweep):
    result = benchmark.pedantic(
        fig10_message_cdf.run,
        args=(bench_scale,),
        kwargs={"seed": bench_seed, "sweep": shared_sweep},
        rounds=1,
        iterations=1,
    )
    report("Fig. 10: CDF of machines by message count", result.render())

    # Load balance: CoV in the paper's neighborhood (theirs: 0.39-0.64).
    for lam, cov in result.cov.items():
        assert 0.05 < cov < 1.2, (lam, cov)

    # The paper's trend: Lambda = 1.5 is at least as skewed as Lambda = 2.5.
    if 1.5 in result.cov and 2.5 in result.cov:
        assert result.cov[2.5] <= result.cov[1.5] * 1.3
