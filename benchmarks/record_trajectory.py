"""Record a performance-trajectory snapshot as ``BENCH_<date>.json``.

Usage::

    PYTHONPATH=src python benchmarks/record_trajectory.py [--output PATH]

Each snapshot captures throughput for the four hot paths the perf work
targets, with the seed's scalar implementations measured alongside the
current fast paths so every snapshot carries its own before/after ratio:

- ``aes_ctr``: bytes/sec encrypting 1 MiB in CTR mode -- the seed path
  (per-byte rounds, one block per call) vs the bulk vectorized path, plus
  the warm-keystream-cache repeat;
- ``fingerprints``: fingerprints/sec over 4 KiB blobs, per-item vs batched;
- ``salad_inserts``: records/sec routed to quiescence through a SALAD,
  plus messages per record (the Fig. 9 currency) under batched routing;
- ``salad_routing``: the same insert workload under the reference
  (per-axis scan) vs the indexed (next-hop cache) routing path, with the
  message totals asserted equal and the cache hit rate reported;
- ``sharded_inserts``: the insert workload on the single-process engine vs
  the sub-cube sharded multi-process engine, trace identity asserted before
  timing (sharding pays only with real cores; ``cpu_count`` is recorded);
- ``sharded_speedup``: multi-core scaling of the overlapped sharded engine
  at 1/2/4 workers (speedup ratios only on hosts with >= 2 CPUs, recorded
  as skipped otherwise) plus the binary-vs-pickle envelope-codec
  exchange-bytes reduction, which is core-count independent;
- ``flagship``: the flagship insert path -- amortized width maintenance and
  deferred (settle-round-coalesced) recalculation -- vs the pre-change
  full-scan path on a growth-heavy workload, trace/settled identity
  asserted before timing;
- ``topology_traffic``: the fig_topology path -- Zipf x Poisson publish
  waves over the corporate LAN/WAN topology with a mid-run wan cut --
  records/sec to quiescence plus the topology observables (quiescence
  ticks, per-class message split, cut losses, hot-cell stress);
- ``db_backends``: insert/lookup throughput per record-store backend
  (memory vs sqlite vs WAL vs the paging WAL), contract-identity asserted
  before timing;
- ``experiment_sweep``: wall seconds for a small threshold sweep, serial vs
  ``--workers 0``, with the consumed-space series asserted identical (the
  speedup only materializes on multi-core machines; ``cpu_count`` is
  recorded so single-core snapshots read honestly);
- ``pipeline``: wall seconds for an end-to-end DfcPipeline pass on a small
  corpus, serial vs parallel workers, with the reclaimed-byte accounting
  asserted identical;
- ``tradeoff``: the fig-tradeoff replication x dedup frontier -- reclaimed
  fraction and min file availability per (R, dedup) arm, the replica-set
  kill's blast radius (measured loss asserted equal to the analytic
  at-risk prediction), and the crashed stores' recovery (asserted to meet
  the durability prediction); ``check_regression.py`` holds the R=3 dedup
  arm above absolute floors.

``--smoke`` runs only the salad benchmarks -- inserts, routing, and the
sharded engine (the CI regression gate's input) -- plus the tradeoff
frontier, and writes wherever ``--output`` points.

Snapshots are append-only history: commit each new file, never overwrite an
old one -- a second snapshot on the same date gets a ``_2`` suffix.
``docs/PERFORMANCE.md`` explains how to read the numbers.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.core.fingerprint import fingerprint_many, fingerprint_of
from repro.crypto.aes import AES
from repro.crypto.modes import (
    BLOCK_SIZE,
    bulk_encrypt_ctr,
    encrypt_ctr_scalar,
    keystream_cache,
)
from repro.experiments.dfc_run import DfcConfig
from repro.farsite.dfc_pipeline import DfcPipeline
from repro.obs.registry import MetricsRegistry
from repro.obs.report import build_run_report, print_summary, write_run_report
from repro.obs.spans import phase
from repro.salad.records import SaladRecord
from repro.salad.salad import Salad, SaladConfig, set_detailed_metrics
from repro.workload.generator import CorpusSpec, generate_corpus

MIB = 1 << 20

#: Set by main() when --metrics-out is given; benches that can harvest engine
#: telemetry merge one representative run's registry into it.
_BENCH_REGISTRY = None

#: Per-worker registry dumps from the sharded bench (the RunReport's
#: ``shards`` section), captured when the sharded engine runs.
_SHARD_DUMPS = None


def _merge_bench_metrics(registry: MetricsRegistry) -> None:
    if _BENCH_REGISTRY is not None:
        _BENCH_REGISTRY.merge(registry)


def _best_of(fn, repeats: int = 3) -> float:
    """Best wall time over *repeats* runs (least-noise estimator)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _seed_encrypt_ctr(key: bytes, plaintext: bytes, nonce: int = 0) -> bytes:
    """The seed's CTR path: per-byte AES rounds, one block per call."""
    cipher = AES(key)
    out = bytearray()
    for offset in range(0, len(plaintext), BLOCK_SIZE):
        counter = (nonce + offset // BLOCK_SIZE) % (1 << 128)
        block = cipher.encrypt_block_scalar(counter.to_bytes(BLOCK_SIZE, "big"))
        chunk = plaintext[offset : offset + BLOCK_SIZE]
        out.extend(b ^ k for b, k in zip(chunk, block))
    return bytes(out)


def bench_aes_ctr() -> dict:
    key = bytes(range(16))
    payload = bytes(MIB)
    expected = encrypt_ctr_scalar(key, payload)
    assert _seed_encrypt_ctr(key, payload[: 4 * BLOCK_SIZE]) == expected[: 4 * BLOCK_SIZE]
    assert bulk_encrypt_ctr(key, payload) == expected

    seed_seconds = _best_of(lambda: _seed_encrypt_ctr(key, payload), repeats=1)

    def bulk_cold() -> bytes:
        keystream_cache().clear()  # else repeats would hit the cache
        return bulk_encrypt_ctr(key, payload)

    bulk_seconds = _best_of(bulk_cold)
    bulk_encrypt_ctr(key, payload)  # warm the (key, nonce) cache entry
    cached_seconds = _best_of(lambda: bulk_encrypt_ctr(key, payload))
    return {
        "payload_bytes": MIB,
        "seed_scalar_bytes_per_sec": MIB / seed_seconds,
        "bulk_bytes_per_sec": MIB / bulk_seconds,
        "bulk_cached_bytes_per_sec": MIB / cached_seconds,
        "speedup_bulk_over_seed": seed_seconds / bulk_seconds,
    }


def bench_fingerprints() -> dict:
    blobs = [bytes([i % 256]) * 4096 for i in range(512)]
    assert fingerprint_many(blobs) == [fingerprint_of(b) for b in blobs]
    per_item = _best_of(lambda: [fingerprint_of(b) for b in blobs])
    batched = _best_of(lambda: fingerprint_many(blobs))
    return {
        "blob_bytes": 4096,
        "count": len(blobs),
        "per_item_fingerprints_per_sec": len(blobs) / per_item,
        "batched_fingerprints_per_sec": len(blobs) / batched,
    }


def bench_salad_inserts(leaves: int = 64, records: int = 2000) -> dict:
    def build() -> Salad:
        salad = Salad(SaladConfig(dimensions=2, seed=7))
        salad.build(leaves)
        return salad

    salad = build()
    leaf_ids = [leaf.identifier for leaf in salad.alive_leaves()]
    batches = {
        leaf_ids[i % len(leaf_ids)]: [
            SaladRecord(
                fingerprint=fingerprint_of(b"trajectory:%d" % j),
                location=leaf_ids[i % len(leaf_ids)],
            )
            for j in range(i, records, len(leaf_ids))
        ]
        for i in range(len(leaf_ids))
    }

    def run() -> int:
        fresh = build()
        before = sum(fresh.message_totals())
        inserted = fresh.insert_records(batches)
        run.messages = sum(fresh.message_totals()) - before  # type: ignore[attr-defined]
        run.salad = fresh  # type: ignore[attr-defined]
        return inserted

    seconds = _best_of(run, repeats=2)
    _merge_bench_metrics(run.salad.collect_metrics(MetricsRegistry()))
    return {
        "leaves": leaves,
        "records": records,
        "inserts_per_sec": records / seconds,
        "messages_per_record": run.messages / records,
    }


def _insert_batches(salad: Salad, records: int) -> dict:
    """The bench_salad_inserts workload keyed to a built SALAD's leaf ids."""
    leaf_ids = [leaf.identifier for leaf in salad.alive_leaves()]
    return {
        leaf_ids[i % len(leaf_ids)]: [
            SaladRecord(
                fingerprint=fingerprint_of(b"trajectory:%d" % j),
                location=leaf_ids[i % len(leaf_ids)],
            )
            for j in range(i, records, len(leaf_ids))
        ]
        for i in range(len(leaf_ids))
    }


def bench_salad_routing(leaves: int = 64, records: int = 2000) -> dict:
    """Reference (per-axis scan) vs indexed (next-hop cache) routing.

    Both paths run the identical seeded workload; the message totals must
    match exactly (the golden-trace tests assert the stronger ordered
    property), so the ratio is a pure same-work speedup.
    """

    def build(reference: bool) -> Salad:
        salad = Salad(
            SaladConfig(dimensions=2, seed=7, reference_routing=reference)
        )
        salad.build(leaves)
        return salad

    batches = _insert_batches(build(False), records)
    state: dict = {}

    def run(reference: bool) -> None:
        fresh = build(reference)
        before = sum(fresh.message_totals())
        fresh.insert_records(batches)
        state["messages"] = sum(fresh.message_totals()) - before
        if not reference:
            # Rates come from the harvested telemetry registry -- the same
            # numbers a --metrics-out RunReport carries -- not from ad-hoc
            # leaf-attribute sums.
            registry = fresh.collect_metrics(MetricsRegistry())
            state["hits"] = registry.counter_value("salad.routing.next_hop_hits")
            state["misses"] = registry.counter_value("salad.routing.next_hop_misses")
            state["registry"] = registry

    reference_seconds = _best_of(lambda: run(True), repeats=2)
    reference_messages = state["messages"]
    indexed_seconds = _best_of(lambda: run(False), repeats=2)
    assert state["messages"] == reference_messages, "routing paths diverged"
    _merge_bench_metrics(state["registry"])
    lookups = state["hits"] + state["misses"]
    return {
        "leaves": leaves,
        "records": records,
        "reference_inserts_per_sec": records / reference_seconds,
        "indexed_inserts_per_sec": records / indexed_seconds,
        "speedup_indexed_over_reference": reference_seconds / indexed_seconds,
        "messages_per_record": state["messages"] / records,
        "next_hop_cache_hit_rate": state["hits"] / lookups if lookups else 0.0,
    }


def _sharded_batches(identifiers, records: int) -> dict:
    """The insert workload keyed by identifier (engine-neutral)."""
    return {
        identifiers[i % len(identifiers)]: [
            SaladRecord(
                fingerprint=fingerprint_of(b"sharded:%d" % j),
                location=identifiers[i % len(identifiers)],
            )
            for j in range(i, records, len(identifiers))
        ]
        for i in range(len(identifiers))
    }


def bench_sharded_inserts(leaves: int = 64, records: int = 2000, workers: int = 4) -> dict:
    """Single-process vs sub-cube sharded engine on one build+insert workload.

    Trace identity is asserted first (message counters and stored-record
    total must match exactly), so the two wall times measure the same work.
    Sharding only pays on multi-core machines: with one effective core the
    per-window barrier and pipe traffic make the sharded run *slower*, which
    is the honest number to record -- ``cpu_count`` says which regime a
    snapshot measured.
    """
    from repro.salad.sharded import ShardedSimulation, ShardingUnavailable

    def drive(sim):
        start = time.perf_counter()
        sim.build(leaves)
        sim.insert_records(_sharded_batches(sim.alive_identifiers(), records))
        seconds = time.perf_counter() - start
        observed = (sim.message_counters(), sim.total_stored_records())
        # Harvest before shutdown; for the sharded engine this exercises the
        # coordinator's per-worker registry merge (which returns the
        # per-shard dumps the RunReport's shards section carries).
        global _SHARD_DUMPS
        registry = MetricsRegistry()
        dumps = sim.collect_metrics(registry)
        if isinstance(dumps, list):
            _SHARD_DUMPS = dumps
        sim.shutdown()
        return seconds, observed, registry

    serial_seconds, serial_observed, serial_registry = drive(
        Salad(SaladConfig(dimensions=2, seed=7))
    )
    out = {
        "leaves": leaves,
        "records": records,
        "shard_workers": workers,
        "cpu_count": os.cpu_count() or 1,
        "serial_wall_seconds": serial_seconds,
        "serial_inserts_per_sec": records / serial_seconds,
    }
    try:
        sharded = ShardedSimulation(SaladConfig(dimensions=2, seed=7), workers=workers)
    except ShardingUnavailable as exc:
        out["sharded_unavailable"] = str(exc)
        _merge_bench_metrics(serial_registry)
        return out
    sharded_seconds, sharded_observed, sharded_registry = drive(sharded)
    assert sharded_observed == serial_observed, "sharded engine diverged"
    # One engine's worth of telemetry for the report (the merged sharded
    # registry, which already folded every worker's dump).
    _merge_bench_metrics(sharded_registry)
    out["sharded_wall_seconds"] = sharded_seconds
    out["sharded_inserts_per_sec"] = records / sharded_seconds
    out["speedup_sharded_over_serial"] = serial_seconds / sharded_seconds
    return out


def bench_sharded_speedup(leaves: int = 64, records: int = 2000) -> dict:
    """Multi-core scaling of the overlapped sharded engine, plus codec bytes.

    One seeded build+insert workload runs on the single-process engine and
    then on 2- and 4-worker sharded engines (binary envelope codec), with
    trace identity asserted before any ratio is computed.  ``speedup_N_workers``
    keys are emitted only on hosts with at least 2 CPUs -- on a single-core
    host the barrier-bound sharded run is honestly slower, so the snapshot
    records ``speedup_skipped`` (with the reason) instead of a meaningless
    ratio, and ``check_regression.py`` skips the speedup gate.

    A final 2-worker leg re-runs under the pickle codec (the pre-codec wire
    format, same cost model) so every snapshot carries its own
    exchange-bytes before/after: ``exchange_bytes_reduction`` is
    pickle-bytes over binary-bytes on identical traffic, core-count
    independent and therefore gated everywhere.
    """
    from repro.salad.sharded import ShardedSimulation, ShardingUnavailable

    def drive(sim):
        start = time.perf_counter()
        sim.build(leaves)
        sim.insert_records(_sharded_batches(sim.alive_identifiers(), records))
        seconds = time.perf_counter() - start
        observed = (sim.message_counters(), sim.total_stored_records())
        registry = MetricsRegistry()
        sim.collect_metrics(registry)
        exchange = registry.counter_value("salad.sharded.exchange_bytes") or 0
        sim.shutdown()
        return seconds, observed, exchange

    cpus = os.cpu_count() or 1
    serial_seconds, serial_observed, _ = drive(Salad(SaladConfig(dimensions=2, seed=7)))
    out: dict = {
        "leaves": leaves,
        "records": records,
        "cpu_count": cpus,
        "wall_seconds_1_worker": serial_seconds,
    }
    if cpus < 2:
        out["speedup_skipped"] = (
            f"host has {cpus} CPU(s); sharded speedup needs >= 2 cores to be "
            "meaningful, so speedup_N_workers keys are omitted"
        )

    for workers in (2, 4):
        try:
            sharded = ShardedSimulation(
                SaladConfig(dimensions=2, seed=7), workers=workers
            )
        except ShardingUnavailable as exc:
            out["sharded_unavailable"] = str(exc)
            return out
        seconds, observed, exchange = drive(sharded)
        assert observed == serial_observed, (
            f"{workers}-worker overlapped engine diverged from single-process"
        )
        out[f"wall_seconds_{workers}_workers"] = seconds
        out[f"exchange_bytes_{workers}_workers"] = exchange
        if cpus >= 2:
            out[f"speedup_{workers}_workers"] = serial_seconds / seconds

    try:
        pickled = ShardedSimulation(
            SaladConfig(dimensions=2, seed=7, envelope_codec="pickle"), workers=2
        )
    except ShardingUnavailable as exc:
        out["sharded_unavailable"] = str(exc)
        return out
    _, observed, pickle_bytes = drive(pickled)
    assert observed == serial_observed, "pickle-codec engine diverged"
    binary_bytes = out["exchange_bytes_2_workers"]
    out["exchange_bytes_binary"] = binary_bytes
    out["exchange_bytes_pickle"] = pickle_bytes
    out["exchange_bytes_reduction"] = (
        pickle_bytes / binary_bytes if binary_bytes else 0.0
    )
    return out


def bench_flagship(leaves: int = 512, records: int = 2048) -> dict:
    """Pre-change vs flagship width-maintenance path on a growth-heavy workload.

    Three legs over one seeded build+insert:

    - ``reference``: the pre-change path -- every committed width change
      re-derives its survivor set with a full leaf-table scan
      (``reference_width=True``), recalculation eager;
    - ``amortized``: the incrementally maintained survivor partition
      (today's default) -- trace-identical to ``reference`` (asserted on
      message totals), so the ratio is a pure same-work speedup;
    - ``flagship``: amortized plus ``deferred_width_recalc`` -- Fig. 6
      coalesced to settle-round boundaries, the flagship run's insert-path
      configuration.  Not trace-identical (documented knob), so the assert
      weakens to the settled observables: width distribution and stored
      records must match the eager legs.

    Growth wall-clock is reported separately from the full leg: width
    maintenance concentrates in the bulk-join storm, which is where the
    flagship path pays off.
    """
    state: dict = {}

    def drive(key: str, reference: bool, deferred: bool):
        def run() -> None:
            salad = Salad(
                SaladConfig(
                    dimensions=2,
                    seed=7,
                    reference_width=reference,
                    deferred_width_recalc=deferred,
                )
            )
            start = time.perf_counter()
            salad.build(leaves)
            state[f"{key}_growth"] = time.perf_counter() - start
            salad.insert_records(_insert_batches(salad, records))
            registry = salad.collect_metrics(MetricsRegistry())
            state[f"{key}_registry"] = registry
            state[f"{key}_observed"] = (
                sum(salad.message_totals()),
                salad.total_stored_records(),
            )
            state[f"{key}_widths"] = salad.width_distribution()

        seconds = _best_of(run, repeats=2)
        # _best_of re-runs the whole leg; growth time is from the best run's
        # last execution, close enough for a ratio between identical reruns.
        return seconds

    reference_seconds = drive("reference", reference=True, deferred=False)
    amortized_seconds = drive("amortized", reference=False, deferred=False)
    flagship_seconds = drive("flagship", reference=False, deferred=True)

    # The amortized partition is trace-identical to the scan oracle.
    assert state["amortized_observed"] == state["reference_observed"], (
        "amortized width path diverged from the reference scan"
    )
    # Deferral changes the trace (documented), so the settled cube can
    # differ in individual leaves; it must still be an equivalent-quality
    # cube -- same record placement totals, mean width within noise.
    def mean_width(widths: dict) -> float:
        total = sum(widths.values())
        return sum(w * n for w, n in widths.items()) / total if total else 0.0

    eager_stored = state["amortized_observed"][1]
    deferred_stored = state["flagship_observed"][1]
    assert abs(deferred_stored - eager_stored) <= 0.01 * eager_stored, (
        f"deferred width recalc changed record placement materially "
        f"({deferred_stored} vs {eager_stored} stored)"
    )
    assert (
        abs(mean_width(state["flagship_widths"]) - mean_width(state["amortized_widths"]))
        <= 0.1
    ), "deferred width recalc settled to a materially different cube"

    def counter(key: str, name: str) -> float:
        return state[f"{key}_registry"].counter_value(name) or 0

    assert counter("amortized", "salad.routing.survivor_scans") == 0
    assert counter("reference", "salad.routing.survivor_scans") > 0
    _merge_bench_metrics(state["flagship_registry"])
    return {
        "leaves": leaves,
        "records": records,
        "reference_wall_seconds": reference_seconds,
        "amortized_wall_seconds": amortized_seconds,
        "flagship_wall_seconds": flagship_seconds,
        "reference_growth_seconds": state["reference_growth"],
        "flagship_growth_seconds": state["flagship_growth"],
        "flagship_joins_per_sec": leaves / state["flagship_growth"],
        "speedup_amortized_over_reference": reference_seconds / amortized_seconds,
        "speedup_flagship_over_reference": reference_seconds / flagship_seconds,
        "growth_speedup_flagship_over_reference": state["reference_growth"]
        / state["flagship_growth"],
        "reference_survivor_scans": counter(
            "reference", "salad.routing.survivor_scans"
        ),
        "flagship_survivor_scans": counter(
            "flagship", "salad.routing.survivor_scans"
        ),
        "eager_width_recalcs": counter("amortized", "salad.width.recalcs"),
        "deferred_width_recalcs": counter("flagship", "salad.width.recalcs"),
    }


def bench_topology_traffic(leaves: int = 64, waves: int = 10, rate: float = 24.0) -> dict:
    """Skewed Zipf x Poisson traffic over the corporate LAN/WAN topology.

    Times the fig_topology insert path -- per-pair delays from the corporate
    preset (4 sites, wan ticks dominating), a mid-run site-0 wan cut, and a
    Zipf(1.1) publish stream whose hot contents concentrate into a few
    cells.  The headline rate is records/sec to quiescence; the rest of the
    section records the topology observables (quiescence time in virtual
    ticks, per-class message split, cut losses, hot-cell stress) so the
    trend surfaces behavioral drift, not just speed.
    """
    from dataclasses import replace

    from repro.experiments import fig_topology
    from repro.experiments.scales import SMALL
    from repro.workload.traffic import TrafficSpec

    scale = replace(SMALL, name="bench", machines=leaves)
    spec = TrafficSpec(contents=256, arrival_rate=rate, waves=waves)
    state: dict = {}

    def run() -> None:
        state["result"] = fig_topology.run(
            scale, seed=7, topology="corporate", traffic=spec
        )

    seconds = _best_of(run, repeats=2)
    result = state["result"]
    if _BENCH_REGISTRY is not None and result.metrics:
        _BENCH_REGISTRY.merge_dict(result.metrics)
    sent = {name: c["sent"] for name, c in result.class_messages.items()}
    return {
        "leaves": leaves,
        "waves": waves,
        "arrivals": result.arrivals,
        "records": result.records_inserted,
        "topology_inserts_per_sec": result.records_inserted / seconds,
        "quiescence_mean": result.quiescence_mean,
        "quiescence_max": result.quiescence_max,
        "rack_sent": sent.get("rack", 0),
        "lan_sent": sent.get("lan", 0),
        "wan_sent": sent.get("wan", 0),
        "wan_share": result.wan_share,
        "dropped_during_cut": result.dropped_during_cut,
        "hot_content_share": result.hot_content_share,
        "cell_stress": result.cell_stress,
    }


def bench_experiment_sweep() -> dict:
    """Small threshold sweep, serial vs all-core workers.

    Each Lambda is an independent simulation, so the sweep fans out across a
    process pool.  On a single-CPU machine (cpu_count == 1) the two times
    are the same run twice -- the recorded cpu_count says which regime a
    snapshot measured.
    """
    from repro.experiments.scales import SMALL
    from repro.experiments.threshold_sweep import run_threshold_sweep

    start = time.perf_counter()
    serial = run_threshold_sweep(SMALL, seed=0, workers=1)
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_threshold_sweep(SMALL, seed=0, workers=0)
    parallel_seconds = time.perf_counter() - start
    assert serial.consumed_series() == parallel.consumed_series(), (
        "parallel sweep changed the results"
    )
    return {
        "scale": "small",
        "lambdas": len(serial.lambdas),
        "cpu_count": os.cpu_count() or 1,
        "serial_wall_seconds": serial_seconds,
        "parallel_wall_seconds": parallel_seconds,
        "speedup_parallel_over_serial": serial_seconds / parallel_seconds,
    }


def bench_db_backends(records: int = 5000, lookups: int = 1000) -> dict:
    """Insert/lookup throughput per record-store backend.

    The durable backends trade throughput for a bounded RSS and crash
    recovery; this section records the price so the trade stays visible.
    Results are asserted contract-identical before timing.
    """
    import tempfile

    from repro.salad.storage import BACKENDS, make_record_store

    recs = [
        SaladRecord(fingerprint=fingerprint_of(b"db:%d" % i), location=i % 97)
        for i in range(records)
    ]
    probes = [r.fingerprint for r in recs[:lookups]]
    out: dict = {"records": records, "lookups": lookups}
    reference = None
    for backend in BACKENDS:
        with tempfile.TemporaryDirectory() as d:
            store = make_record_store(backend, db_dir=d, name="bench")
            # Inserts mutate, so time a single pass (repeats would measure
            # duplicate no-ops); lookups are pure and take the best-of.
            insert_seconds = _best_of(lambda: store.insert_many(recs), repeats=1)
            lookup_seconds = _best_of(lambda: [store.locations(fp) for fp in probes])
            final = [(r.sort_key(), r.location) for r in store.records()]
            if reference is None:
                reference = final
            assert final == reference, f"{backend} diverged from the contract"
            store.close()
        out[backend] = {
            "inserts_per_sec": records / insert_seconds,
            "lookups_per_sec": lookups / lookup_seconds,
        }
    return out


def bench_pipeline() -> dict:
    spec = CorpusSpec(machines=48, mean_files_per_machine=24.0)
    corpus = generate_corpus(spec, seed=3)

    def run(workers: int):
        pipeline = DfcPipeline(corpus, DfcConfig(seed=3, workers=workers))
        return pipeline.execute()

    start = time.perf_counter()
    serial = run(workers=1)
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run(workers=0)
    parallel_seconds = time.perf_counter() - start
    assert serial == parallel, "parallel pipeline changed the accounting"
    return {
        "machines": spec.machines,
        "total_bytes": serial.total_bytes,
        "physically_reclaimed": serial.physically_reclaimed,
        "serial_wall_seconds": serial_seconds,
        "parallel_wall_seconds": parallel_seconds,
    }


def bench_tradeoff() -> dict:
    """The fig-tradeoff frontier: replication x dedup durability vs space.

    Runs the full R in 1..4 sweep (both dedup arms) at small scale and
    records the frontier's gated observables.  Two invariants are asserted
    on every arm before anything is recorded: the replica-set kill's
    measured file loss equals the analytic at-risk count (any gap is
    replica bookkeeping corruption), and the crashed stores' recovered
    record fraction meets the durability prediction.
    """
    from repro.experiments import fig_tradeoff
    from repro.experiments.scales import SMALL

    state: dict = {}

    def run() -> None:
        state["result"] = fig_tradeoff.run(SMALL, seed=7)

    seconds = _best_of(run, repeats=1)
    result = state["result"]
    if _BENCH_REGISTRY is not None and result.metrics:
        _BENCH_REGISTRY.merge_dict(result.metrics)
    out: dict = {
        "machines": result.machines,
        "files": result.files,
        "sweep": list(result.sweep),
        "wall_seconds": seconds,
        "points_per_sec": len(result.points) / seconds,
    }
    for p in result.points:
        arm = f"r{p.replication}_{'dedup' if p.dedup else 'nodedup'}"
        assert p.loss_matches_prediction, (
            f"{arm}: measured loss {p.files_lost} != analytic at-risk "
            f"{p.files_at_risk} -- replica bookkeeping diverged"
        )
        assert p.recovery_meets_prediction, (
            f"{arm}: recovered {p.recovered_fraction:.3f} below durability "
            f"prediction {p.predicted_recovery:.3f}"
        )
        out[f"reclaimed_fraction_{arm}"] = p.reclaimed_fraction
        out[f"min_availability_{arm}"] = p.min_availability
        out[f"mean_availability_{arm}"] = p.mean_availability
        out[f"lost_fraction_{arm}"] = p.lost_fraction
        out[f"loss_event_probability_{arm}"] = p.loss_event_probability
    # The headline contrast: at the same R=3 kill budget, dedup loses the
    # whole group where the un-coalesced layout loses almost nothing.
    on, off = result.point(3, True), result.point(3, False)
    out["files_lost_r3_dedup"] = on.files_lost
    out["files_lost_r3_nodedup"] = off.files_lost
    out["blast_radius_ratio_r3"] = (
        on.files_lost / off.files_lost if off.files_lost else float(on.files_lost)
    )
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="snapshot path (default: BENCH_<today>.json in the repo root, "
        "suffixed _2, _3, ... rather than overwriting an existing snapshot)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run only the salad benchmarks (the CI regression gate's input)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write a RunReport (repro.obs: harvested metrics registry, "
        "per-bench phase tree, environment) as JSON and print a summary "
        "table on stderr; check_regression.py --metrics gates on it",
    )
    args = parser.parse_args(argv)
    global _BENCH_REGISTRY
    if args.metrics_out:
        _BENCH_REGISTRY = MetricsRegistry()
        # Record-flow counters are opt-in (they cost hot-path time, which
        # shows up in the recorded rates); asking for a report opts in.
        set_detailed_metrics(True)
    today = datetime.date.today().isoformat()
    if args.output:
        output = Path(args.output)
    else:
        root = Path(__file__).resolve().parent.parent
        output = root / f"BENCH_{today}.json"
        suffix = 2
        while output.exists():  # append-only history: never clobber
            output = root / f"BENCH_{today}_{suffix}.json"
            suffix += 1

    snapshot = {
        "date": today,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "results": {},
    }
    benches = [
        ("aes_ctr", bench_aes_ctr),
        ("fingerprints", bench_fingerprints),
        ("salad_inserts", bench_salad_inserts),
        ("salad_routing", bench_salad_routing),
        ("sharded_inserts", bench_sharded_inserts),
        ("sharded_speedup", bench_sharded_speedup),
        ("flagship", bench_flagship),
        ("topology_traffic", bench_topology_traffic),
        ("db_backends", bench_db_backends),
        ("experiment_sweep", bench_experiment_sweep),
        ("pipeline", bench_pipeline),
        ("tradeoff", bench_tradeoff),
    ]
    if args.smoke:
        benches = [
            ("salad_inserts", bench_salad_inserts),
            ("salad_routing", bench_salad_routing),
            ("sharded_inserts", bench_sharded_inserts),
            ("sharded_speedup", bench_sharded_speedup),
            ("flagship", bench_flagship),
            ("topology_traffic", bench_topology_traffic),
            ("tradeoff", bench_tradeoff),
        ]
    for name, bench in benches:
        print(f"[{name}] ...", flush=True)
        with phase(name):
            snapshot["results"][name] = bench()
        for key, value in snapshot["results"][name].items():
            rendered = f"{value:.3f}" if isinstance(value, float) else value
            print(f"  {key}: {rendered}")

    output.write_text(json.dumps(snapshot, indent=1) + "\n", encoding="utf-8")
    print(f"snapshot written to {output}")

    if args.metrics_out:
        # Fold in the module-level collectors (accumulated across benches).
        from repro import perf
        from repro.core import fingerprint as fingerprint_module
        from repro.crypto import modes

        modes.collect_metrics(_BENCH_REGISTRY)
        fingerprint_module.collect_metrics(_BENCH_REGISTRY)
        perf.collect_metrics(_BENCH_REGISTRY)
        report = build_run_report(
            _BENCH_REGISTRY,
            env={
                "benchmarks": ",".join(name for name, _ in benches),
                "smoke": args.smoke or None,
                "bench_snapshot": str(output),
            },
            shards=_SHARD_DUMPS,
        )
        write_run_report(args.metrics_out, report)
        print_summary(report)
        print(f"run report written to {args.metrics_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
