"""Fig. 9: mean messages per machine vs. minimum file size.

Shape claims checked (paper section 5):
- message traffic falls monotonically as the threshold rises;
- a ~4 KB threshold removes a large share of the traffic (paper: half)
  while Fig. 7 shows no measurable space cost;
- higher Lambda costs more messages.
"""

import pytest

from benchmarks.conftest import report
from repro.experiments import fig09_messages_vs_minsize


@pytest.mark.figure
def test_bench_fig09(benchmark, bench_scale, bench_seed, shared_sweep):
    result = benchmark.pedantic(
        fig09_messages_vs_minsize.run,
        args=(bench_scale,),
        kwargs={"seed": bench_seed, "sweep": shared_sweep},
        rounds=1,
        iterations=1,
    )
    report("Fig. 9: mean messages per machine vs. minimum file size", result.render())

    sweep = shared_sweep
    for lam in sweep.lambdas:
        series = [p.mean_messages for p in sweep.points[lam]]
        assert series == sorted(series, reverse=True)
        # Most record traffic disappears by the 32 KB threshold.
        idx_32k = list(sweep.thresholds).index(32_768)
        assert series[idx_32k] < 0.75 * series[0]

    # Lambda ordering: redundancy costs traffic.
    lams = sorted(sweep.lambdas)
    for low, high in zip(lams, lams[1:]):
        assert (
            sweep.points[high][0].mean_messages
            > sweep.points[low][0].mean_messages
        )
