"""Section 4.7 sybil-attack bench: Eq. 20 damage bound."""

import pytest

from benchmarks.conftest import report
from repro.experiments import attack_check


@pytest.mark.figure
def test_bench_attack(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        attack_check.run,
        args=(bench_scale,),
        kwargs={"seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    report("Section 4.7 attack resilience (Eq. 20)", result.render())

    # The attack degrades the victim's redundancy...
    assert result.attacked_measured < result.baseline_redundancy
    # ...but remains "fairly weak": redundancy does not collapse to zero.
    assert result.attacked_measured > 0.5
    # The victim's width never shrinks under table inflation.
    assert result.victim_width_after >= result.victim_width_before
