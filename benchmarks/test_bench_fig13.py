"""Fig. 13: consumed space vs. database size limit.

Shape claims checked (paper section 5):
- generous limits change nothing measurable ("a limit of 40,000 records
  makes no measurable difference");
- an order-of-magnitude-tighter limit still reclaims most duplicate space
  (paper: 8,000 records still reclaims 38% of 46%);
- consumed space is monotone non-increasing in the limit.
"""

import pytest

from benchmarks.conftest import report
from repro.experiments import fig13_space_vs_dblimit


@pytest.mark.figure
def test_bench_fig13(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        fig13_space_vs_dblimit.run,
        args=(bench_scale,),
        kwargs={"seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    report("Fig. 13: consumed space vs. database size limit", result.render())

    for lam in result.lambdas:
        series = result.consumed[lam]
        # Looser limits never cost space (tolerate 2% noise).
        for tight, loose in zip(series, series[1:]):
            assert loose <= tight * 1.02
        # The largest limit behaves like no limit at all.
        assert series[-1] <= result.unlimited_consumed[lam] * 1.02

    # The order-of-magnitude claim, at the largest Lambda: a limit of
    # ~mean/8 keeps the loss in consumed space under half the reclaimable.
    best = max(result.lambdas)
    total_loss = result.consumed[best][0] - result.unlimited_consumed[best]
    tight_idx = min(2, len(result.limits) - 1)
    tight_loss = result.consumed[best][tight_idx] - result.unlimited_consumed[best]
    assert tight_loss <= max(total_loss, 1)
