"""Fig. 14: mean leaf table size vs. system size.

Shape claims checked (paper section 5): the sqrt(L) growth of Eq. 13 --
quadrupling the system roughly doubles the tables -- with the measured means
tracking the analytic prediction.
"""

import pytest

from benchmarks.conftest import report
from repro.experiments import fig14_leaftable_vs_size
from repro.experiments.scales import PAPER_LAMBDAS
from repro.salad.model import expected_leaf_table_size


@pytest.mark.figure
def test_bench_fig14(benchmark, bench_scale, bench_seed, shared_growth):
    result = benchmark.pedantic(
        fig14_leaftable_vs_size.run,
        args=(bench_scale, PAPER_LAMBDAS),
        kwargs={"seed": bench_seed, "growth": shared_growth},
        rounds=1,
        iterations=1,
    )
    report("Fig. 14: mean leaf table size vs. system size", result.render())

    sizes = result.system_sizes
    for lam in result.lambdas:
        means = [snap.mean for snap in result.growth[lam].snapshots]
        # Growth: the largest system has clearly larger tables than the
        # smallest.
        assert means[-1] > means[0]
        # Sub-linear: growing L by a factor k grows T by well under k.
        k = sizes[-1] / sizes[0]
        assert means[-1] / max(means[0], 1) < 0.8 * k
        # Final mean tracks Eq. 13 within a factor band.
        predicted = expected_leaf_table_size(sizes[-1], lam, 2)
        assert 0.35 * predicted < means[-1] < 1.8 * predicted
