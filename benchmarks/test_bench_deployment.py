"""End-to-end deployment benchmark: the full DFC cycle with real bytes.

Not a paper figure; times the complete pipeline the paper describes in
section 1 -- convergent encryption, SALAD discovery, relocation, SIS
coalescing -- on a small deployment with materialized file contents.
"""

import pytest

from benchmarks.conftest import report
from repro.farsite.node import FarsiteDeployment

DOCUMENT = b"workgroup document " * 300
BINARY = b"application binary " * 500


def build_and_cycle():
    deployment = FarsiteDeployment(machine_count=12, replication_factor=2, seed=1)
    for name in ("ana", "ben", "cho", "dee"):
        user = deployment.create_user(name)
        client = deployment.client_for(user)
        client.write_file(f"/home/{name}/doc.txt", DOCUMENT)
        client.write_file(f"/home/{name}/app.bin", BINARY)
    return deployment.run_dfc_cycle()


@pytest.mark.figure
def test_bench_full_dfc_cycle(benchmark):
    result = benchmark.pedantic(build_and_cycle, rounds=1, iterations=1)
    report(
        "Full DFC cycle (4 users x 2 shared files, R=2, 12 machines)",
        f"published={result.records_published} groups={result.duplicate_groups} "
        f"migrations={result.migrations} moved={result.bytes_moved:,}B "
        f"logical={result.logical_bytes:,}B physical={result.physical_bytes:,}B "
        f"reclaimed={result.reclaimed_bytes:,}B",
    )
    assert result.duplicate_groups >= 1
    assert result.reclaimed_bytes > 0
    # 4 copies x 2 replicas of each file: at least half the logical bytes
    # are duplicates that coalescing should reclaim.
    assert result.reclaimed_bytes >= 0.4 * result.logical_bytes
