"""Benchmark configuration.

Each ``test_bench_figXX.py`` regenerates one table/figure from the paper's
section 5: the benchmarked callable runs the experiment, and the rendered
rows are printed after the timing so ``pytest benchmarks/ --benchmark-only``
doubles as the reproduction report.

Scale: benchmarks default to the ``small`` experiment scale so the whole
suite finishes in a few minutes.  Set ``REPRO_BENCH_SCALE=default`` (or
``full`` for the paper's 585-machine / 10,000-leaf sizes) to rescale.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.scales import get_scale


def pytest_configure(config):
    config.addinivalue_line("markers", "figure: paper figure reproduction benchmark")


@pytest.fixture(scope="session")
def bench_scale():
    return get_scale(os.environ.get("REPRO_BENCH_SCALE", "small"))


@pytest.fixture(scope="session")
def bench_seed():
    return int(os.environ.get("REPRO_BENCH_SEED", "0"))


@pytest.fixture(scope="session")
def shared_sweep(bench_scale, bench_seed):
    """The threshold sweep shared by the Fig. 7/9/10/11/12 benchmarks."""
    from repro.experiments.threshold_sweep import run_threshold_sweep

    return run_threshold_sweep(bench_scale, seed=bench_seed)


@pytest.fixture(scope="session")
def shared_growth(bench_scale, bench_seed):
    """The growth suite shared by the Fig. 14/15 benchmarks."""
    from repro.experiments.growth import growth_sample_points, run_growth_suite
    from repro.experiments.scales import PAPER_LAMBDAS

    sample_sizes = sorted(
        set(growth_sample_points(bench_scale.growth_max_leaves))
        | {bench_scale.fig15_small, bench_scale.fig15_large}
    )
    return run_growth_suite(
        PAPER_LAMBDAS, bench_scale.growth_max_leaves, sample_sizes, seed=bench_seed
    )


def report(title: str, body: str) -> None:
    """Print a figure's rendered rows under a visible banner."""
    print(f"\n{'-' * 72}\n{title}\n{body}\n{'-' * 72}")
