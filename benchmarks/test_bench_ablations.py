"""Ablation benchmarks: block granularity and SALAD dimensionality.

Extensions beyond the paper's figures; see DESIGN.md.  The block ablation
quantifies the whole-file granularity choice against its LBFS-style
alternative; the dimensionality ablation measures the section 4.3/4.7
trade-off the paper states qualitatively.
"""

import pytest

from benchmarks.conftest import report
from repro.experiments import ablation_blocks, ablation_dimensionality


@pytest.mark.figure
def test_bench_ablation_blocks(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        ablation_blocks.run,
        args=(bench_scale,),
        kwargs={"seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    report("Ablation: whole-file vs. block-level coalescing", result.render())

    # Whole-file coalescing reclaims nothing across edited versions...
    assert result.reclaimed_fraction("whole-file") < 0.05
    # ...fixed blocks reclaim a majority...
    assert result.reclaimed_fraction("fixed-block") > 0.4
    # ...and content-defined chunking beats fixed blocks (insertions).
    assert (
        result.reclaimed_fraction("content-defined")
        > result.reclaimed_fraction("fixed-block")
    )


@pytest.mark.figure
def test_bench_ablation_dimensionality(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        ablation_dimensionality.run,
        args=(bench_scale,),
        kwargs={"seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    report("Ablation: SALAD dimensionality trade-off", result.render())

    dims = result.dimensions
    # Leaf tables shrink with D (the reason to raise D)...
    tables = [result.mean_leaf_table[d] for d in dims]
    assert tables == sorted(tables, reverse=True)
    # ...while per-record routing traffic grows with D (part of the cost).
    messages = [result.record_messages[d] for d in dims]
    assert messages == sorted(messages)
    # Eq. 14's loss prediction grows with D.
    losses = [result.predicted_loss[d] for d in dims]
    assert losses == sorted(losses)
