"""Dataset-statistics table (paper section 5 in-text numbers)."""

import pytest

from benchmarks.conftest import report
from repro.experiments import dataset_stats


@pytest.mark.figure
def test_bench_dataset_stats(benchmark, bench_scale, bench_seed):
    result = benchmark(dataset_stats.run, bench_scale, bench_seed)
    rendered = result.render()
    report("Dataset statistics (paper: 46% duplicate bytes)", rendered)

    summary = result.summary
    # The shape claims the rest of the evaluation depends on.  Byte
    # fractions are heavy-tail statistics: tiny corpora undersample both the
    # Zipf duplication tail and the lognormal size tail, so the band widens
    # below ~200 machines (the calibrated band holds at default/full scale).
    if bench_scale.machines >= 200:
        assert 0.36 <= summary.duplicate_byte_fraction <= 0.56
    else:
        assert 0.12 <= summary.duplicate_byte_fraction <= 0.60
    assert 0.25 <= 1 - summary.duplicate_file_fraction <= 0.55
