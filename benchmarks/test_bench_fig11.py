"""Fig. 11: mean database size vs. minimum file size.

Shape claims checked (paper section 5): database sizes fall monotonically
with the threshold (record counts track file counts, dominated by small
files), and scale with Lambda (Eq. 8: R = lambda * F / L).
"""

import pytest

from benchmarks.conftest import report
from repro.experiments import fig11_dbsize_vs_minsize
from repro.salad.model import expected_records_per_leaf


@pytest.mark.figure
def test_bench_fig11(benchmark, bench_scale, bench_seed, shared_sweep):
    result = benchmark.pedantic(
        fig11_dbsize_vs_minsize.run,
        args=(bench_scale,),
        kwargs={"seed": bench_seed, "sweep": shared_sweep},
        rounds=1,
        iterations=1,
    )
    report("Fig. 11: mean database size vs. minimum file size", result.render())

    sweep = shared_sweep
    for lam in sweep.lambdas:
        series = [p.mean_database_records for p in sweep.points[lam]]
        assert series == sorted(series, reverse=True)
        # At the largest threshold nearly nothing is stored.
        assert series[-1] < 0.1 * series[0]

    # Eq. 8 magnitude check at no threshold, for the middle Lambda.
    lam = sorted(sweep.lambdas)[len(sweep.lambdas) // 2]
    predicted = expected_records_per_leaf(
        sweep.corpus_summary.machine_count, sweep.corpus_summary.total_files, lam
    )
    measured = sweep.points[lam][0].mean_database_records
    assert 0.4 * predicted < measured < 2.5 * predicted
