"""ParallelMap chunking properties and multi-core speedup regression.

The chunk-heuristic assertions run everywhere; the wall-clock speedup
assertions need real cores and are skipped on machines with fewer than 4
CPUs (a single-core container can only measure pool overhead, not
parallelism).
"""

import os
import time

import pytest

from repro.experiments.scales import SMALL
from repro.experiments.threshold_sweep import run_threshold_sweep
from repro.farsite.dfc_pipeline import DfcPipeline
from repro.experiments.dfc_run import DfcConfig
from repro.perf.parallel import (
    MIN_CHUNK_ITEMS,
    MIN_PARALLEL_ITEMS,
    ParallelMap,
    parallel_map,
    resolve_workers,
)
from repro.workload.generator import CorpusSpec, generate_corpus

needs_cores = pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="speedup only materializes with >= 4 CPUs",
)


class TestChunkHeuristic:
    def _sizes(self, n, workers):
        pm = ParallelMap(workers=workers)
        chunks = pm._chunks(list(range(n)))
        assert [x for c in chunks for x in c] == list(range(n))  # order kept
        return [len(c) for c in chunks]

    def test_large_inputs_get_four_chunks_per_worker(self):
        sizes = self._sizes(4096, workers=4)
        assert len(sizes) == 16
        assert all(s == 256 for s in sizes)

    def test_mid_inputs_do_not_degenerate_to_tiny_chunks(self):
        # The old ceil(n / 4w) rule gave 60/16 -> 4-item chunks here; the
        # floor keeps chunks at MIN_CHUNK_ITEMS so dispatch cost stays
        # amortized.
        sizes = self._sizes(60, workers=4)
        assert min(sizes[:-1], default=sizes[-1]) >= min(MIN_CHUNK_ITEMS, 60 // 4)
        assert max(sizes) <= MIN_CHUNK_ITEMS

    def test_small_inputs_still_occupy_every_worker(self):
        # Flooring must not starve workers: 8 coarse items on 4 workers
        # should produce >= 4 chunks, not one 8-item chunk.
        sizes = self._sizes(8, workers=4)
        assert len(sizes) >= 4

    def test_explicit_chunksize_wins(self):
        pm = ParallelMap(workers=4, chunksize=5)
        assert [len(c) for c in pm._chunks(list(range(17)))] == [5, 5, 5, 2]

    def test_empty_input_yields_no_chunks(self):
        assert ParallelMap(workers=4)._chunks([]) == []
        assert parallel_map(_square, [], workers=4) == []

    def test_single_item_is_one_chunk(self):
        assert self._sizes(1, workers=4) == [1]

    def test_just_past_pool_gate_still_feeds_every_worker(self):
        # The first input sizes that actually reach a pool (just above
        # MIN_PARALLEL_ITEMS) must neither starve workers nor degenerate
        # to single-item chunks.
        for n in (MIN_PARALLEL_ITEMS, MIN_PARALLEL_ITEMS + 1):
            sizes = self._sizes(n, workers=4)
            assert len(sizes) >= 4
            assert min(sizes[:-1], default=sizes[-1]) > 1

    def test_min_items_gate_overridable(self):
        # Two coarse items justify a pool when the caller says so.
        pm = ParallelMap(workers=1, min_items=2)
        assert pm.map(lambda x: x * 2, [1, 2]) == [2, 4]
        out = parallel_map(lambda x: x + 1, [1, 2, 3], workers=1, min_items=2)
        assert out == [2, 3, 4]


class TestResolveWorkers:
    def test_bool_rejected(self):
        # bool subclasses int: workers=True would otherwise mean a
        # 1-worker pool, silently swallowing a flag passed by mistake.
        with pytest.raises(TypeError):
            resolve_workers(True)
        with pytest.raises(TypeError):
            resolve_workers(False)

    def test_non_int_rejected(self):
        with pytest.raises(TypeError):
            resolve_workers(2.0)
        with pytest.raises(TypeError):
            resolve_workers("4")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_zero_means_cpu_count(self):
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_positive_passthrough(self):
        assert resolve_workers(3) == 3


def _square(x):
    return x * x


def _spin(seconds):
    deadline = time.perf_counter() + seconds
    n = 0
    while time.perf_counter() < deadline:
        n += 1
    return n


class TestParallelSpeedup:
    @needs_cores
    def test_map_speedup_on_cpu_bound_items(self):
        items = [0.05] * 16  # 0.8s serial work

        start = time.perf_counter()
        serial = parallel_map(_spin, items, workers=1)
        serial_seconds = time.perf_counter() - start

        start = time.perf_counter()
        parallel = parallel_map(_spin, items, workers=4, min_items=2)
        parallel_seconds = time.perf_counter() - start

        assert len(serial) == len(parallel) == len(items)
        assert serial_seconds / parallel_seconds > 1.5

    @needs_cores
    def test_pipeline_speedup(self):
        corpus = generate_corpus(
            CorpusSpec(machines=48, mean_files_per_machine=24.0), seed=3
        )

        def run(workers):
            pipeline = DfcPipeline(corpus, DfcConfig(seed=3, workers=workers))
            return pipeline.execute()

        start = time.perf_counter()
        serial = run(1)
        serial_seconds = time.perf_counter() - start
        start = time.perf_counter()
        parallel = run(4)
        parallel_seconds = time.perf_counter() - start
        assert serial == parallel
        assert serial_seconds / parallel_seconds > 1.5

    @needs_cores
    def test_sweep_speedup(self):
        start = time.perf_counter()
        serial = run_threshold_sweep(SMALL, seed=0, workers=1)
        serial_seconds = time.perf_counter() - start
        start = time.perf_counter()
        parallel = run_threshold_sweep(SMALL, seed=0, workers=4)
        parallel_seconds = time.perf_counter() - start
        assert serial.consumed_series() == parallel.consumed_series()
        assert serial_seconds / parallel_seconds > 1.5


class TestParallelCorrectness:
    """Result identity holds in every environment, cores or not."""

    def test_map_results_match_serial(self):
        items = list(range(100))
        assert parallel_map(_square, items, workers=2) == [x * x for x in items]

    def test_sweep_results_match_serial(self):
        serial = run_threshold_sweep(SMALL, seed=0, workers=1)
        parallel = run_threshold_sweep(SMALL, seed=0, workers=2)
        assert serial.consumed_series() == parallel.consumed_series()
        assert serial.message_series() == parallel.message_series()
