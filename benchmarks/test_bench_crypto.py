"""Crypto microbenchmarks: the primitives every DFC operation pays for.

Not a paper figure; quantifies the substrate so the figure benches'
absolute times are interpretable.
"""

import random

import pytest

from repro.core.convergent import convergent_encrypt
from repro.core.fingerprint import fingerprint_many
from repro.core.keyring import User
from repro.crypto.aes import AES
from repro.crypto.hashing import content_hash, convergence_key
from repro.crypto.modes import bulk_encrypt_ctr, encrypt_ctr, encrypt_ctr_scalar

KEY = bytes(range(16))
BLOCK = bytes(range(16))
PAYLOAD = bytes(256) * 16  # 4 KiB, the paper's pivotal file size
PAYLOAD_1M = bytes(1024) * 1024  # 1 MiB, the bulk-path showcase size


def test_bench_aes_block(benchmark):
    cipher = AES(KEY)
    benchmark(cipher.encrypt_block, BLOCK)


def test_bench_aes_block_scalar(benchmark):
    """The seed's per-byte rounds; the T-table baseline comparison."""
    cipher = AES(KEY)
    benchmark(cipher.encrypt_block_scalar, BLOCK)


def test_bench_ctr_4k(benchmark):
    benchmark(encrypt_ctr, KEY, PAYLOAD)


def test_bench_ctr_4k_scalar(benchmark):
    """The seed's block-at-a-time CTR; the vectorized baseline comparison."""
    benchmark(encrypt_ctr_scalar, KEY, PAYLOAD)


def test_bench_bulk_ctr_1m(benchmark):
    benchmark(bulk_encrypt_ctr, KEY, PAYLOAD_1M)


def test_bench_fingerprint_many_4k(benchmark):
    contents = [PAYLOAD] * 64
    benchmark(fingerprint_many, contents)


def test_bench_sha_fingerprint_4k(benchmark):
    benchmark(content_hash, PAYLOAD)


def test_bench_convergence_key_4k(benchmark):
    benchmark(convergence_key, PAYLOAD)


@pytest.fixture(scope="module")
def user():
    return User.create("bench", rng=random.Random(0))


def test_bench_convergent_encrypt_4k(benchmark, user):
    rng = random.Random(1)
    benchmark(convergent_encrypt, PAYLOAD, {"bench": user.public_key}, rng)


def test_bench_rsa_unlock(benchmark, user):
    locked = user.public_key.encrypt(convergence_key(PAYLOAD), rng=random.Random(2))
    benchmark(user.unlock_hash_key, locked)
