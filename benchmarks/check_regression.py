"""Fail when a fresh benchmark snapshot regresses against committed history.

Usage::

    PYTHONPATH=src python benchmarks/record_trajectory.py --smoke --output /tmp/smoke.json
    python benchmarks/check_regression.py /tmp/smoke.json
    python benchmarks/check_regression.py --trend

Gates every hot-path section -- salad insert routing, indexed routing,
the sharded multi-process engine (including its multi-core speedup and the
binary envelope codec's exchange-bytes reduction), bulk AES-CTR, batched
fingerprinting -- against the newest committed
``BENCH_*.json`` in the repo root, exiting nonzero when any gated metric
falls more than ``--tolerance`` (default 30%) below its baseline.  A metric
missing from either side (e.g. a ``--smoke`` snapshot carries only the
salad sections, and older baselines predate some sections) is reported as
skipped, never failed.  The wide tolerance absorbs machine-to-machine
variance (the committed baselines and the CI runner are different
hardware); the gate exists to catch order-of-magnitude regressions -- an
accidental fallback to an O(D) per-record scan, a broken cache, a
de-vectorized kernel -- not single-digit noise.  Snapshot history is
append-only, so the baseline automatically advances whenever a PR commits a
new snapshot.

``--trend`` prints the gated metrics across the whole dated snapshot
series instead of gating, so a slow drift that stays inside the per-PR
tolerance is still visible.

``--metrics REPORT.json`` gates *behavioral* rates derived from a RunReport
(``record_trajectory.py --metrics-out`` / ``repro-experiments
--metrics-out`` / ``repro.experiments.flagship --metrics-out``) rather than
wall-clock throughput: the routing next-hop cache hit rate must stay above
a floor, mean hops per record must stay within the 2D bound of the paper's
Fig. 4 routing, and survivor scans must stay within one per committed width
change (the amortized width path's bound; the flagship configuration scans
zero times).  Absolute counters need no baseline snapshot, so these gates
are machine-independent.  A rate whose inputs are absent from the report is
skipped, never failed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Gated metrics as (section, key, short label) -- one per hot path.
GATED_METRICS = (
    ("salad_inserts", "inserts_per_sec", "salad ins/s"),
    ("salad_routing", "indexed_inserts_per_sec", "indexed ins/s"),
    ("sharded_inserts", "sharded_inserts_per_sec", "sharded ins/s"),
    ("sharded_speedup", "speedup_2_workers", "speedup 2w"),
    ("sharded_speedup", "exchange_bytes_reduction", "codec reduc"),
    ("topology_traffic", "topology_inserts_per_sec", "topo ins/s"),
    ("flagship", "flagship_joins_per_sec", "flagship joins/s"),
    ("aes_ctr", "bulk_bytes_per_sec", "aes B/s"),
    ("fingerprints", "batched_fingerprints_per_sec", "fprint/s"),
    ("tradeoff", "points_per_sec", "tradeoff pts/s"),
)

#: Absolute floors on snapshot values -- machine-independent behavioral
#: quantities the fresh snapshot must clear regardless of any baseline.
#: (section, key, floor, short label); a key absent from the fresh snapshot
#: is skipped, never failed (e.g. a --smoke snapshot without the section,
#: or baselines that predate it).  The tradeoff floors hold the R=3 dedup
#: arm of the fig-tradeoff frontier honest: availability-driven placement
#: must keep the worst file's availability comfortably above a single
#: host's, and coalescing must actually reclaim duplicate bytes.
ABSOLUTE_FLOORS = (
    ("tradeoff", "min_availability_r3_dedup", 0.55, "minAvail r3 dedup"),
    ("tradeoff", "reclaimed_fraction_r3_dedup", 0.05, "reclaimed r3 dedup"),
)

#: Metrics whose wall-clock depends on how many cores the barrier-synced
#: worker processes actually got, mapped to the cores the measurement
#: needs: a section field naming the worker count (str) or a literal
#: count (int).  Such a metric is skipped when the snapshots' cpu_counts
#: differ (comparing hardware, not code) and when the host has fewer
#: cores than the benchmark has workers -- an oversubscribed multi-process
#: wall-clock measures context-switch scheduling, which swings far past
#: the tolerance run-to-run with the code unchanged.  ``--trend`` still
#: prints the values, so drift stays visible.  Per-metric rather than
#: per-section: sharded_speedup's exchange-bytes reduction is a byte
#: count ratio on identical traffic, comparable on any host, while its
#: speedup ratios are core-bound.
CORE_SENSITIVE_METRICS = {
    ("sharded_inserts", "sharded_inserts_per_sec"): "shard_workers",
    ("sharded_speedup", "speedup_2_workers"): 2,
}


def snapshot_cpu_count(path: Path) -> Optional[int]:
    snapshot = json.loads(path.read_text(encoding="utf-8"))
    value = snapshot.get("cpu_count")
    return int(value) if value is not None else None


def snapshot_series(exclude: Optional[Path] = None) -> List[Path]:
    """All committed snapshots, oldest first (dated names sort chronologically)."""
    return sorted(
        p
        for p in REPO_ROOT.glob("BENCH_*.json")
        if exclude is None or p.resolve() != exclude.resolve()
    )


def newest_baseline(exclude: Path) -> Path:
    candidates = snapshot_series(exclude=exclude)
    if not candidates:
        raise FileNotFoundError(f"no BENCH_*.json baselines in {REPO_ROOT}")
    return candidates[-1]


def read_metric_raw(path: Path, section: str, key: str):
    """The raw snapshot entry (any JSON type), or None when absent."""
    snapshot = json.loads(path.read_text(encoding="utf-8"))
    return snapshot.get("results", {}).get(section, {}).get(key)


def read_metric(path: Path, section: str, key: str) -> Optional[float]:
    """The metric's value, or None when the snapshot doesn't carry it."""
    try:
        return float(read_metric_raw(path, section, key))
    except (KeyError, TypeError, ValueError):
        return None


def read_recorded_skip(path: Path, section: str, key: str) -> Optional[str]:
    """Why a snapshot deliberately withheld *key*, or None.

    The speedup bench records ``speedup_skipped`` (e.g. "single-core host")
    instead of a meaningless oversubscribed ratio.  A recorded skip is a
    decision made at measurement time -- distinct from a metric that is
    merely absent because the section predates it or wasn't run.
    """
    if not key.startswith("speedup"):
        return None
    recorded = read_metric_raw(path, section, "speedup_skipped")
    return recorded if isinstance(recorded, str) else None


def check(fresh_path: Path, tolerance: float) -> int:
    baseline_path = newest_baseline(exclude=fresh_path)
    print(f"baseline {baseline_path.name}  vs  fresh {fresh_path.name}")
    failures: List[str] = []
    gated = 0
    fresh_cpus = snapshot_cpu_count(fresh_path)
    baseline_cpus = snapshot_cpu_count(baseline_path)
    for section, key, label in GATED_METRICS:
        fresh = read_metric(fresh_path, section, key)
        baseline = read_metric(baseline_path, section, key)
        name = f"{section}.{key}"
        if fresh is None or baseline is None:
            where = "fresh" if fresh is None else "baseline"
            reason = f"absent from {where} snapshot"
            if fresh is None:
                # The bench records *why* it withheld the ratio (single-core
                # host); surface that instead of a bare "absent".
                recorded = read_recorded_skip(fresh_path, section, key)
                if recorded is not None:
                    reason = f"recorded skip: {recorded}"
            print(f"  skip  {name} ({reason})")
            continue
        cores_needed = CORE_SENSITIVE_METRICS.get((section, key))
        if cores_needed is not None and fresh_cpus is not None:
            if baseline_cpus is not None and fresh_cpus != baseline_cpus:
                print(
                    f"  skip  {name} (cpu_count {fresh_cpus} vs baseline "
                    f"{baseline_cpus}: core-sensitive wall-clock is not comparable)"
                )
                continue
            if isinstance(cores_needed, str):
                cores_needed = read_metric(fresh_path, section, cores_needed) or 2
            if fresh_cpus < cores_needed:
                print(
                    f"  skip  {name} (host has {fresh_cpus} core(s) for a "
                    f"{cores_needed:g}-worker benchmark: oversubscribed "
                    "wall-clock measures scheduling, not code)"
                )
                continue
        gated += 1
        floor = baseline * (1.0 - tolerance)
        verdict = "ok  " if fresh >= floor else "FAIL"
        print(
            f"  {verdict}  {name}: {fresh:,.0f}"
            f" (baseline {baseline:,.0f}, floor {floor:,.0f})"
        )
        if fresh < floor:
            failures.append(name)
    for section, key, floor, label in ABSOLUTE_FLOORS:
        fresh = read_metric(fresh_path, section, key)
        name = f"{section}.{key}"
        if fresh is None:
            print(f"  skip  {name} (absent from fresh snapshot)")
            continue
        gated += 1
        verdict = "ok  " if fresh >= floor else "FAIL"
        print(f"  {verdict}  {name}: {fresh:.3f} (absolute floor {floor})")
        if fresh < floor:
            failures.append(name)
    if not gated:
        print("FAIL: no gated metric present in both snapshots")
        return 1
    if failures:
        print(f"FAIL: regressed past {tolerance:.0%} tolerance: {', '.join(failures)}")
        return 1
    print("OK")
    return 0


#: Floor for the indexed-routing next-hop cache hit rate; the cache is the
#: whole point of the indexed routing path, and healthy runs sit above 0.9.
MIN_NEXT_HOP_HIT_RATE = 0.5


def _report_entry(report: dict, section: str, name: str) -> Optional[float]:
    """An unlabeled counter/gauge value from a RunReport, or None if absent."""
    for entry in report.get("metrics", {}).get(section, ()):
        if entry.get("name") == name and not entry.get("labels"):
            return entry.get("value")
    return None


def _labeled_entry(
    report: dict, section: str, name: str, **labels: str
) -> Optional[float]:
    """A labeled counter/gauge value from a RunReport, or None if absent."""
    for entry in report.get("metrics", {}).get(section, ()):
        if entry.get("name") == name and entry.get("labels") == labels:
            return entry.get("value")
    return None


def check_metrics(report_path: Path) -> int:
    """Gate behavioral rates derived from a RunReport (no baseline needed).

    The rates are machine-independent consequences of the routing design:
    Fig. 4 delivers every record within 2D hops, and the next-hop cache
    must actually absorb lookups.  Skip-if-absent mirrors the snapshot
    gates -- a report from a run that never routed records gates nothing.
    """
    report = json.loads(report_path.read_text(encoding="utf-8"))
    print(f"metrics gates on {report_path.name}")
    failures: List[str] = []
    gated = 0

    hits = _report_entry(report, "counters", "salad.routing.next_hop_hits")
    misses = _report_entry(report, "counters", "salad.routing.next_hop_misses")
    if hits is None or misses is None or not hits + misses:
        print("  skip  next_hop_cache_hit_rate (no routing lookups in report)")
    else:
        gated += 1
        rate = hits / (hits + misses)
        verdict = "ok  " if rate >= MIN_NEXT_HOP_HIT_RATE else "FAIL"
        print(
            f"  {verdict}  next_hop_cache_hit_rate: {rate:.3f}"
            f" (floor {MIN_NEXT_HOP_HIT_RATE})"
        )
        if rate < MIN_NEXT_HOP_HIT_RATE:
            failures.append("next_hop_cache_hit_rate")

    hops = _report_entry(report, "counters", "salad.records.hops")
    arrivals = _report_entry(report, "counters", "salad.records.arrivals")
    dimensions = _report_entry(report, "gauges", "salad.config.dimensions")
    if hops is None or not arrivals or not dimensions:
        print("  skip  hops_per_record (no record arrivals in report)")
    else:
        gated += 1
        mean_hops = hops / arrivals
        ceiling = 2.0 * dimensions
        verdict = "ok  " if mean_hops <= ceiling else "FAIL"
        print(
            f"  {verdict}  hops_per_record: {mean_hops:.3f}"
            f" (ceiling 2D = {ceiling:g})"
        )
        if mean_hops > ceiling:
            failures.append("hops_per_record")

    scans = _report_entry(report, "counters", "salad.routing.survivor_scans")
    width_changes = _report_entry(report, "counters", "salad.width.changes")
    if scans is None or width_changes is None:
        print("  skip  survivor_scans_per_width_change (no width telemetry)")
    else:
        # The amortized width path derives the dropped set incrementally, so
        # a healthy run scans at most once per committed width change (the
        # reference oracle's rate) and the flagship path not at all.  A
        # regression to per-join scanning blows past this bound by orders of
        # magnitude at any real scale.
        gated += 1
        bound = max(width_changes, 1)
        verdict = "ok  " if scans <= bound else "FAIL"
        print(
            f"  {verdict}  survivor_scans: {scans:,.0f}"
            f" (bound: width_changes = {width_changes:,.0f})"
        )
        if scans > bound:
            failures.append("survivor_scans")

    # The fig-tradeoff frontier's R=3 dedup arm (reports from runs that
    # include fig-tradeoff or the tradeoff bench carry these gauges).
    for name, floor in (
        ("tradeoff.min_availability", 0.55),
        ("tradeoff.reclaimed_fraction", 0.05),
    ):
        value = _labeled_entry(report, "gauges", name, r="3", dedup="on")
        if value is None:
            print(f"  skip  {name}{{r=3,dedup=on}} (no tradeoff run in report)")
            continue
        gated += 1
        verdict = "ok  " if value >= floor else "FAIL"
        print(f"  {verdict}  {name}{{r=3,dedup=on}}: {value:.3f} (floor {floor})")
        if value < floor:
            failures.append(name)

    if not gated:
        print("OK (nothing to gate in this report)")
        return 0
    if failures:
        print(f"FAIL: metrics gates violated: {', '.join(failures)}")
        return 1
    print("OK")
    return 0


#: Max fractional insert-throughput drop a trace-sampling-enabled run may
#: show against its sampling-off twin.  Deterministic hash sampling costs
#: one predicate per record batch plus event dicts for the sampled few, so
#: anything past 10% means the zero-cost-when-off discipline broke (e.g. an
#: unconditional per-message allocation snuck into the hot path).
MAX_TRACE_OVERHEAD = 0.10


def _phase_rate(report: dict, name: str) -> Optional[float]:
    """A top-level phase's ops_per_second from a RunReport, or None."""
    for entry in report.get("phases", ()):
        if entry.get("name") == name:
            return entry.get("ops_per_second")
    return None


def check_trace_overhead(traced_path: Path, baseline_path: Path) -> int:
    """Gate causal-trace sampling overhead: traced vs sampling-off reports.

    Both paths are RunReports of the *same* run configuration, one with
    ``--trace-sample-rate`` on and one off; the traced run's top-level
    insert throughput must stay within :data:`MAX_TRACE_OVERHEAD` of the
    baseline's.  Skip-if-absent like every other gate -- a report without
    an insert phase rate gates nothing.
    """
    traced = json.loads(traced_path.read_text(encoding="utf-8"))
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    print(f"trace-overhead gate: {traced_path.name} vs {baseline_path.name}")
    traced_rate = _phase_rate(traced, "insert")
    baseline_rate = _phase_rate(baseline, "insert")
    if not traced_rate or not baseline_rate:
        which = "traced" if not traced_rate else "baseline"
        print(f"  skip  insert ops_per_second absent from {which} report")
        print("OK (nothing to gate)")
        return 0
    floor = baseline_rate * (1.0 - MAX_TRACE_OVERHEAD)
    verdict = "ok  " if traced_rate >= floor else "FAIL"
    print(
        f"  {verdict}  insert rate traced {traced_rate:,.0f}/s vs "
        f"baseline {baseline_rate:,.0f}/s (floor {floor:,.0f}/s, "
        f"max overhead {MAX_TRACE_OVERHEAD:.0%})"
    )
    if traced_rate < floor:
        print("FAIL: trace sampling costs more than the allowed overhead")
        return 1
    print("OK")
    return 0


def trend() -> int:
    """The gated metrics across the whole committed snapshot series."""
    series = snapshot_series()
    if not series:
        print(f"no BENCH_*.json snapshots in {REPO_ROOT}")
        return 1
    labels = [label for _, _, label in GATED_METRICS]
    name_width = max(len(p.stem) for p in series)
    widths = [max(len(label), 14) for label in labels]
    header = "  ".join(
        ["snapshot".ljust(name_width)] + [l.rjust(w) for l, w in zip(labels, widths)]
    )
    print(header)
    print("-" * len(header))
    rows: List[Tuple[Path, List[Optional[float]]]] = [
        (
            path,
            [read_metric(path, section, key) for section, key, _ in GATED_METRICS],
        )
        for path in series
    ]

    def cell(path: Path, index: int, value: Optional[float]) -> str:
        if value is not None:
            return f"{value:,.2f}" if value < 100 else f"{value:,.0f}"
        # Distinguish a *recorded* skip (the bench measured, and explains
        # why the value is withheld -- e.g. a single-core host can't produce
        # an honest speedup ratio) from a metric the snapshot simply lacks.
        section, key, _ = GATED_METRICS[index]
        if read_recorded_skip(path, section, key) is not None:
            return "skip"
        return "-"

    for path, values in rows:
        cells = [
            cell(path, i, v).rjust(w)
            for i, (v, w) in enumerate(zip(values, widths))
        ]
        print("  ".join([path.stem.ljust(name_width)] + cells))
    # Relative change, newest over oldest snapshot that carries each metric.
    deltas = []
    for i in range(len(GATED_METRICS)):
        carried = [v[i] for _, v in rows if v[i] is not None]
        deltas.append(
            f"{carried[-1] / carried[0]:+.1%}".rjust(widths[i])
            if len(carried) >= 2 and carried[0]
            else "-".rjust(widths[i])
        )
    print("-" * len(header))
    print("  ".join(["newest/oldest".ljust(name_width)] + deltas))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "snapshot",
        metavar="PATH",
        nargs="?",
        default=None,
        help="fresh snapshot to check (omit with --trend)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional drop below baseline (default: 0.30)",
    )
    parser.add_argument(
        "--trend",
        action="store_true",
        help="print the gated metrics across all committed snapshots and exit",
    )
    parser.add_argument(
        "--metrics",
        metavar="REPORT",
        default=None,
        help="gate behavioral rates (cache hit-rate floor, 2D hop ceiling) "
        "derived from a --metrics-out RunReport instead of a snapshot",
    )
    parser.add_argument(
        "--trace-baseline",
        metavar="REPORT",
        default=None,
        help="with --metrics: the sampling-off RunReport of the same run; "
        "additionally gates the traced run's insert throughput within "
        f"{MAX_TRACE_OVERHEAD:.0%} of it",
    )
    args = parser.parse_args(argv)
    if args.trend:
        return trend()
    if args.trace_baseline and not args.metrics:
        parser.error("--trace-baseline requires --metrics TRACED_REPORT")
    if args.metrics:
        status = check_metrics(Path(args.metrics))
        if args.trace_baseline:
            status = (
                check_trace_overhead(
                    Path(args.metrics), Path(args.trace_baseline)
                )
                or status
            )
        return status
    if args.snapshot is None:
        parser.error(
            "a fresh snapshot PATH is required unless --trend or --metrics is given"
        )
    return check(Path(args.snapshot), args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
