"""Fail when a fresh benchmark snapshot regresses against committed history.

Usage::

    PYTHONPATH=src python benchmarks/record_trajectory.py --smoke --output /tmp/smoke.json
    python benchmarks/check_regression.py /tmp/smoke.json

Compares the fresh snapshot's ``salad_inserts.inserts_per_sec`` against the
newest committed ``BENCH_*.json`` in the repo root and exits nonzero when the
fresh number falls more than ``--tolerance`` (default 30%) below the
baseline.  The wide tolerance absorbs machine-to-machine variance (the
committed baselines and the CI runner are different hardware); the gate
exists to catch order-of-magnitude routing regressions -- an accidental
fallback to an O(D) per-record scan, a broken cache -- not single-digit
noise.  Snapshot history is append-only, so the baseline automatically
advances whenever a PR commits a new snapshot.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The gated metric: records routed to quiescence per second.
METRIC_SECTION = "salad_inserts"
METRIC_KEY = "inserts_per_sec"


def newest_baseline(exclude: Path) -> Path:
    """The latest committed snapshot (dated names sort chronologically)."""
    candidates = sorted(
        p
        for p in REPO_ROOT.glob("BENCH_*.json")
        if p.resolve() != exclude.resolve()
    )
    if not candidates:
        raise FileNotFoundError(f"no BENCH_*.json baselines in {REPO_ROOT}")
    return candidates[-1]


def read_metric(path: Path) -> float:
    snapshot = json.loads(path.read_text(encoding="utf-8"))
    try:
        return float(snapshot["results"][METRIC_SECTION][METRIC_KEY])
    except KeyError as exc:
        raise KeyError(
            f"{path} has no results.{METRIC_SECTION}.{METRIC_KEY}"
        ) from exc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("snapshot", metavar="PATH", help="fresh snapshot to check")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional drop below baseline (default: 0.30)",
    )
    args = parser.parse_args(argv)

    fresh_path = Path(args.snapshot)
    baseline_path = newest_baseline(exclude=fresh_path)
    fresh = read_metric(fresh_path)
    baseline = read_metric(baseline_path)
    floor = baseline * (1.0 - args.tolerance)

    print(f"baseline  {baseline_path.name}: {baseline:,.0f} {METRIC_KEY}")
    print(f"fresh     {fresh_path.name}: {fresh:,.0f} {METRIC_KEY}")
    print(f"floor     {floor:,.0f} ({args.tolerance:.0%} below baseline)")
    if fresh < floor:
        print("FAIL: salad insert throughput regressed past tolerance")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
