"""SALAD operation microbenchmarks: join cost and record-insert cost.

Not paper figures, but they quantify the per-operation costs behind
Figs. 9 and 14 (Eq. 17 join fan-out, Fig. 4 record routing).
"""

import random

import pytest

from repro.core.fingerprint import synthetic_fingerprint
from repro.salad.records import SaladRecord
from repro.salad.salad import Salad, SaladConfig


@pytest.fixture(scope="module")
def grown_salad():
    salad = Salad(SaladConfig(target_redundancy=2.0, dimensions=2, seed=77))
    salad.build(150)
    return salad


def test_bench_join_one_leaf(benchmark):
    """Cost of growing a ~150-leaf SALAD by one join (messages + settle)."""
    salad = Salad(SaladConfig(target_redundancy=2.0, dimensions=2, seed=78))
    salad.build(150)

    def join_one():
        salad.add_leaf()

    benchmark.pedantic(join_one, rounds=20, iterations=1)


def test_bench_record_insert(benchmark, grown_salad):
    """Cost of inserting one unique record (Fig. 4 routing + storage)."""
    leaves = grown_salad.alive_leaves()
    rng = random.Random(5)
    counter = iter(range(10_000_000, 99_000_000))

    def insert_one():
        leaf = rng.choice(leaves)
        record = SaladRecord(
            synthetic_fingerprint(4096, next(counter)), leaf.identifier
        )
        leaf.insert_record(record)
        grown_salad.network.run()

    benchmark.pedantic(insert_one, rounds=200, iterations=1)


def test_bench_batch_insert_throughput(benchmark):
    """Records/second through a 100-leaf SALAD."""
    salad = Salad(SaladConfig(target_redundancy=2.0, dimensions=2, seed=79))
    salad.build(100)
    leaves = salad.alive_leaves()
    rng = random.Random(7)
    counter = iter(range(1, 50_000_000))

    def insert_batch():
        batch = {}
        for _ in range(200):
            leaf = rng.choice(leaves)
            record = SaladRecord(
                synthetic_fingerprint(4096, next(counter)), leaf.identifier
            )
            batch.setdefault(leaf.identifier, []).append(record)
        salad.insert_records(batch)

    benchmark.pedantic(insert_batch, rounds=5, iterations=1)
