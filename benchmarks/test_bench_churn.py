"""Churn benchmark: the dynamic counterpart of Fig. 8 (extension)."""

import pytest

from benchmarks.conftest import report
from repro.experiments import churn

RATES = (0.0, 0.01, 0.05)


@pytest.mark.figure
def test_bench_churn(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        churn.run,
        args=(bench_scale,),
        kwargs={"rates": RATES, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    report("Churn: reclaimed space vs. continuous failure rate", result.render())

    # Zero churn reclaims a majority of the ideal.
    assert result.reclaimed_fraction[0.0] > 0.5 * result.ideal_fraction
    # Heavy churn reclaims less than no churn.
    assert result.reclaimed_fraction[RATES[-1]] < result.reclaimed_fraction[0.0]
    # Maintenance actually fires under churn.
    assert result.entries_flushed[RATES[-1]] > 0
