"""Fig. 8: consumed space vs. machine failure probability.

Shape claims checked (paper section 5):
- consumed space degrades gracefully with failure probability and collapses
  only at high p;
- at p = 0.5 with Lambda = 2.5 the system still reclaims most of the ideal
  (paper: 38% of 46%);
- larger Lambda tolerates failures at least as well.
"""

import pytest

from benchmarks.conftest import report
from repro.experiments import fig08_space_vs_failure

PROBABILITIES = (0.0, 0.2, 0.5, 0.7, 0.9)


@pytest.mark.figure
def test_bench_fig08(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        fig08_space_vs_failure.run,
        args=(bench_scale,),
        kwargs={"probabilities": PROBABILITIES, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    report("Fig. 8: consumed space vs. machine failure probability", result.render())

    total = result.total_bytes
    for lam in result.lambdas:
        series = result.consumed[lam]
        # Broadly increasing with failure probability (small-sample noise
        # tolerated between adjacent points).
        assert series[-1] >= series[0]
        assert all(value <= total for value in series)
        # At p = 0.9 almost nothing is reclaimed.
        assert series[-1] >= 0.9 * series[0]

    # At p = 0.5 the best Lambda still reclaims a solid majority of ideal.
    best = max(result.lambdas)
    baseline = fig08_space_vs_failure.run(
        bench_scale, lambdas=(best,), probabilities=(0.0,), seed=bench_seed
    )
    ideal_reclaim = 1 - baseline.consumed[best][0] / total
    if ideal_reclaim > 0:
        assert result.reclaimed_at_half[best] >= 0.4 * ideal_reclaim
