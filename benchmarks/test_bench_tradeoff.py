"""fig-tradeoff benchmark: the replication x dedup durability frontier.

Times the full R in {1..4} x {dedup on, off} sweep -- eight pipeline
builds, each with a correlated replica-set kill and recovery -- and
reports the frontier the experiment exists to draw: how much space
coalescing reclaims at each replication factor versus what the
concentrated blast radius costs in availability and measured data loss.
"""

import pytest

from benchmarks.conftest import report
from repro.experiments import fig_tradeoff


@pytest.mark.figure
def test_bench_tradeoff_frontier(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        fig_tradeoff.run,
        args=(bench_scale,),
        kwargs={"seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    rows = []
    for p in result.points:
        rows.append(
            f"R={p.replication} dedup={'on' if p.dedup else 'off':<3} "
            f"reclaimed={p.reclaimed_fraction:.3f} minA={p.min_availability:.3f} "
            f"lost={p.files_lost}/{p.group_files} P(out)={p.loss_event_probability:.2e}"
        )
    report(
        f"Replication x dedup frontier ({result.machines} machines, "
        f"{result.files} files, {len(result.points)} arms)",
        "\n".join(rows),
    )
    assert len(result.points) == 2 * len(result.sweep)
    for p in result.points:
        assert p.loss_matches_prediction
        assert p.recovery_meets_prediction
    # The frontier's defining shape at R=3: dedup reclaims real space but
    # cannot improve the worst file's availability.
    on, off = result.point(3, True), result.point(3, False)
    assert on.reclaimed_fraction > 0.05
    assert on.min_availability <= off.min_availability + 1e-12
