"""Analytic-model validation bench: Eqs. 13, 14, 17 vs. Monte-Carlo."""

import pytest

from benchmarks.conftest import report
from repro.experiments import model_check


@pytest.mark.figure
def test_bench_model_check(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        model_check.run,
        args=(bench_scale,),
        kwargs={"seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    report("Analytic model vs. simulation (Eqs. 13, 14, 17)", result.render())

    # Eq. 13: measured mean leaf table within a band of the prediction.
    assert (
        0.4 * result.predicted_table_mean
        < result.measured_table_mean
        < 1.8 * result.predicted_table_mean
    )
    # Eq. 14: measured loss no worse than a small multiple of predicted.
    assert result.measured_loss <= max(3 * result.predicted_loss, 0.3)
    # Eq. 17: join traffic within an order of magnitude of the fan-out model
    # (the measured number includes flood-suppressed duplicates).
    assert result.measured_join_messages < 10 * result.predicted_join_messages
