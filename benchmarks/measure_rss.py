"""Peak-RSS harness for the record-store backends (docs/PERFORMANCE.md).

Reproduces the measurement behind the "Record-store backends and the
1M-record RSS budget" table: insert N unique ``(fingerprint, location)``
records into ONE store of each backend, each in a fresh subprocess, and
record the subprocess's peak RSS (``resource.getrusage``), the store file
size, and insert throughput.

Usage::

    PYTHONPATH=src python benchmarks/measure_rss.py --records 1000000
    PYTHONPATH=src python benchmarks/measure_rss.py --records 100000 \
        --backends memory wal-paged --json rss.json

A fresh process per backend matters: peak RSS is a high-water mark, so
measuring two backends in one process would charge the second for the
first's peak.  Records are generated in bounded batches (never a full
in-memory list), so the harness itself adds only a few MiB over the
interpreter baseline -- what's measured is the store.
"""

from __future__ import annotations

import argparse
import json
import resource
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parent.parent / "src"

BATCH = 10_000


def _measure_in_this_process(backend: str, records: int, db_dir: str) -> dict:
    from repro.core.fingerprint import synthetic_fingerprint
    from repro.salad.records import SaladRecord
    from repro.salad.storage import make_record_store

    store = make_record_store(backend, db_dir=db_dir, name="rss")
    start = time.perf_counter()
    for base in range(0, records, BATCH):
        batch = [
            SaladRecord(
                fingerprint=synthetic_fingerprint(1024 + i % 4096, i),
                location=i % 97,
            )
            for i in range(base, min(base + BATCH, records))
        ]
        store.insert_many(batch)
    seconds = time.perf_counter() - start
    stored = len(store)
    store.close()
    file_bytes = (
        store.path.stat().st_size if getattr(store, "path", None) else None
    )
    return {
        "backend": backend,
        "records": records,
        "stored": stored,
        "insert_seconds": seconds,
        "inserts_per_sec": records / seconds if seconds else None,
        "store_file_bytes": file_bytes,
        # ru_maxrss is KiB on Linux.
        "peak_rss_mib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0,
    }


def measure(backend: str, records: int) -> dict:
    """One backend's measurement, isolated in a fresh subprocess."""
    with tempfile.TemporaryDirectory(prefix="rss-") as db_dir:
        out = subprocess.run(
            [
                sys.executable,
                __file__,
                "--worker",
                backend,
                "--records",
                str(records),
                "--db-dir",
                db_dir,
            ],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_SRC), "PATH": "/usr/bin:/bin"},
        )
    if out.returncode != 0:
        raise RuntimeError(f"{backend} worker failed:\n{out.stderr}")
    return json.loads(out.stdout)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=1_000_000)
    parser.add_argument(
        "--backends",
        nargs="+",
        default=None,
        help="backends to measure (default: all)",
    )
    parser.add_argument("--json", metavar="PATH", default=None)
    parser.add_argument("--worker", metavar="BACKEND", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--db-dir", metavar="DIR", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.worker:
        print(json.dumps(_measure_in_this_process(args.worker, args.records, args.db_dir)))
        return 0

    from repro.salad.storage import BACKENDS

    backends = args.backends or list(BACKENDS)
    results = []
    for backend in backends:
        if backend not in BACKENDS:
            parser.error(f"unknown backend {backend!r} (known: {', '.join(BACKENDS)})")
        result = measure(backend, args.records)
        results.append(result)
        file_mib = (
            f"{result['store_file_bytes'] / (1 << 20):.0f} MiB"
            if result["store_file_bytes"]
            else "-"
        )
        print(
            f"{backend:10s}  peak RSS {result['peak_rss_mib']:7.1f} MiB"
            f"  file {file_mib:>9s}"
            f"  {result['inserts_per_sec']:,.0f} ins/s"
            f"  ({result['stored']:,} stored)"
        )
    if args.json:
        Path(args.json).write_text(json.dumps(results, indent=1) + "\n")
        print(f"results written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
