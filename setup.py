"""Setup shim for environments without the `wheel` package.

PEP 660 editable installs need `wheel`; this offline environment lacks it, so
`pip install -e . --no-use-pep517` (or plain `python setup.py develop`) falls
back to the legacy egg-link editable install via this file.  All project
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup(
    # setuptools 65's pyproject support is beta and `setup.py develop` does
    # not materialize [project.scripts]; declare the entry point here too.
    entry_points={
        "console_scripts": [
            "repro-experiments = repro.experiments.runner:main",
        ]
    }
)
