"""Shared fixtures for the test suite.

Expensive objects (RSA key pairs, built SALADs, generated corpora) are
session-scoped; tests must not mutate them.  Tests that need mutation build
their own small instances.
"""

from __future__ import annotations

import random

import pytest

from repro.core.keyring import User, UserDirectory
from repro.crypto.rsa import RSAKeyPair, generate_keypair
from repro.salad.salad import Salad, SaladConfig
from repro.workload.corpus import Corpus
from repro.workload.generator import CorpusSpec, generate_corpus


@pytest.fixture(scope="session")
def keypair() -> RSAKeyPair:
    return generate_keypair(512, rng=random.Random(1234))


@pytest.fixture(scope="session")
def second_keypair() -> RSAKeyPair:
    return generate_keypair(512, rng=random.Random(5678))


@pytest.fixture(scope="session")
def user_directory() -> UserDirectory:
    users = UserDirectory()
    rng = random.Random(99)
    for name in ("alice", "bob", "carol"):
        users.create_user(name, rng=rng)
    return users


@pytest.fixture(scope="session")
def alice(user_directory: UserDirectory) -> User:
    return user_directory.get("alice")


@pytest.fixture(scope="session")
def bob(user_directory: UserDirectory) -> User:
    return user_directory.get("bob")


@pytest.fixture(scope="session")
def built_salad() -> Salad:
    """A 120-leaf SALAD grown by incremental joins.  Read-only."""
    salad = Salad(SaladConfig(target_redundancy=2.5, dimensions=2, seed=101))
    salad.build(120)
    return salad


@pytest.fixture(scope="session")
def small_corpus() -> Corpus:
    """A small calibrated corpus.  Read-only."""
    spec = CorpusSpec(machines=60, mean_files_per_machine=20)
    return generate_corpus(spec, seed=7)
