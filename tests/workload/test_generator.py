"""The calibrated corpus generator: shapes must match the paper's dataset."""

import pytest

from repro.workload.generator import CorpusSpec, generate_corpus, paper_scale_spec


class TestDeterminism:
    def test_same_seed_same_corpus(self, small_corpus):
        from repro.workload.generator import CorpusSpec

        spec = CorpusSpec(machines=60, mean_files_per_machine=20)
        again = generate_corpus(spec, seed=7)
        assert again.summary() == small_corpus.summary()

    def test_different_seeds_differ(self):
        spec = CorpusSpec(machines=20, mean_files_per_machine=10)
        a = generate_corpus(spec, seed=1).summary()
        b = generate_corpus(spec, seed=2).summary()
        assert a != b


class TestCalibration:
    """The paper's aggregates: 46% duplicate bytes, 38.6% distinct files,
    ~65 KB mean file size.  At moderate scale the synthetic corpus must land
    in bands around those values."""

    @pytest.fixture(scope="class")
    def corpus(self):
        spec = CorpusSpec(machines=200, mean_files_per_machine=50)
        return generate_corpus(spec, seed=11)

    def test_duplicate_byte_fraction(self, corpus):
        assert 0.36 <= corpus.summary().duplicate_byte_fraction <= 0.56

    def test_distinct_file_fraction(self, corpus):
        distinct = 1 - corpus.summary().duplicate_file_fraction
        assert 0.30 <= distinct <= 0.48

    def test_mean_file_size(self, corpus):
        mean_kb = corpus.summary().mean_file_size / 1024
        assert 30 <= mean_kb <= 130

    def test_small_files_dominate_count_not_bytes(self, corpus):
        """The Fig. 7/9 premise: files below 4KB are most of the count but
        few of the bytes."""
        small_count = small_bytes = total_count = total_bytes = 0
        for machine in corpus:
            for f in machine.files:
                total_count += 1
                total_bytes += f.size
                if f.size < 4096:
                    small_count += 1
                    small_bytes += f.size
        assert small_count / total_count > 0.3
        assert small_bytes / total_bytes < 0.05


class TestStructure:
    def test_machine_count(self, small_corpus):
        assert len(small_corpus) == 60

    def test_system_contents_on_every_machine(self, small_corpus):
        instances = small_corpus.content_instances()
        universal = [c for c, (_, machines) in instances.items() if len(machines) == 60]
        assert len(universal) >= CorpusSpec().system_contents // 2

    def test_no_content_twice_on_one_machine(self, small_corpus):
        for machine in small_corpus:
            ids = [f.content_id for f in machine.files]
            assert len(ids) == len(set(ids))

    def test_zipf_duplication_exists(self, small_corpus):
        copy_counts = [
            len(machines)
            for _, machines in small_corpus.content_instances().values()
        ]
        assert max(copy_counts) >= 10  # heavy-tailed duplication
        assert sum(1 for c in copy_counts if c == 1) > 0  # and unique files

    def test_single_machine_corpus(self):
        corpus = generate_corpus(CorpusSpec(machines=1, mean_files_per_machine=10), seed=1)
        assert len(corpus) == 1
        assert corpus.total_files >= 1

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            CorpusSpec(machines=0)
        with pytest.raises(ValueError):
            CorpusSpec(unique_fraction=1.5)


class TestPaperScaleSpec:
    def test_full_scale_matches_paper_machine_count(self):
        spec = paper_scale_spec(1.0)
        assert spec.machines == 585
        assert spec.mean_files_per_machine == pytest.approx(17_972)

    def test_scaled_down(self):
        spec = paper_scale_spec(0.01)
        assert spec.machines == 585
        assert spec.mean_files_per_machine < 200

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            paper_scale_spec(0)
