"""Real-directory scanning into a MachineScan."""

import os

from repro.workload.scanner import scan_directory


def populate(tmp_path):
    (tmp_path / "sub").mkdir()
    (tmp_path / "a.txt").write_bytes(b"identical content")
    (tmp_path / "sub" / "b.txt").write_bytes(b"identical content")
    (tmp_path / "c.bin").write_bytes(b"different " * 100)
    return tmp_path


class TestScanDirectory:
    def test_finds_all_files(self, tmp_path):
        scan = scan_directory(str(populate(tmp_path)))
        assert scan.file_count == 3

    def test_identical_files_share_content_id(self, tmp_path):
        scan = scan_directory(str(populate(tmp_path)))
        by_size = {}
        for f in scan.files:
            by_size.setdefault(f.size, []).append(f.content_id)
        dup_ids = by_size[len(b"identical content")]
        assert len(dup_ids) == 2
        assert dup_ids[0] == dup_ids[1]

    def test_sizes_recorded(self, tmp_path):
        scan = scan_directory(str(populate(tmp_path)))
        assert sorted(f.size for f in scan.files) == [17, 17, 1000]

    def test_max_files_cap(self, tmp_path):
        scan = scan_directory(str(populate(tmp_path)), max_files=2)
        assert scan.file_count == 2

    def test_corpus_statistics_from_scan(self, tmp_path):
        from repro.workload.corpus import Corpus

        scan = scan_directory(str(populate(tmp_path)))
        summary = Corpus(machines=[scan]).summary()
        assert summary.distinct_contents == 2
        assert summary.duplicate_byte_fraction > 0

    def test_empty_directory(self, tmp_path):
        scan = scan_directory(str(tmp_path))
        assert scan.file_count == 0
