"""Deterministic synthetic content materialization."""

import pytest

from repro.core.fingerprint import synthetic_fingerprint
from repro.workload.content import synthetic_content


class TestSyntheticContent:
    def test_exact_length(self):
        for size in (0, 1, 63, 64, 65, 10_000):
            assert len(synthetic_content(7, size)) == size

    def test_deterministic(self):
        assert synthetic_content(3, 500) == synthetic_content(3, 500)

    def test_different_identities_different_bytes(self):
        assert synthetic_content(1, 500) != synthetic_content(2, 500)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            synthetic_content(1, -1)

    def test_bytes_look_random(self):
        data = synthetic_content(9, 4096)
        assert len(set(data)) > 200  # all byte values appear


class TestConsistencyWithFingerprints:
    def test_same_identity_same_fingerprint_same_bytes(self):
        """The abstract corpus and the materialized bytes must agree:
        identical (size, content_id) means identical fingerprints AND
        identical blobs."""
        a_fp = synthetic_fingerprint(1000, 5)
        b_fp = synthetic_fingerprint(1000, 5)
        assert a_fp == b_fp
        assert synthetic_content(5, 1000) == synthetic_content(5, 1000)
