"""Corpus data model and aggregate statistics."""

from repro.core.fingerprint import synthetic_fingerprint
from repro.workload.corpus import Corpus, FileStat, MachineScan


def tiny_corpus():
    shared = FileStat(content_id=1, size=1000)
    return Corpus(
        machines=[
            MachineScan(0, [shared, FileStat(content_id=2, size=500)]),
            MachineScan(1, [shared, FileStat(content_id=3, size=200)]),
            MachineScan(2, [shared]),
        ]
    )


class TestFileStat:
    def test_fingerprint_matches_synthetic(self):
        f = FileStat(content_id=9, size=64)
        assert f.fingerprint() == synthetic_fingerprint(64, 9)

    def test_equal_contents_equal_fingerprints(self):
        assert FileStat(1, 10).fingerprint() == FileStat(1, 10).fingerprint()


class TestMachineScan:
    def test_totals(self):
        scan = MachineScan(0, [FileStat(1, 100), FileStat(2, 50)])
        assert scan.file_count == 2
        assert scan.total_bytes == 150

    def test_files_at_least(self):
        scan = MachineScan(0, [FileStat(1, 100), FileStat(2, 50)])
        assert [f.size for f in scan.files_at_least(60)] == [100]


class TestCorpusStats:
    def test_summary(self):
        summary = tiny_corpus().summary()
        assert summary.machine_count == 3
        assert summary.total_files == 5
        assert summary.total_bytes == 1000 * 3 + 500 + 200
        assert summary.distinct_contents == 3
        assert summary.distinct_bytes == 1700

    def test_duplicate_fractions(self):
        summary = tiny_corpus().summary()
        # duplicates: two extra copies of the 1000-byte content.
        assert summary.duplicate_byte_fraction == 2000 / 3700
        assert summary.duplicate_file_fraction == 2 / 5

    def test_ideal_reclaimable(self):
        corpus = tiny_corpus()
        assert corpus.ideal_reclaimable_bytes() == 2000
        # With a 600-byte threshold only the 1000-byte content qualifies.
        assert corpus.ideal_reclaimable_bytes(min_size=600) == 2000
        assert corpus.ideal_reclaimable_bytes(min_size=1500) == 0

    def test_content_instances(self):
        instances = tiny_corpus().content_instances()
        assert instances[1] == (1000, [0, 1, 2])
        assert instances[2] == (500, [0])

    def test_fingerprint_to_content(self):
        lookup = tiny_corpus().fingerprint_to_content()
        assert lookup[synthetic_fingerprint(1000, 1)] == 1
        assert len(lookup) == 3

    def test_empty_summary_fractions(self):
        empty = Corpus(machines=[MachineScan(0, [])]).summary()
        assert empty.duplicate_byte_fraction == 0.0
        assert empty.mean_file_size == 0.0
