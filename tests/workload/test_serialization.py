"""Corpus persistence."""

import json

import pytest

from repro.workload.serialization import (
    CorpusFormatError,
    corpus_from_dict,
    corpus_to_dict,
    load_corpus,
    save_corpus,
)


class TestRoundTrip:
    def test_dict_roundtrip_preserves_summary(self, small_corpus):
        restored = corpus_from_dict(corpus_to_dict(small_corpus))
        assert restored.summary() == small_corpus.summary()

    def test_file_roundtrip(self, small_corpus, tmp_path):
        path = str(tmp_path / "corpus.json")
        save_corpus(small_corpus, path)
        assert load_corpus(path).summary() == small_corpus.summary()

    def test_gzip_roundtrip_and_smaller(self, small_corpus, tmp_path):
        import os

        plain = str(tmp_path / "corpus.json")
        gz = str(tmp_path / "corpus.json.gz")
        save_corpus(small_corpus, plain)
        save_corpus(small_corpus, gz)
        assert load_corpus(gz).summary() == small_corpus.summary()
        assert os.path.getsize(gz) < os.path.getsize(plain)

    def test_machine_structure_preserved(self, small_corpus, tmp_path):
        path = str(tmp_path / "c.json")
        save_corpus(small_corpus, path)
        restored = load_corpus(path)
        assert len(restored) == len(small_corpus)
        for original, loaded in zip(small_corpus.machines, restored.machines):
            assert original.machine_index == loaded.machine_index
            assert original.files == loaded.files


class TestValidation:
    def test_rejects_wrong_format(self):
        with pytest.raises(CorpusFormatError):
            corpus_from_dict({"format": "something-else"})

    def test_rejects_wrong_version(self):
        with pytest.raises(CorpusFormatError):
            corpus_from_dict({"format": "repro-corpus", "version": 99, "machines": []})

    def test_rejects_non_dict(self):
        with pytest.raises(CorpusFormatError):
            corpus_from_dict([1, 2, 3])

    def test_dump_is_plain_json(self, small_corpus, tmp_path):
        path = str(tmp_path / "c.json")
        save_corpus(small_corpus, path)
        with open(path) as f:
            data = json.load(f)
        assert data["format"] == "repro-corpus"
