"""The workload command-line interface."""

import pytest

from repro.workload.__main__ import main


class TestGenerate:
    def test_generate_prints_stats(self, capsys):
        assert main(["generate", "--machines", "20", "--files", "8"]) == 0
        out = capsys.readouterr().out
        assert "duplicate byte fraction" in out

    def test_generate_writes_file(self, tmp_path, capsys):
        path = str(tmp_path / "c.json.gz")
        assert main(["generate", "--machines", "10", "--files", "5", "-o", path]) == 0
        from repro.workload.serialization import load_corpus

        corpus = load_corpus(path)
        assert len(corpus) == 10


class TestStats:
    def test_stats_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "c.json")
        main(["generate", "--machines", "6", "--files", "4", "-o", path])
        capsys.readouterr()
        assert main(["stats", path]) == 0
        out = capsys.readouterr().out
        assert "machines" in out and "6" in out


class TestScan:
    def test_scan_directory(self, tmp_path, capsys):
        (tmp_path / "x.txt").write_bytes(b"hello" * 100)
        (tmp_path / "y.txt").write_bytes(b"hello" * 100)
        assert main(["scan", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "total files" in out and "2" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
