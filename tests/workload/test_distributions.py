"""Size and duplication distributions."""

import math
import random

import pytest

from repro.workload.distributions import (
    BoundedZipf,
    lognormal_size,
    machine_file_count,
    poisson_count,
)


class TestLognormalSize:
    def test_clamped_to_bounds(self):
        rng = random.Random(1)
        for _ in range(500):
            size = lognormal_size(rng, median=4096, sigma=3.0, min_size=1, max_size=10_000)
            assert 1 <= size <= 10_000

    def test_median_approximately_respected(self):
        rng = random.Random(2)
        samples = sorted(
            lognormal_size(rng, median=4096, sigma=2.0) for _ in range(4000)
        )
        measured_median = samples[len(samples) // 2]
        assert 2500 < measured_median < 6500

    def test_mean_follows_lognormal_formula(self):
        rng = random.Random(3)
        sigma = 1.0
        samples = [lognormal_size(rng, 1000, sigma) for _ in range(20_000)]
        expected_mean = 1000 * math.exp(sigma**2 / 2)
        assert sum(samples) / len(samples) == pytest.approx(expected_mean, rel=0.1)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            lognormal_size(random.Random(4), median=0, sigma=1)


class TestBoundedZipf:
    def test_bounds_respected(self):
        zipf = BoundedZipf(2, 50, 2.0)
        rng = random.Random(5)
        samples = [zipf.sample(rng) for _ in range(2000)]
        assert min(samples) >= 2 and max(samples) <= 50

    def test_skew_toward_low_values(self):
        zipf = BoundedZipf(2, 100, 2.0)
        rng = random.Random(6)
        samples = [zipf.sample(rng) for _ in range(5000)]
        assert sum(1 for s in samples if s <= 4) > len(samples) / 2

    def test_empirical_mean_matches_exact(self):
        zipf = BoundedZipf(2, 200, 2.2)
        rng = random.Random(7)
        samples = [zipf.sample(rng) for _ in range(20_000)]
        assert sum(samples) / len(samples) == pytest.approx(zipf.mean(), rel=0.1)

    def test_heavier_tail_with_smaller_alpha(self):
        assert BoundedZipf(2, 500, 1.5).mean() > BoundedZipf(2, 500, 2.5).mean()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            BoundedZipf(0, 10, 2.0)
        with pytest.raises(ValueError):
            BoundedZipf(2, 1, 2.0)
        with pytest.raises(ValueError):
            BoundedZipf(2, 10, 0)


class TestMachineFileCount:
    def test_positive(self):
        rng = random.Random(8)
        assert all(machine_file_count(rng, 30) >= 1 for _ in range(100))

    def test_mean_preserved(self):
        rng = random.Random(9)
        counts = [machine_file_count(rng, 100, spread_sigma=0.5) for _ in range(5000)]
        assert sum(counts) / len(counts) == pytest.approx(100, rel=0.1)

    def test_spread_creates_variation(self):
        rng = random.Random(10)
        counts = {machine_file_count(rng, 100, spread_sigma=0.5) for _ in range(100)}
        assert len(counts) > 20

    def test_invalid_mean(self):
        with pytest.raises(ValueError):
            machine_file_count(random.Random(11), 0)


class TestPoissonCount:
    def test_zero_rate_is_zero(self):
        assert poisson_count(random.Random(1), 0.0) == 0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            poisson_count(random.Random(1), -1.0)

    def test_mean_and_variance_match_rate(self):
        rng = random.Random(2)
        draws = [poisson_count(rng, 12.0) for _ in range(5000)]
        mean = sum(draws) / len(draws)
        var = sum((d - mean) ** 2 for d in draws) / len(draws)
        assert mean == pytest.approx(12.0, rel=0.05)
        assert var == pytest.approx(12.0, rel=0.15)  # Poisson: var == mean

    def test_large_rate_survives_exp_underflow(self):
        # exp(-rate) underflows to 0.0 past ~745; the additive split keeps
        # Knuth's method usable (Poisson(a+b) = Poisson(a) + Poisson(b)).
        rng = random.Random(3)
        draws = [poisson_count(rng, 2000.0) for _ in range(200)]
        mean = sum(draws) / len(draws)
        assert mean == pytest.approx(2000.0, rel=0.05)

    def test_deterministic_per_seed(self):
        a = [poisson_count(random.Random(7), 5.0) for _ in range(20)]
        b = [poisson_count(random.Random(7), 5.0) for _ in range(20)]
        assert a == b
