"""The skewed publish stream: Zipf popularity x Poisson arrivals."""

import pytest

from repro.workload.traffic import SkewedTraffic, TrafficSpec, parse_traffic

LOCATIONS = [0x100 + i for i in range(16)]


def driver(seed=0, **overrides):
    defaults = dict(contents=64, arrival_rate=20.0, waves=5)
    defaults.update(overrides)
    return SkewedTraffic(TrafficSpec(**defaults), LOCATIONS, seed=seed)


class TestTrafficSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="at least one content"):
            TrafficSpec(contents=0)
        with pytest.raises(ValueError, match="arrival rate"):
            TrafficSpec(arrival_rate=-1)
        with pytest.raises(ValueError, match="at least one wave"):
            TrafficSpec(waves=0)

    def test_parse_defaults(self):
        assert parse_traffic(None) == TrafficSpec()
        assert parse_traffic("  ") == TrafficSpec()

    def test_parse_keys(self):
        spec = parse_traffic("contents=100,alpha=1.3,rate=8,waves=4,median=2000,sigma=1.5")
        assert spec == TrafficSpec(
            contents=100,
            zipf_alpha=1.3,
            arrival_rate=8.0,
            waves=4,
            median_size=2000,
            sigma=1.5,
        )

    def test_parse_errors(self):
        with pytest.raises(ValueError, match="unknown traffic key"):
            parse_traffic("burst=3")
        with pytest.raises(ValueError, match="bad value"):
            parse_traffic("rate=fast")


class TestSkewedTraffic:
    def test_needs_publishers(self):
        with pytest.raises(ValueError, match="publisher"):
            SkewedTraffic(TrafficSpec(), [])

    def test_deterministic_per_seed(self):
        waves_a = [driver(seed=3).wave() for _ in range(1)]
        a, b = driver(seed=3), driver(seed=3)
        for _ in range(4):
            assert a.wave() == b.wave()
        assert a.arrivals == b.arrivals
        assert a.content_counts == b.content_counts
        assert waves_a  # first driver produced something comparable too

    def test_seed_changes_stream(self):
        a, b = driver(seed=1), driver(seed=2)
        assert [a.wave() for _ in range(3)] != [b.wave() for _ in range(3)]

    def test_batches_keyed_by_known_publishers(self):
        d = driver()
        for _ in range(4):
            for location, records in d.wave().items():
                assert location in LOCATIONS
                for record in records:
                    assert record.location == location

    def test_arrivals_accounting(self):
        d = driver()
        total = sum(len(records) for _ in range(5) for records in d.wave().values())
        assert d.arrivals == total
        assert sum(d.content_counts.values()) == total

    def test_equal_contents_yield_equal_fingerprints(self):
        # The hot-duplicate-cluster mechanism: republishing a content gives
        # the same fingerprint every time, from any publisher.
        d = driver(arrival_rate=200.0, contents=8)
        fingerprints = {}
        seen_duplicate = False
        for _ in range(3):
            for records in d.wave().values():
                for record in records:
                    for other in fingerprints.values():
                        if record.fingerprint == other:
                            seen_duplicate = True
            for records in d.wave().values():
                for record in records:
                    fingerprints.setdefault(record.fingerprint, record.fingerprint)
        assert seen_duplicate
        # With 8 contents, at most 8 distinct fingerprints can ever appear.
        assert len(fingerprints) <= 8

    def test_zipf_concentrates_on_hot_contents(self):
        d = driver(arrival_rate=400.0, contents=64, zipf_alpha=1.2, seed=5)
        for _ in range(5):
            d.wave()
        # The top content draws far more than the uniform share (1/64).
        assert d.hot_share(top=1) > 3 / 64
        assert d.hot_share(top=64) == pytest.approx(1.0)

    def test_hot_share_empty_stream(self):
        assert driver(arrival_rate=0.0).hot_share() == 0.0

    def test_content_size_is_stable(self):
        d = driver(arrival_rate=300.0, contents=4)
        sizes = {}
        for _ in range(3):
            d.wave()
        for content, size in d._sizes.items():
            sizes[content] = size
        d2 = driver(arrival_rate=300.0, contents=4)
        for _ in range(3):
            d2.wave()
        for content, size in d2._sizes.items():
            assert sizes.get(content, size) == size
