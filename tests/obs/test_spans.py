"""Span/phase timers: nesting, rates, attachments, and the drain contract."""

from repro.obs.spans import current_span, phase, span, take_phases


def setup_function(_fn):
    take_phases()  # drain anything a previous test left behind


class TestNesting:
    def test_children_nest_under_open_parent(self):
        with phase("outer"):
            with span("inner_a"):
                pass
            with span("inner_b"):
                with span("leaf"):
                    pass
        roots = take_phases()
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner_a", "inner_b"]
        assert [c.name for c in roots[0].children[1].children] == ["leaf"]

    def test_sequential_roots_all_collected(self):
        with span("one"):
            pass
        with span("two"):
            pass
        assert [r.name for r in take_phases()] == ["one", "two"]

    def test_take_phases_drains(self):
        with span("once"):
            pass
        assert take_phases()
        assert take_phases() == []

    def test_current_span(self):
        assert current_span() is None
        with span("open") as node:
            assert current_span() is node
        assert current_span() is None
        take_phases()

    def test_exception_still_closes_and_times(self):
        try:
            with span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        roots = take_phases()
        assert [r.name for r in roots] == ["boom"]
        assert roots[0].seconds >= 0.0
        assert current_span() is None


class TestOpsAndNotes:
    def test_ops_rate(self):
        with span("work", ops=100) as node:
            pass
        node.seconds = 2.0  # deterministic rate
        assert node.ops_per_second == 50.0
        d = node.to_dict()
        assert d["ops"] == 100
        assert d["ops_per_second"] == 50.0
        take_phases()

    def test_set_ops_after_the_fact_and_notes(self):
        with span("work") as node:
            node.set_ops(7)
            node.note("backend", "wal")
        d = take_phases()[0].to_dict()
        assert d["ops"] == 7
        assert d["notes"] == {"backend": "wal"}

    def test_no_ops_means_no_rate(self):
        with span("idle") as node:
            pass
        assert node.ops_per_second is None
        assert "ops" not in node.to_dict()
        take_phases()


class TestAttachments:
    def test_profile_records_top_functions(self):
        with span("profiled", profile=True):
            sum(i * i for i in range(2000))
        node = take_phases()[0]
        assert node.profile_top, "profiler attached but no rows kept"
        row = node.profile_top[0]
        assert set(row) == {"function", "calls", "total_seconds", "cumulative_seconds"}
        assert node.to_dict()["profile_top"] == node.profile_top

    def test_trace_memory_records_delta_and_peak(self):
        with span("traced", trace_memory=True):
            blob = [bytes(1 << 12) for _ in range(16)]
            del blob
        node = take_phases()[0]
        assert node.memory is not None
        assert set(node.memory) == {"allocated_delta_bytes", "peak_bytes"}
        assert node.memory["peak_bytes"] > 0

    def test_attachments_do_not_change_results(self):
        with span("plain"):
            plain = sum(range(500))
        with span("attached", profile=True, trace_memory=True):
            attached = sum(range(500))
        assert plain == attached
        take_phases()
