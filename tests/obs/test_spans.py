"""Span/phase timers: nesting, rates, attachments, and the drain contract."""

from repro.obs.spans import (
    aggregate_phases,
    current_span,
    phase,
    span,
    take_phases,
)


def setup_function(_fn):
    take_phases()  # drain anything a previous test left behind


class TestNesting:
    def test_children_nest_under_open_parent(self):
        with phase("outer"):
            with span("inner_a"):
                pass
            with span("inner_b"):
                with span("leaf"):
                    pass
        roots = take_phases()
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner_a", "inner_b"]
        assert [c.name for c in roots[0].children[1].children] == ["leaf"]

    def test_sequential_roots_all_collected(self):
        with span("one"):
            pass
        with span("two"):
            pass
        assert [r.name for r in take_phases()] == ["one", "two"]

    def test_take_phases_drains(self):
        with span("once"):
            pass
        assert take_phases()
        assert take_phases() == []

    def test_current_span(self):
        assert current_span() is None
        with span("open") as node:
            assert current_span() is node
        assert current_span() is None
        take_phases()

    def test_exception_still_closes_and_times(self):
        try:
            with span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        roots = take_phases()
        assert [r.name for r in roots] == ["boom"]
        assert roots[0].seconds >= 0.0
        assert current_span() is None


class TestOutOfOrderCloses:
    """Held context managers may close out of order (a driver keeping a
    long-lived span object while inner work opens and closes); the tree and
    its ordering must survive that."""

    def test_enclosing_close_does_not_promote_child_to_root(self):
        outer = span("outer")
        outer.__enter__()
        inner = span("inner")
        inner.__enter__()
        # The *enclosing* span's context exits first; the held inner one
        # closes late.  inner must stay a child, never become a root.
        outer.__exit__(None, None, None)
        inner.__exit__(None, None, None)
        roots = take_phases()
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner"]
        assert current_span() is None

    def test_stack_is_sane_after_out_of_order_close(self):
        outer = span("outer")
        outer.__enter__()
        inner = span("inner")
        inner.__enter__()
        outer.__exit__(None, None, None)
        # New work after the early close must open as a fresh root, not
        # nest under the shed-but-unclosed inner span.
        with span("next_root"):
            pass
        inner.__exit__(None, None, None)
        assert [r.name for r in take_phases()] == ["outer", "next_root"]

    def test_roots_drain_in_start_order_not_close_order(self):
        with span("first") as a:
            pass
        with span("second") as b:
            pass
        # Simulate completion stamps arriving out of start order (merged
        # worker trees; held spans recording their close late).
        a.start, b.start = 2.0, 1.0
        assert [r.name for r in take_phases()] == ["second", "first"]

    def test_children_drain_in_start_order_recursively(self):
        with span("root"):
            with span("child_a") as ca:
                with span("grand_a") as ga:
                    pass
                with span("grand_b") as gb:
                    pass
            with span("child_b") as cb:
                pass
        ca.start, cb.start = 5.0, 1.0
        ga.start, gb.start = 4.0, 3.0
        (root,) = take_phases()
        assert [c.name for c in root.children] == ["child_b", "child_a"]
        assert [g.name for g in root.children[1].children] == [
            "grand_b",
            "grand_a",
        ]

    def test_aggregate_keeps_earliest_start(self):
        with span("step") as s1:
            pass
        with span("step") as s2:
            pass
        s1.start, s2.start = 9.0, 4.0
        merged = aggregate_phases(take_phases())
        assert merged["step"].start == 4.0


class TestOpsAndNotes:
    def test_ops_rate(self):
        with span("work", ops=100) as node:
            pass
        node.seconds = 2.0  # deterministic rate
        assert node.ops_per_second == 50.0
        d = node.to_dict()
        assert d["ops"] == 100
        assert d["ops_per_second"] == 50.0
        take_phases()

    def test_set_ops_after_the_fact_and_notes(self):
        with span("work") as node:
            node.set_ops(7)
            node.note("backend", "wal")
        d = take_phases()[0].to_dict()
        assert d["ops"] == 7
        assert d["notes"] == {"backend": "wal"}

    def test_no_ops_means_no_rate(self):
        with span("idle") as node:
            pass
        assert node.ops_per_second is None
        assert "ops" not in node.to_dict()
        take_phases()


class TestAttachments:
    def test_profile_records_top_functions(self):
        with span("profiled", profile=True):
            sum(i * i for i in range(2000))
        node = take_phases()[0]
        assert node.profile_top, "profiler attached but no rows kept"
        row = node.profile_top[0]
        assert set(row) == {"function", "calls", "total_seconds", "cumulative_seconds"}
        assert node.to_dict()["profile_top"] == node.profile_top

    def test_trace_memory_records_delta_and_peak(self):
        with span("traced", trace_memory=True):
            blob = [bytes(1 << 12) for _ in range(16)]
            del blob
        node = take_phases()[0]
        assert node.memory is not None
        assert set(node.memory) == {"allocated_delta_bytes", "peak_bytes"}
        assert node.memory["peak_bytes"] > 0

    def test_attachments_do_not_change_results(self):
        with span("plain"):
            plain = sum(range(500))
        with span("attached", profile=True, trace_memory=True):
            attached = sum(range(500))
        assert plain == attached
        take_phases()
