"""Causal tracing + flight recorder (repro.obs.tracing).

The sampler must be a *pure deterministic predicate* (no RNG consumed, same
verdict in every process), trace ids must be re-derivable from data the
record already carries, timelines must merge causally across workers, the
Chrome export must be structurally loadable by Perfetto, and the flight
recorder must leave a readable JSONL behind even mid-run.
"""

import json

import pytest

from repro.core.fingerprint import synthetic_fingerprint
from repro.obs import tracing
from repro.obs.tracing import (
    FlightRecorder,
    TraceRecorder,
    build_timelines,
    export_chrome_trace,
    render_flight_tail,
    sample_threshold,
    trace_id_for,
)
from repro.salad.records import SaladRecord


@pytest.fixture(autouse=True)
def _clean_tracing_state():
    tracing.deactivate()
    tracing.uninstall_flight_recorder()
    yield
    tracing.deactivate()
    tracing.uninstall_flight_recorder()


def _record(n: int, location: int = 0xABC) -> SaladRecord:
    return SaladRecord(synthetic_fingerprint(1000 + n, n), location)


class TestSampler:
    def test_threshold_endpoints(self):
        assert sample_threshold(0.0) == 0
        assert sample_threshold(-1.0) == 0
        assert sample_threshold(1.0) == 1 << 32
        assert sample_threshold(2.0) == 1 << 32
        assert 0 < sample_threshold(0.5) < (1 << 32)

    def test_rate_zero_samples_nothing_rate_one_everything(self):
        off = TraceRecorder(0.0)
        on = TraceRecorder(1.0)
        ids = [_record(n)._rid for n in range(50)]
        assert not any(off.sampled(rid) for rid in ids)
        assert all(on.sampled(rid) for rid in ids)

    def test_sampling_is_deterministic_across_recorders(self):
        a = TraceRecorder(0.25)
        b = TraceRecorder(0.25)
        ids = [_record(n)._rid for n in range(200)]
        assert [a.sampled(rid) for rid in ids] == [b.sampled(rid) for rid in ids]

    def test_sampled_fraction_tracks_rate(self):
        recorder = TraceRecorder(0.25)
        ids = [_record(n)._rid for n in range(2000)]
        fraction = sum(recorder.sampled(rid) for rid in ids) / len(ids)
        assert 0.15 < fraction < 0.35

    def test_higher_rate_is_a_superset(self):
        # Raising the rate must only add records, never reshuffle the set:
        # the accept condition is hash < threshold with a shared hash.
        low, high = TraceRecorder(0.1), TraceRecorder(0.4)
        for n in range(500):
            rid = _record(n)._rid
            if low.sampled(rid):
                assert high.sampled(rid)


class TestTraceIds:
    def test_stable_and_location_dependent(self):
        record = _record(7)
        assert trace_id_for(record._rid, record.location) == trace_id_for(
            record._rid, record.location
        )
        assert trace_id_for(record._rid, record.location) != trace_id_for(
            record._rid, record.location + 1
        )

    def test_independent_of_sampling_verdict(self):
        # Domain-separated salts: sampled records must not share low bits.
        ids = {
            trace_id_for(_record(n)._rid, 0xABC) & 0xFFFF for n in range(64)
        }
        assert len(ids) > 32

    def test_fits_in_64_bits(self):
        wide = (1 << 160) - 1
        assert 0 <= trace_id_for(wide, wide) < (1 << 64)


class TestRecorderEvents:
    def test_insert_store_flush_chain(self):
        clock = [0.0]
        recorder = TraceRecorder(1.0, shard=1, now=lambda: clock[0])
        record = _record(3, location=0x5)
        recorder.record_insert(record, 0x5)
        clock[0] = 2.0
        recorder.record_store(record, 0x9, hops=4)
        clock[0] = 3.0
        recorder.record_flush(0x9)
        kinds = [e["kind"] for e in recorder.events]
        assert kinds == ["insert", "store", "store.flush"]
        tid = f"{trace_id_for(record._rid, record.location):016x}"
        assert all(e["trace_id"] == tid for e in recorder.events)
        assert [e["t"] for e in recorder.events] == [0.0, 2.0, 3.0]
        assert recorder.events[1]["hops"] == 4

    def test_flush_without_pending_stores_emits_nothing(self):
        recorder = TraceRecorder(1.0)
        recorder.record_flush(0x9)
        assert recorder.events == []
        # and a second flush after draining the pending set is silent too
        recorder.record_store(_record(1), 0x9, hops=0)
        recorder.record_flush(0x9)
        recorder.record_flush(0x9)
        assert [e["kind"] for e in recorder.events] == ["store", "store.flush"]

    def test_hop_includes_link_annotation_when_available(self):
        recorder = TraceRecorder(
            1.0, link_of=lambda a, b: (f"{a:x}->{b:x}", "wan")
        )
        recorder.record_hop(_record(2), hops=1, sender=0xA, machine=0xB)
        (event,) = recorder.events
        assert event["kind"] == "route.hop"
        assert event["link"] == "a->b"
        assert event["link_class"] == "wan"

    def test_sampled_ids_in_knows_both_record_payloads(self):
        recorder = TraceRecorder(1.0)
        r1, r2 = _record(1), _record(2)
        assert recorder.sampled_ids_in("record", (r1, 3)) == (
            trace_id_for(r1._rid, r1.location),
        )
        assert recorder.sampled_ids_in("record_batch", ((r1, 0), (r2, 1))) == (
            trace_id_for(r1._rid, r1.location),
            trace_id_for(r2._rid, r2.location),
        )
        assert recorder.sampled_ids_in("join", object()) == ()
        assert TraceRecorder(0.0).sampled_ids_in("record", (r1, 3)) == ()

    def test_take_events_drains(self):
        recorder = TraceRecorder(1.0)
        recorder.record_insert(_record(1), 0x1)
        assert len(recorder.take_events()) == 1
        assert recorder.take_events() == []


class TestModuleLifecycle:
    def test_activate_rate_zero_clears(self):
        assert tracing.activate(1.0) is not None
        assert tracing.ACTIVE is not None
        assert tracing.activate(0.0) is None
        assert tracing.ACTIVE is None

    def test_activate_orphans_previous_events(self):
        # Engine turnover (a sweep building several engines) must not lose
        # the previous engine's sampled timelines.
        tracing.activate(1.0)
        tracing.ACTIVE.record_insert(_record(1), 0x1)
        tracing.activate(1.0)
        tracing.ACTIVE.record_insert(_record(2), 0x2)
        events = tracing.take_events()
        assert len(events) == 2
        assert tracing.take_events() == []

    def test_deactivate_discards_everything(self):
        tracing.activate(1.0)
        tracing.ACTIVE.record_insert(_record(1), 0x1)
        tracing.activate(1.0)  # moves the event to the orphan buffer
        tracing.deactivate()
        assert tracing.take_events() == []

    def test_adopt_events_hands_out_exactly_once(self):
        tracing.adopt_events([{"kind": "insert", "t": 0.0}])
        assert len(tracing.take_events()) == 1
        assert tracing.take_events() == []


class TestTimelines:
    def test_merges_across_shards_and_sorts_causally(self):
        # Same virtual time from two workers: kind order breaks the tie so
        # the merged timeline reads insert -> stage -> deliver -> store.
        events = [
            {"kind": "store", "trace_id": "aa", "t": 5.0, "seq": 0, "shard": 1},
            {"kind": "insert", "trace_id": "aa", "t": 1.0, "seq": 9, "shard": 0},
            {"kind": "envelope.deliver", "trace_id": "aa", "t": 4.0, "seq": 1, "shard": 1},
            {"kind": "envelope.stage", "trace_id": "aa", "t": 4.0, "seq": 2, "shard": 0},
            {"kind": "route.hop", "trace_id": "bb", "t": 2.0, "seq": 3, "shard": 0},
            {"kind": "exchange.round", "trace_id": None, "t": 4.0, "seq": 4, "shard": 0},
        ]
        timelines = build_timelines(events)
        assert set(timelines) == {"aa", "bb"}
        assert [e["kind"] for e in timelines["aa"]] == [
            "insert",
            "envelope.stage",
            "envelope.deliver",
            "store",
        ]
        assert {e["shard"] for e in timelines["aa"]} == {0, 1}


class TestChromeExport:
    def _events(self):
        return [
            {"kind": "insert", "trace_id": "ab", "t": 1.0, "seq": 0,
             "shard": 0, "machine": "5", "size": 1024},
            {"kind": "store", "trace_id": "ab", "t": 2.0, "seq": 1,
             "shard": 1, "machine": "9", "hops": 3},
            {"kind": "exchange.round", "trace_id": None, "t": 2.0, "seq": 2,
             "shard": 1, "machine": None, "window": 2, "bytes_sent": 88},
        ]

    def test_structure_is_perfetto_loadable(self, tmp_path):
        path = export_chrome_trace(self._events(), tmp_path / "t.json")
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"M", "i", "X"}
        for event in events:
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] != "M":
                assert isinstance(event["ts"], float)
        # both shards got process_name metadata
        names = [e for e in events if e["name"] == "process_name"]
        assert {e["pid"] for e in names} == {0, 1}

    def test_instants_carry_args_and_spans_have_duration(self, tmp_path):
        doc = json.loads(
            export_chrome_trace(self._events(), tmp_path / "t.json").read_text()
        )
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert {e["name"] for e in instants} == {"insert", "store"}
        assert all(e["args"]["trace_id"] == "ab" for e in instants)
        (span,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert span["dur"] > 0
        assert span["args"]["bytes_sent"] == 88

    def test_creates_parent_dirs(self, tmp_path):
        path = export_chrome_trace([], tmp_path / "deep" / "t.json")
        assert json.loads(path.read_text()) == {"traceEvents": []}


class TestFlightRecorder:
    def test_heartbeats_and_ring_drain_to_jsonl(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        recorder = FlightRecorder(path, ring_size=3)
        for n in range(5):  # ring keeps only the newest 3
            recorder.note_event({"kind": "insert", "trace_id": f"{n:02x}", "t": float(n)})
        recorder.heartbeat("insert", wave=1, inserted_total=100)
        recorder.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["type"] == "heartbeat"
        assert lines[0]["label"] == "insert"
        assert lines[0]["inserted_total"] == 100
        events = [line for line in lines if line["type"] == "event"]
        assert [e["trace_id"] for e in events] == ["02", "03", "04"]

    def test_module_heartbeat_is_noop_without_recorder(self):
        tracing.heartbeat("anything", x=1)  # must not raise

    def test_install_routes_recorder_events_into_ring(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        tracing.install_flight_recorder(path, ring_size=8)
        tracing.activate(1.0)
        tracing.ACTIVE.record_insert(_record(1), 0x1)
        tracing.heartbeat("stage")
        tracing.uninstall_flight_recorder()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert any(line.get("kind") == "insert" for line in lines)

    def test_render_tail_is_human_readable(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        recorder = FlightRecorder(path)
        recorder.note_event(
            {"kind": "store", "trace_id": "abcd", "t": 1.5, "shard": 0, "hops": 2}
        )
        recorder.heartbeat("insert", wave=3)
        recorder.close()
        rendered = "\n".join(render_flight_tail(path))
        assert "insert" in rendered
        assert "wave=3" in rendered
        assert "store" in rendered
        assert "abcd" in rendered

    def test_render_tail_missing_file(self, tmp_path):
        (line,) = render_flight_tail(tmp_path / "nope.jsonl")
        assert "cannot read" in line

    def test_cli_tail(self, tmp_path, capsys):
        from repro.obs.__main__ import main as obs_main

        path = tmp_path / "flight.jsonl"
        recorder = FlightRecorder(path)
        recorder.heartbeat("growth", leaves=128)
        recorder.close()
        assert obs_main(["tail", str(path)]) == 0
        assert "leaves=128" in capsys.readouterr().out
