"""RunReport: schema stability, validation, and the summary/CLI surface.

``validate_run_report`` is the contract consumers rely on
(``check_regression.py --metrics``, CI's report step); these tests pin both
directions -- a freshly built report validates clean, and each kind of
corruption is caught.
"""

import json

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.report import (
    ACCEPTED_SCHEMAS,
    SCHEMA,
    build_run_report,
    environment,
    main as report_main,
    summary_table,
    validate_run_report,
    write_run_report,
)
from repro.obs.spans import span, take_phases


def _registry():
    registry = MetricsRegistry()
    registry.counter("salad.records.arrivals").inc(10)
    registry.counter("salad.routing.next_hop_hits", shard="0").inc(9)
    registry.gauge("salad.config.dimensions").set(2)
    registry.histogram("salad.routing.batch_size").observe_many([1, 2, 4])
    return registry


def _report(**kwargs):
    take_phases()
    with span("phase_a", ops=10):
        with span("inner"):
            pass
    return build_run_report(_registry(), **kwargs)


class TestBuildAndValidate:
    def test_fresh_report_is_schema_valid(self):
        report = _report()
        assert report["schema"] == SCHEMA
        assert validate_run_report(report) == []

    def test_report_is_json_round_trippable(self):
        report = _report()
        assert validate_run_report(json.loads(json.dumps(report))) == []

    def test_phases_default_to_drained_spans(self):
        report = _report()
        assert [p["name"] for p in report["phases"]] == ["phase_a"]
        assert [c["name"] for c in report["phases"][0]["children"]] == ["inner"]
        # and they were drained: a second report has no phases
        assert build_run_report(_registry())["phases"] == []

    def test_env_extras_land_in_environment(self):
        report = _report(env={"scale": "small", "shard_workers": 4})
        assert report["environment"]["scale"] == "small"
        assert report["environment"]["shard_workers"] == 4
        for key in ("python", "platform", "machine", "cpu_count"):
            assert key in report["environment"]

    def test_shards_section(self):
        dumps = [_registry().to_dict(), _registry().to_dict()]
        report = _report(shards=dumps)
        assert validate_run_report(report) == []
        assert [s["shard"] for s in report["shards"]] == [0, 1]

    def test_shard_phases_attach_per_worker(self):
        dumps = [_registry().to_dict(), _registry().to_dict()]
        trees = [
            [{"name": "shard.step", "seconds": 0.5, "ops": 12}],
            [{"name": "shard.step", "seconds": 0.4, "children": [
                {"name": "deliver", "seconds": 0.3}]}],
        ]
        report = _report(shards=dumps, shard_phases=trees)
        assert validate_run_report(report) == []
        assert report["shards"][0]["phases"] == trees[0]
        assert report["shards"][1]["phases"][0]["children"][0]["name"] == "deliver"
        # Round-trips through JSON with the phases intact.
        assert validate_run_report(json.loads(json.dumps(report))) == []

    def test_environment_probe_has_required_keys(self):
        env = environment()
        for key in ("python", "platform", "machine", "cpu_count", "git_sha"):
            assert key in env

    def test_v1_reports_remain_valid(self):
        # v2 only added the optional traces section: committed v1 artifacts
        # (docs/flagship_report.json, archived CI reports) must still pass.
        report = _report()
        report["schema"] = "repro.run-report/1"
        assert report["schema"] in ACCEPTED_SCHEMAS
        assert validate_run_report(report) == []

    def test_empty_worker_phase_tree_renders(self):
        # A worker that did no spanned work ships an empty tree; the shards
        # section must validate and summarize without a phases line for it.
        dumps = [_registry().to_dict(), _registry().to_dict()]
        report = _report(
            shards=dumps,
            shard_phases=[[], [{"name": "shard.step", "seconds": 0.2}]],
        )
        assert validate_run_report(report) == []
        assert report["shards"][0]["phases"] == []
        table = summary_table(report)
        assert "2 worker registries merged" in table
        assert "shard 1: shard.step=0.200s" in table
        assert "shard 0:" not in table

    def test_traces_section_builds_and_validates(self):
        events = [
            {"kind": "insert", "trace_id": "ab", "t": 1.0, "shard": 0},
            {"kind": "store", "trace_id": "ab", "t": 2.5, "shard": 1},
            {"kind": "exchange.round", "trace_id": None, "t": 2.5, "shard": 1},
        ]
        report = _report(traces={"sample_rate": 0.01, "events": events})
        assert validate_run_report(report) == []
        assert validate_run_report(json.loads(json.dumps(report))) == []
        table = summary_table(report)
        assert "traces: 3 events across 1 sampled records" in table
        assert "sample_rate=0.01" in table

    def test_traces_section_is_optional(self):
        report = _report(traces=None)
        assert "traces" not in report
        assert validate_run_report(report) == []


class TestCorruptionDetection:
    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda r: r.pop("schema"), "schema"),
            (lambda r: r.update(schema="bogus/9"), "schema"),
            (lambda r: r.pop("created_unix"), "created_unix"),
            (lambda r: r.pop("environment"), "environment"),
            (lambda r: r["environment"].pop("cpu_count"), "cpu_count"),
            (lambda r: r.pop("metrics"), "metrics"),
            (lambda r: r["metrics"].pop("counters"), "counters"),
            (lambda r: r["metrics"]["counters"][0].pop("value"), "value"),
            (lambda r: r["metrics"]["counters"][0].pop("name"), "name"),
            (lambda r: r["metrics"]["histograms"][0].pop("buckets"), "buckets"),
            (lambda r: r.pop("phases"), "phases"),
            (lambda r: r["phases"][0].pop("seconds"), "seconds"),
        ],
    )
    def test_each_corruption_is_caught(self, mutate, fragment):
        report = _report()
        mutate(report)
        problems = validate_run_report(report)
        assert problems, f"corruption not caught: {fragment}"
        assert any(fragment in p for p in problems)

    def test_non_dict_is_rejected(self):
        assert validate_run_report([1, 2]) == ["report is not an object"]

    def test_bad_shard_index_is_caught(self):
        report = _report(shards=[_registry().to_dict()])
        report["shards"][0]["shard"] = 7
        assert any("shard" in p for p in validate_run_report(report))

    def test_duplicate_top_level_siblings_rejected(self):
        report = _report()
        report["phases"].append(dict(report["phases"][0]))
        problems = validate_run_report(report)
        assert any(
            "2 sibling phases named 'phase_a'" in p and "phases" in p
            for p in problems
        )

    def test_duplicate_child_siblings_rejected(self):
        report = _report()
        report["phases"][0]["children"].append(
            {"name": "inner", "seconds": 0.1}
        )
        problems = validate_run_report(report)
        assert any(
            "phases[0].children has 2 sibling phases named 'inner'" in p
            for p in problems
        )

    def test_duplicate_shard_phase_siblings_rejected(self):
        report = _report(
            shards=[_registry().to_dict()],
            shard_phases=[
                [
                    {"name": "shard.step", "seconds": 0.1},
                    {"name": "shard.step", "seconds": 0.2},
                ]
            ],
        )
        problems = validate_run_report(report)
        assert any(
            "shards[0].phases has 2 sibling phases named 'shard.step'" in p
            for p in problems
        )

    def test_distinct_sibling_names_pass(self):
        report = _report()
        report["phases"].append({"name": "phase_b", "seconds": 0.1})
        assert validate_run_report(report) == []

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda t: t.pop("sample_rate"), "sample_rate"),
            (lambda t: t.update(sample_rate=True), "sample_rate"),
            (lambda t: t.pop("events"), "events"),
            (lambda t: t["events"][0].pop("kind"), "kind"),
            (lambda t: t["events"][0].pop("t"), ".t missing"),
            (lambda t: t["events"].append("not-a-dict"), "not an object"),
        ],
    )
    def test_corrupt_traces_are_caught(self, mutate, fragment):
        report = _report(
            traces={
                "sample_rate": 0.5,
                "events": [{"kind": "insert", "trace_id": "ab", "t": 1.0}],
            }
        )
        mutate(report["traces"])
        problems = validate_run_report(report)
        assert problems, f"traces corruption not caught: {fragment}"
        assert any(fragment in p for p in problems)

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda s: s.update(phases="not-a-list"), "phases is not a list"),
            (lambda s: s["phases"][0].pop("seconds"), "seconds"),
            (lambda s: s["phases"][0].pop("name"), "name"),
            (
                lambda s: s["phases"][0]["children"].append({"seconds": 1.0}),
                "children",
            ),
        ],
    )
    def test_corrupt_shard_phases_are_caught(self, mutate, fragment):
        report = _report(
            shards=[_registry().to_dict()],
            shard_phases=[
                [{"name": "shard.step", "seconds": 0.1, "children": []}]
            ],
        )
        mutate(report["shards"][0])
        problems = validate_run_report(report)
        assert problems, f"shard-phase corruption not caught: {fragment}"
        assert any(fragment in p for p in problems)


class TestSummaryAndCli:
    def test_summary_table_mentions_the_content(self):
        table = summary_table(_report(env={"scale": "small"}))
        assert "phase_a" in table
        assert "salad.records.arrivals" in table
        assert "salad.routing.next_hop_hits{shard=0}" in table
        assert "salad.routing.batch_size" in table
        assert "scale=small" in table

    def test_cli_validates_and_summarizes(self, tmp_path, capsys):
        path = write_run_report(tmp_path / "r.json", _report())
        assert report_main([str(path)]) == 0
        assert "phase_a" in capsys.readouterr().out

    def test_cli_rejects_corrupt_report(self, tmp_path, capsys):
        report = _report()
        del report["metrics"]
        path = write_run_report(tmp_path / "bad.json", report)
        assert report_main([str(path)]) == 1
        assert "schema problem" in capsys.readouterr().err

    def test_cli_usage(self, capsys):
        assert report_main([]) == 2
        assert "usage" in capsys.readouterr().err

    def test_write_creates_parent_dirs(self, tmp_path):
        path = write_run_report(tmp_path / "deep" / "nested" / "r.json", _report())
        assert validate_run_report(json.loads(path.read_text())) == []
