"""The metrics registry: instruments, labels, merges, and the session switch.

The load-bearing property is merge exactness: the sharded coordinator folds
one registry per worker and the result must be bit-identical to a
single-process run, in any merge order.  Hypothesis drives that over random
observation partitions here; ``tests/salad/test_sharded_golden.py`` pins it
on real engine traces.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.registry import (
    Histogram,
    MetricsRegistry,
    bucket_of,
    disable,
    enable,
    enabled,
    get_registry,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.counter("x").inc(4)
        assert registry.counter_value("x") == 5

    def test_missing_counter_reads_zero(self):
        assert MetricsRegistry().counter_value("never") == 0

    def test_labels_distinguish_instruments(self):
        registry = MetricsRegistry()
        registry.counter("ops", kind="a").inc(1)
        registry.counter("ops", kind="b").inc(2)
        assert registry.counter_value("ops", kind="a") == 1
        assert registry.counter_value("ops", kind="b") == 2
        assert registry.counter_value("ops") == 0
        assert registry.counter_totals() == {"ops{kind=a}": 1, "ops{kind=b}": 2}

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.counter("ops", a="1", b="2").inc()
        assert registry.counter_value("ops", b="2", a="1") == 1

    def test_gauge_last_value_and_unset(self):
        registry = MetricsRegistry()
        assert registry.gauge_value("g") is None
        registry.gauge("g").set(3.0)
        registry.gauge("g").set(1.5)
        assert registry.gauge_value("g") == 1.5

    def test_histogram_stats(self):
        h = Histogram()
        h.observe_many([1, 2, 3, 100])
        assert h.count == 4
        assert h.total == 106
        assert h.min == 1
        assert h.max == 100
        assert h.mean == pytest.approx(26.5)

    def test_bucket_of_is_log_spaced(self):
        assert bucket_of(0) == 0
        assert bucket_of(-1) == 0
        # bucket e covers [2**(e-1), 2**e)
        assert bucket_of(1) == 1
        assert bucket_of(1.5) == 1
        assert bucket_of(2) == 2
        assert bucket_of(3.99) == 2
        assert bucket_of(4) == 3


class TestMerge:
    def test_counters_sum_gauges_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(3)
        b.counter("c").inc(4)
        a.gauge("g").set(1.0)
        b.gauge("g").set(2.0)
        a.merge(b)
        assert a.counter_value("c") == 7
        assert a.gauge_value("g") == 2.0

    def test_unset_gauge_does_not_clobber(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(5.0)
        b.gauge("g")  # created but never set
        a.merge(b)
        assert a.gauge_value("g") == 5.0

    def test_round_trip_dict(self):
        a = MetricsRegistry()
        a.counter("c", shard="0").inc(9)
        a.gauge("g").set(2.5)
        a.histogram("h").observe_many([1, 2, 1024])
        assert MetricsRegistry.from_dict(a.to_dict()).to_dict() == a.to_dict()

    @given(
        observations=st.lists(st.integers(min_value=0, max_value=10**6), max_size=60),
        cut=st.integers(min_value=0, max_value=60),
    )
    def test_any_partition_merges_to_the_whole(self, observations, cut):
        """Split one observation stream across two registries; the merge
        equals observing everything in one registry (the shard contract)."""
        cut = min(cut, len(observations))
        whole, left, right = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        for value in observations:
            whole.counter("n").inc(value)
            whole.histogram("h").observe(value)
        for value in observations[:cut]:
            left.counter("n").inc(value)
            left.histogram("h").observe(value)
        for value in observations[cut:]:
            right.counter("n").inc(value)
            right.histogram("h").observe(value)
        merged_lr = MetricsRegistry().merge(left).merge(right)
        merged_rl = MetricsRegistry().merge(right).merge(left)
        assert merged_lr.to_dict() == whole.to_dict()
        assert merged_rl.to_dict() == whole.to_dict()

    def test_merge_dict_equals_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("c").inc(2)
        b.histogram("h").observe(7)
        via_dict = MetricsRegistry().merge(a).merge_dict(b.to_dict())
        direct = MetricsRegistry().merge(a).merge(b)
        assert via_dict.to_dict() == direct.to_dict()


class TestSerializationStability:
    def test_dump_is_sorted_and_omits_empty(self):
        registry = MetricsRegistry()
        registry.counter("z").inc()
        registry.counter("a").inc()
        registry.gauge("unset")  # never set -> omitted
        registry.histogram("empty")  # never observed -> omitted
        dump = registry.to_dict()
        assert [e["name"] for e in dump["counters"]] == ["a", "z"]
        assert dump["gauges"] == []
        assert dump["histograms"] == []


class TestSessionSwitch:
    def teardown_method(self):
        disable()

    def test_disabled_by_default_and_null_is_free(self):
        disable()
        assert not enabled()
        null = get_registry()
        null.counter("x").inc(100)
        null.gauge("g").set(1.0)
        null.histogram("h").observe(5)
        assert null.counter_value("x") == 0
        assert len(null) == 0

    def test_enable_returns_live_registry(self):
        registry = enable()
        assert enabled()
        get_registry().counter("x").inc(2)
        assert registry.counter_value("x") == 2
        disable()
        assert get_registry().counter_value("x") == 0

    def test_enable_accepts_existing_registry(self):
        mine = MetricsRegistry()
        assert enable(mine) is mine
        assert get_registry() is mine
