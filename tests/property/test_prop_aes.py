"""Property tests: the AES cipher and its modes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES
from repro.crypto.modes import decrypt_cbc, decrypt_ctr, encrypt_cbc, encrypt_ctr

keys = st.binary(min_size=16, max_size=16) | st.binary(min_size=32, max_size=32)
blocks = st.binary(min_size=16, max_size=16)
payloads = st.binary(min_size=0, max_size=300)


class TestBlockCipher:
    @settings(max_examples=40, deadline=None)
    @given(keys, blocks)
    def test_decrypt_inverts_encrypt(self, key, block):
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @settings(max_examples=40, deadline=None)
    @given(keys, blocks, blocks)
    def test_injective_per_key(self, key, a, b):
        cipher = AES(key)
        if a != b:
            assert cipher.encrypt_block(a) != cipher.encrypt_block(b)


class TestModes:
    @settings(max_examples=40, deadline=None)
    @given(keys, payloads)
    def test_ctr_roundtrip(self, key, payload):
        assert decrypt_ctr(key, encrypt_ctr(key, payload)) == payload

    @settings(max_examples=40, deadline=None)
    @given(keys, payloads)
    def test_ctr_preserves_length(self, key, payload):
        assert len(encrypt_ctr(key, payload)) == len(payload)

    @settings(max_examples=40, deadline=None)
    @given(keys, payloads)
    def test_cbc_roundtrip(self, key, payload):
        assert decrypt_cbc(key, encrypt_cbc(key, payload)) == payload

    @settings(max_examples=40, deadline=None)
    @given(keys, payloads)
    def test_modes_deterministic(self, key, payload):
        """Determinism is the property convergent encryption builds on."""
        assert encrypt_ctr(key, payload) == encrypt_ctr(key, payload)
        assert encrypt_cbc(key, payload) == encrypt_cbc(key, payload)
