"""Property test: indexed routing never serves a stale forwarding set.

The indexed path (:meth:`SaladLeaf._route_record_indexed`) memoizes next
hops per record cell-ID, invalidating on leaf-table and width changes.  Two
leaves with the same identifier and config -- one forced onto the reference
per-axis scan, one on the indexed path -- are driven through an identical
interleaving of membership changes (which move the width up and down) and
record routings; after every operation the two must produce identical
forwarding decisions and identical stored records.  Repeat routings of the
same fingerprint exercise the cache-hit path against a table that changed
in between.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fingerprint import synthetic_fingerprint
from repro.salad.leaf import SaladLeaf
from repro.salad.records import SaladRecord
from repro.sim.events import EventScheduler
from repro.sim.network import Network

operations = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.integers(min_value=1, max_value=(1 << 24))),
        st.tuples(st.just("remove"), st.integers(min_value=1, max_value=(1 << 24))),
        # Route a record; the small content space makes repeats (cache hits
        # against a possibly-changed table) common.
        st.tuples(st.just("route"), st.integers(min_value=0, max_value=30)),
    ),
    min_size=1,
    max_size=80,
)


def _route(leaf: SaladLeaf, content: int):
    record = SaladRecord(
        fingerprint=synthetic_fingerprint(1000 + content, content),
        location=leaf.identifier,
    )
    forwards = {}
    leaf._route_record(record, 0, forwards)
    return {target: sorted(pairs) for target, pairs in forwards.items()}


class TestRoutingEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(operations)
    def test_indexed_matches_reference_under_churn(self, ops):
        reference = SaladLeaf(
            0xC0FFEE,
            Network(EventScheduler()),
            target_redundancy=2.0,
            dimensions=2,
            reference_routing=True,
        )
        indexed = SaladLeaf(
            0xC0FFEE,
            Network(EventScheduler()),
            target_redundancy=2.0,
            dimensions=2,
        )
        for op, value in ops:
            if op == "add":
                assert reference.add_leaf(value) == indexed.add_leaf(value)
            elif op == "remove":
                assert reference.remove_leaf(value) == indexed.remove_leaf(value)
            else:
                assert _route(reference, value) == _route(indexed, value)
            # Width (and thus every coordinate) must agree move for move.
            assert reference.width == indexed.width
            assert set(reference.leaf_table) == set(indexed.leaf_table)
        assert list(reference.database.records()) == list(indexed.database.records())
