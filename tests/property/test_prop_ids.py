"""Property tests: cell-ID and coordinate arithmetic (Eqs. 6-10)."""

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.salad.ids import (
    cell_id,
    cell_id_width,
    compose_cell_id,
    coordinate,
    coordinate_width,
    coordinates,
)

identifiers = st.integers(min_value=0, max_value=(1 << 160) - 1)
widths = st.integers(min_value=0, max_value=24)
dims = st.integers(min_value=1, max_value=4)


class TestCoordinateDecomposition:
    @given(identifiers, widths, dims)
    def test_compose_inverts_decompose(self, identifier, width, dimensions):
        coords = coordinates(identifier, width, dimensions)
        assert compose_cell_id(coords, width, dimensions) == cell_id(identifier, width)

    @given(identifiers, widths, dims)
    def test_coordinate_widths_partition_cell_id(self, identifier, width, dimensions):
        assert (
            sum(coordinate_width(width, dimensions, d) for d in range(dimensions))
            == width
        )

    @given(identifiers, widths, dims)
    def test_coordinates_fit_their_widths(self, identifier, width, dimensions):
        for d in range(dimensions):
            w_d = coordinate_width(width, dimensions, d)
            assert 0 <= coordinate(identifier, width, dimensions, d) < (1 << w_d)

    @given(identifiers, st.integers(min_value=0, max_value=23), dims)
    def test_width_growth_preserves_low_coordinate_bits(
        self, identifier, width, dimensions
    ):
        """Fig. 2's design goal: growing W changes each coordinate minimally."""
        for d in range(dimensions):
            before = coordinate(identifier, width, dimensions, d)
            after = coordinate(identifier, width + 1, dimensions, d)
            w_d = coordinate_width(width, dimensions, d)
            assert after & ((1 << w_d) - 1) == before

    @given(identifiers, identifiers, widths, dims)
    def test_equal_cell_ids_iff_equal_coordinates(self, i, j, width, dimensions):
        same_cell = cell_id(i, width) == cell_id(j, width)
        same_coords = coordinates(i, width, dimensions) == coordinates(
            j, width, dimensions
        )
        assert same_cell == same_coords


class TestCellIdWidth:
    @given(
        st.integers(min_value=1, max_value=10**6),
        st.floats(min_value=1.0, max_value=10.0, allow_nan=False),
    )
    # Ratio within an ulp of a power of two: math.log2 rounds up to
    # exactly 5.0 and the naive floor overshoots the band.
    @example(system_size=32, target=1.0000000000000002)
    def test_eq5_band_always_holds(self, system_size, target):
        width = cell_id_width(system_size, target)
        lam = system_size / (1 << width)
        if system_size >= target:
            assert target <= lam < 2 * target
        else:
            assert width == 0
