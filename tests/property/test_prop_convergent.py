"""Property tests: the convergent-encryption contract over arbitrary files."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.convergent import convergent_decrypt, convergent_encrypt

payloads = st.binary(min_size=0, max_size=2000)


class TestConvergentContract:
    @settings(max_examples=30, deadline=None)
    @given(payloads)
    def test_convergence_across_users(self, payload):
        # Fixtures are not available inside @given; build users once lazily.
        users = _users()
        a = convergent_encrypt(payload, {"alice": users["alice"].public_key})
        b = convergent_encrypt(payload, {"bob": users["bob"].public_key})
        assert a.data == b.data

    @settings(max_examples=30, deadline=None)
    @given(payloads)
    def test_roundtrip(self, payload):
        users = _users()
        ciphertext = convergent_encrypt(payload, {"alice": users["alice"].public_key})
        assert convergent_decrypt(ciphertext, users["alice"]) == payload

    @settings(max_examples=30, deadline=None)
    @given(payloads, payloads)
    def test_distinct_plaintexts_distinct_ciphertexts(self, a, b):
        users = _users()
        ca = convergent_encrypt(a, {"alice": users["alice"].public_key})
        cb = convergent_encrypt(b, {"alice": users["alice"].public_key})
        assert (ca.data == cb.data) == (a == b)

    @settings(max_examples=30, deadline=None)
    @given(payloads)
    def test_length_preserved(self, payload):
        users = _users()
        ciphertext = convergent_encrypt(payload, {"alice": users["alice"].public_key})
        assert len(ciphertext.data) == len(payload)


_CACHE = {}


def _users():
    if not _CACHE:
        from repro.core.keyring import User

        _CACHE["alice"] = User.create("alice", rng=random.Random(1))
        _CACHE["bob"] = User.create("bob", rng=random.Random(2))
    return _CACHE
