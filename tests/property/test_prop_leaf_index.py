"""Property tests: the leaf's cellmate/vector index under random churn.

The index is a performance structure over the leaf table; these invariants
keep it truthful:

- every table entry is in exactly one bucket (cellmates xor one vector);
- every bucket member is in the table;
- bucket placement matches the alignment predicates at the current width.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.salad.alignment import mismatching_dimensions
from repro.salad.ids import axis_masks, spread_coordinate
from repro.salad.leaf import SaladLeaf
from repro.sim.events import EventScheduler
from repro.sim.network import Network

operations = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove"]),
        st.integers(min_value=1, max_value=(1 << 24)),
    ),
    max_size=60,
)


def check_index(leaf: SaladLeaf) -> None:
    table = set(leaf.leaf_table)
    indexed = set(leaf._cellmates)
    for by_key in leaf._vectors.values():
        for members in by_key.values():
            indexed |= members
    assert indexed == table

    # Width-derived routing state must track the current width.
    assert leaf._cell_mask == (1 << leaf.width) - 1
    assert leaf._axis_masks == axis_masks(leaf.width, leaf.dimensions)

    # The width-increase lookahead counter must equal the brute-force count
    # of entries that stay vector-aligned at W+1 (the Fig. 6 growth check
    # reads it instead of rescanning the table).
    assert leaf._next_cell_mask == (1 << (leaf.width + 1)) - 1
    assert leaf._next_axis_masks == axis_masks(leaf.width + 1, leaf.dimensions)
    expected_survivors = sum(
        1
        for other in table
        if len(
            mismatching_dimensions(
                leaf.identifier, other, leaf.width + 1, leaf.dimensions
            )
        )
        <= 1
    )
    assert leaf._next_width_survivors == expected_survivors

    # The other half of the partition: the dropped bucket must equal a fresh
    # rescan's non-survivor set exactly (not just in count), because a
    # committed width increase deletes precisely these entries without
    # scanning (the amortized path of _recalculate_width_inner).
    assert leaf._next_width_dropped == {
        other for other in table if not leaf._survives_next_width(other)
    }
    assert len(leaf._next_width_dropped) + leaf._next_width_survivors == len(table)

    for other in table:
        delta = mismatching_dimensions(
            leaf.identifier, other, leaf.width, leaf.dimensions
        )
        assert len(delta) <= 1
        if len(delta) == 0:
            assert other in leaf._cellmates
        else:
            axis = delta[0]
            # Buckets are keyed by masked axis bits (the bijective image of
            # the axis coordinate), not the extracted coordinate value.
            key = other & leaf._axis_masks[axis]
            assert key == spread_coordinate(
                leaf.coord(other, axis), leaf.dimensions, axis
            )
            assert other in leaf._vectors[axis][key]
            assert other not in leaf._cellmates


class TestIndexConsistency:
    @settings(max_examples=60, deadline=None)
    @given(operations)
    def test_index_matches_table_under_churn(self, ops):
        network = Network(EventScheduler())
        leaf = SaladLeaf(0xABCDEF, network, target_redundancy=2.0, dimensions=2)
        for op, identifier in ops:
            if op == "add":
                leaf.add_leaf(identifier)
            else:
                leaf.remove_leaf(identifier)
            check_index(leaf)

    @settings(max_examples=30, deadline=None)
    @given(operations, st.integers(min_value=0, max_value=10))
    def test_index_survives_forced_width_changes(self, ops, width):
        network = Network(EventScheduler())
        leaf = SaladLeaf(0x123456, network, target_redundancy=2.0, dimensions=2)
        for op, identifier in ops:
            if op == "add":
                leaf.add_leaf(identifier, recalculate=False)
            else:
                leaf.remove_leaf(identifier, recalculate=False)
        # Force an arbitrary width; entries no longer aligned must be culled
        # by the caller (here: emulate the recalc drop) and the index rebuilt.
        leaf.width = width
        for other in list(leaf.leaf_table):
            if (
                len(mismatching_dimensions(leaf.identifier, other, width, 2))
                > 1
            ):
                del leaf.leaf_table[other]
        leaf._rebuild_index()
        check_index(leaf)

    @settings(max_examples=40, deadline=None)
    @given(operations)
    def test_estimate_is_table_plus_one_over_ratio(self, ops):
        from repro.salad.width import known_leaf_ratio

        network = Network(EventScheduler())
        leaf = SaladLeaf(0x999, network, target_redundancy=2.0, dimensions=2)
        for op, identifier in ops:
            if op == "add":
                leaf.add_leaf(identifier)
            else:
                leaf.remove_leaf(identifier)
        expected = (len(leaf.leaf_table) + 1) / known_leaf_ratio(leaf.width, 2)
        assert abs(leaf.estimated_system_size - expected) < 1e-9
