"""Property tests: fingerprint encoding and ordering."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fingerprint import Fingerprint, fingerprint_of, synthetic_fingerprint

contents = st.binary(min_size=0, max_size=500)
sizes = st.integers(min_value=0, max_value=(1 << 50))
content_ids = st.integers(min_value=0, max_value=(1 << 40))


class TestEncoding:
    @given(contents)
    def test_roundtrip(self, data):
        fp = fingerprint_of(data)
        assert Fingerprint.from_bytes(fp.to_bytes()) == fp

    @given(sizes, content_ids)
    def test_synthetic_roundtrip(self, size, content_id):
        fp = synthetic_fingerprint(size, content_id)
        assert Fingerprint.from_bytes(fp.to_bytes()) == fp


class TestOrdering:
    @given(sizes, sizes, content_ids, content_ids)
    def test_order_matches_byte_order(self, s1, s2, c1, c2):
        a = synthetic_fingerprint(s1, c1)
        b = synthetic_fingerprint(s2, c2)
        assert (a < b) == (a.to_bytes() < b.to_bytes())

    @given(sizes, sizes, content_ids, content_ids)
    def test_size_dominates(self, s1, s2, c1, c2):
        """The Fig. 13 eviction rule needs smaller files to sort lower."""
        if s1 < s2:
            assert synthetic_fingerprint(s1, c1) < synthetic_fingerprint(s2, c2)


class TestIdentity:
    @given(contents, contents)
    def test_fingerprint_equality_iff_content_equality(self, a, b):
        assert (fingerprint_of(a) == fingerprint_of(b)) == (a == b)

    @given(sizes, content_ids)
    def test_synthetic_deterministic(self, size, content_id):
        assert synthetic_fingerprint(size, content_id) == synthetic_fingerprint(
            size, content_id
        )
