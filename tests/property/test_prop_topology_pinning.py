"""Property: loss, partitions, and topology cuts only *remove* messages.

The network draws one loss decision per send, unconditionally, before any
drop check (see Network.send), so runs that differ only in their
loss/partition/cut settings agree exactly on the surviving messages: each
survivor is delivered at the identical timestamp, and survivors arrive in
the identical relative order.  Equivalently, the lossy run's delivery log
is the no-drop baseline's log filtered to the survivors.

The property is checked on the flat fabric, the degenerate one-site
topology, and a multi-site topology (where wan cuts join the drop causes),
against scripted send schedules issued from quiescent window boundaries.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import EventScheduler
from repro.sim.machine import SimMachine
from repro.sim.network import Network
from repro.sim.topology import Topology, one_site

MACHINES = 6

FABRICS = {
    "flat": lambda: None,
    "one-site": one_site,
    "two-site": lambda: Topology(
        sites=2, racks_per_site=2, rack_ticks=1, lan_ticks=2, wan_ticks=5
    ),
}


class Recorder(SimMachine):
    def __init__(self, identifier, network, log):
        super().__init__(identifier, network)
        self._log = log
        self.on("msg", self._record)

    def _record(self, message):
        self._log.append((self.network.scheduler.now, message.payload))


#: (sender index, recipient index, launch window) triples; each window's
#: sends are issued together from the quiescent boundary it names.
sends_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=MACHINES - 1),
        st.integers(min_value=0, max_value=MACHINES - 1),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=1,
    max_size=40,
)


def run_script(fabric, sends, loss, partition, cut_wan):
    """Deliver the scripted sends; return the (timestamp, seq) delivery log."""
    topology = FABRICS[fabric]()
    scheduler = EventScheduler()
    net = Network(
        scheduler,
        latency=1.0,
        loss_probability=loss,
        rng=random.Random(99),
        topology=topology,
    )
    log = []
    machines = [Recorder(100 + i, net, log) for i in range(MACHINES)]
    if partition:
        # Split the population in half by registration order.
        half = [m.identifier for m in machines[: MACHINES // 2]]
        net.partition({"west": half})
    if cut_wan and topology is not None and topology.sites > 1:
        net.cut(*topology.wan_links())

    by_window = {}
    for seq, (sender, recipient, window) in enumerate(sends):
        by_window.setdefault(window, []).append((sender, recipient, seq))
    quantum = topology.quantum if topology is not None else 1.0

    def launch(batch):
        def fire():
            for sender, recipient, seq in batch:
                machines[sender].send(machines[recipient].identifier, "msg", seq)

        return fire

    for window, batch in by_window.items():
        # Launch from a quiescent tick boundary: window w's sends go out at
        # t = 8w quanta, past any delivery from earlier windows (max delay
        # over all fabrics is 5 ticks).
        scheduler.schedule_at(window * 8 * quantum, launch(batch))
    net.run()
    return log


drop_settings = st.tuples(
    st.sampled_from([0.0, 0.25, 0.6, 0.9]),  # loss probability
    st.booleans(),  # flat label partition
    st.booleans(),  # sever all wan links (multi-site fabrics only)
)


class TestSurvivorPinning:
    @settings(max_examples=30, deadline=None)
    @given(
        st.sampled_from(sorted(FABRICS)),
        sends_strategy,
        drop_settings,
    )
    def test_lossy_log_is_filtered_baseline(self, fabric, sends, drops):
        loss, partition, cut_wan = drops
        baseline = run_script(fabric, sends, 0.0, False, False)
        lossy = run_script(fabric, sends, loss, partition, cut_wan)
        survivors = {seq for _, seq in lossy}
        assert lossy == [entry for entry in baseline if entry[1] in survivors]

    @settings(max_examples=15, deadline=None)
    @given(sends_strategy)
    def test_one_site_matches_flat_timestamps(self, sends):
        # The degenerate topology's integer-tick windows produce the same
        # delivery log as the flat fabric's float path, not just the same
        # survivors.
        assert run_script("one-site", sends, 0.0, False, False) == run_script(
            "flat", sends, 0.0, False, False
        )
