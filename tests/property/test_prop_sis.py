"""Property tests: Single-Instance Store invariants under random workloads."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.farsite.sis import SingleInstanceStore

operations = st.lists(
    st.tuples(
        st.sampled_from(["store", "write", "delete"]),
        st.integers(min_value=0, max_value=6),  # name index
        st.integers(min_value=0, max_value=3),  # content index (few -> dups)
    ),
    max_size=80,
)

CONTENTS = [b"", b"aaa", b"bbbb" * 10, b"c" * 100]


class TestSisInvariants:
    @settings(max_examples=80, deadline=None)
    @given(operations)
    def test_reads_always_return_last_write(self, ops):
        sis = SingleInstanceStore()
        expected = {}
        for op, name_idx, content_idx in ops:
            name = f"file{name_idx}"
            content = CONTENTS[content_idx]
            if op == "store":
                sis.store(name, content)
                expected[name] = content
            elif op == "write" and name in expected:
                sis.write(name, content)
                expected[name] = content
            elif op == "delete" and name in expected:
                sis.delete(name)
                del expected[name]
        for name, content in expected.items():
            assert sis.read(name) == content

    @settings(max_examples=80, deadline=None)
    @given(operations)
    def test_physical_never_exceeds_logical(self, ops):
        sis = SingleInstanceStore()
        for op, name_idx, content_idx in ops:
            name = f"file{name_idx}"
            try:
                if op == "store":
                    sis.store(name, CONTENTS[content_idx])
                elif op == "write":
                    sis.write(name, CONTENTS[content_idx])
                else:
                    sis.delete(name)
            except KeyError:
                pass
            stats = sis.stats()
            assert stats.physical_bytes <= stats.logical_bytes

    @settings(max_examples=80, deadline=None)
    @given(operations)
    def test_blob_count_equals_distinct_live_contents(self, ops):
        sis = SingleInstanceStore()
        expected = {}
        for op, name_idx, content_idx in ops:
            name = f"file{name_idx}"
            try:
                if op == "store":
                    sis.store(name, CONTENTS[content_idx])
                    expected[name] = CONTENTS[content_idx]
                elif op == "write":
                    sis.write(name, CONTENTS[content_idx])
                    expected[name] = CONTENTS[content_idx]
                else:
                    sis.delete(name)
                    expected.pop(name, None)
            except KeyError:
                pass
        assert sis.blob_count() == len(set(expected.values()))
