"""Property tests: RSA encryption over arbitrary payloads."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rsa import generate_keypair

_KEYPAIR = generate_keypair(512, rng=random.Random(0xBEEF))

payloads = st.binary(min_size=0, max_size=_KEYPAIR.public.max_payload_bytes)
seeds = st.integers(min_value=0, max_value=2**32)


class TestRsaProperties:
    @settings(max_examples=60, deadline=None)
    @given(payloads, seeds)
    def test_roundtrip(self, payload, seed):
        ciphertext = _KEYPAIR.public.encrypt(payload, rng=random.Random(seed))
        assert _KEYPAIR.decrypt(ciphertext) == payload

    @settings(max_examples=40, deadline=None)
    @given(payloads, seeds, seeds)
    def test_randomized_padding(self, payload, seed_a, seed_b):
        a = _KEYPAIR.public.encrypt(payload, rng=random.Random(seed_a))
        b = _KEYPAIR.public.encrypt(payload, rng=random.Random(seed_b))
        if seed_a != seed_b:
            # Different nonces virtually always give different ciphertexts.
            assert a != b or seed_a == seed_b
        assert _KEYPAIR.decrypt(a) == _KEYPAIR.decrypt(b) == payload

    @settings(max_examples=40, deadline=None)
    @given(payloads, seeds)
    def test_ciphertext_width_is_fixed(self, payload, seed):
        ciphertext = _KEYPAIR.public.encrypt(payload, rng=random.Random(seed))
        assert len(ciphertext) == (_KEYPAIR.public.modulus_bits + 7) // 8
