"""Property tests: UnionFind against a naive reference implementation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.space import UnionFind

pairs = st.lists(
    st.tuples(st.integers(0, 20), st.integers(0, 20)), min_size=0, max_size=60
)


def naive_components(edges):
    """Reference: repeated merging of overlapping sets."""
    sets = []
    nodes = set()
    for a, b in edges:
        nodes.add(a)
        nodes.add(b)
        merged = {a, b}
        remaining = []
        for s in sets:
            if s & merged:
                merged |= s
            else:
                remaining.append(s)
        remaining.append(merged)
        sets = remaining
    return {frozenset(s) for s in sets}


class TestAgainstReference:
    @settings(max_examples=100, deadline=None)
    @given(pairs)
    def test_components_match_reference(self, edges):
        uf = UnionFind()
        for a, b in edges:
            uf.union(a, b)
        ours = {frozenset(v) for v in uf.components().values()}
        assert ours == naive_components(edges)

    @settings(max_examples=50, deadline=None)
    @given(pairs)
    def test_reclaim_count_invariant(self, edges):
        """sum(|component| - 1) == nodes - components, the quantity the
        space accounting is built on."""
        uf = UnionFind()
        for a, b in edges:
            uf.union(a, b)
        components = uf.components()
        nodes = sum(len(v) for v in components.values())
        reclaimed = sum(len(v) - 1 for v in components.values())
        assert reclaimed == nodes - len(components)
