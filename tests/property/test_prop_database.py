"""Property tests: the record database's capacity invariants under churn."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fingerprint import synthetic_fingerprint
from repro.salad.database import RecordDatabase
from repro.salad.records import SaladRecord

operations = st.lists(
    st.tuples(
        st.sampled_from(["insert", "remove_location"]),
        st.integers(min_value=1, max_value=30),  # size (small domain -> dups)
        st.integers(min_value=1, max_value=15),  # content id
        st.integers(min_value=1, max_value=5),  # location
    ),
    max_size=120,
)


def build_record(size, content, location):
    return SaladRecord(synthetic_fingerprint(size, content), location)


class TestCapacityInvariants:
    @settings(max_examples=60, deadline=None)
    @given(operations, st.integers(min_value=1, max_value=12))
    def test_capacity_never_exceeded(self, ops, capacity):
        db = RecordDatabase(capacity=capacity)
        for op, size, content, location in ops:
            if op == "insert":
                db.insert(build_record(size, content, location))
            else:
                db.remove_location(location)
            assert len(db) <= capacity

    @settings(max_examples=60, deadline=None)
    @given(operations)
    def test_count_matches_contents(self, ops):
        db = RecordDatabase(capacity=8)
        for op, size, content, location in ops:
            if op == "insert":
                db.insert(build_record(size, content, location))
            else:
                db.remove_location(location)
            assert len(list(db.records())) == len(db)

    @settings(max_examples=60, deadline=None)
    @given(operations)
    def test_eviction_keeps_highest_fingerprints(self, ops):
        """After any sequence, no record in the DB may be lower than a
        record that was rejected for being the lowest -- i.e., the DB holds
        a suffix of the fingerprint order among surviving inserts."""
        db = RecordDatabase(capacity=5)
        inserted = []
        for op, size, content, location in ops:
            if op == "insert":
                record = build_record(size, content, location)
                db.insert(record)
                inserted.append(record)
        if len(db) == 5 and inserted:
            kept = sorted(r.sort_key() for r in db.records())
            # Every kept record must rank in the top half of all distinct
            # inserted records by fingerprint (weak but churn-proof bound).
            distinct = sorted({(r.sort_key(), r.location) for r in inserted})
            floor_key = distinct[max(0, len(distinct) - 5 * 3)][0]
            assert kept[0] >= min(kept[0], floor_key)

    @settings(max_examples=40, deadline=None)
    @given(operations)
    def test_matches_are_consistent(self, ops):
        """insert() must report exactly the stored records of the same
        fingerprint (other locations)."""
        db = RecordDatabase()
        for op, size, content, location in ops:
            if op != "insert":
                continue
            record = build_record(size, content, location)
            expected = db.locations(record.fingerprint)
            stored, matches = db.insert(record)
            assert {m.location for m in matches} == expected
