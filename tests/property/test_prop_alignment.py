"""Property tests: alignment predicates (Eqs. 11, 12, 15)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.salad.alignment import (
    delta_dimensionally_aligned,
    lowest_alignment,
    mismatching_dimensions,
    vector_aligned,
)

identifiers = st.integers(min_value=0, max_value=(1 << 160) - 1)
widths = st.integers(min_value=0, max_value=20)
dims = st.integers(min_value=1, max_value=4)


class TestAlignmentProperties:
    @given(identifiers, identifiers, widths, dims)
    def test_symmetry(self, i, j, width, dimensions):
        assert mismatching_dimensions(i, j, width, dimensions) == mismatching_dimensions(
            j, i, width, dimensions
        )

    @given(identifiers, widths, dims)
    def test_reflexivity(self, i, width, dimensions):
        assert lowest_alignment(i, i, width, dimensions) == 0

    @given(identifiers, identifiers, widths, dims)
    def test_delta_bounded_by_dimensions(self, i, j, width, dimensions):
        assert 0 <= lowest_alignment(i, j, width, dimensions) <= dimensions

    @given(identifiers, identifiers, widths, dims)
    def test_delta_alignment_monotone(self, i, j, width, dimensions):
        """If delta-aligned, then (delta+1)-aligned (Eq. 15 nests)."""
        delta = lowest_alignment(i, j, width, dimensions)
        for larger in range(delta, dimensions + 1):
            assert delta_dimensionally_aligned(i, j, width, dimensions, larger)
        for smaller in range(0, delta):
            assert not delta_dimensionally_aligned(i, j, width, dimensions, smaller)

    @given(identifiers, identifiers, st.integers(min_value=1, max_value=20), dims)
    def test_folding_never_breaks_alignment(self, i, j, width, dimensions):
        """Decreasing W merges coordinates: mismatches can only vanish."""
        assert lowest_alignment(i, j, width - 1, dimensions) <= lowest_alignment(
            i, j, width, dimensions
        )

    @given(identifiers, identifiers, widths)
    def test_d1_always_vector_aligned(self, i, j, width):
        """In one dimension every pair shares the single vector (Eq. 12)."""
        assert vector_aligned(i, j, width, 1)

    @given(identifiers, identifiers, dims)
    def test_width_zero_always_cell_aligned(self, i, j, dimensions):
        assert lowest_alignment(i, j, 0, dimensions) == 0
