"""Property tests: availability-driven replica placement invariants.

Whatever the availabilities, capacities, and RNG seed, a placement must
(a) give every file exactly R distinct hosts and (b) never exceed any
machine's replica-slot capacity -- the two invariants the DFC pipeline's
replication stage leans on.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.farsite.placement import PlacementProblem, place_replicas


@st.composite
def problems(draw):
    machines = draw(st.integers(min_value=2, max_value=12))
    r = draw(st.integers(min_value=1, max_value=machines))
    files = draw(st.integers(min_value=0, max_value=16))
    availability = {
        m: draw(
            st.floats(
                min_value=0.05, max_value=1.0, allow_nan=False, allow_infinity=False
            )
        )
        for m in range(machines)
    }
    # Uniform capacity with enough total slots for the demand, plus the
    # slack the hill climb needs to move replicas around.
    slots = -(-files * r // machines) + r
    capacity = {m: slots for m in range(machines)}
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return (
        PlacementProblem(
            machine_availability=availability,
            machine_capacity=capacity,
            file_ids=[f"f{i}" for i in range(files)],
            replication_factor=r,
        ),
        seed,
    )


class TestPlacementProperties:
    @settings(max_examples=60, deadline=None)
    @given(problems())
    def test_every_file_gets_exactly_r_distinct_hosts(self, case):
        problem, seed = case
        placement = place_replicas(problem, rng=random.Random(seed), swap_rounds=100)
        r = problem.replication_factor
        assert set(placement.assignment) == set(problem.file_ids)
        for hosts in placement.assignment.values():
            assert len(hosts) == r
            assert len(set(hosts)) == r
            assert all(h in problem.machine_availability for h in hosts)

    @settings(max_examples=60, deadline=None)
    @given(problems())
    def test_capacity_never_exceeded(self, case):
        problem, seed = case
        placement = place_replicas(problem, rng=random.Random(seed), swap_rounds=100)
        usage = {}
        for hosts in placement.assignment.values():
            for host in hosts:
                usage[host] = usage.get(host, 0) + 1
        for host, used in usage.items():
            assert used <= problem.machine_capacity[host]

    @settings(max_examples=30, deadline=None)
    @given(problems())
    def test_availabilities_are_probabilities(self, case):
        problem, seed = case
        placement = place_replicas(problem, rng=random.Random(seed), swap_rounds=50)
        for value in placement.file_availabilities().values():
            assert 0.0 < value <= 1.0
