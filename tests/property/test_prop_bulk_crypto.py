"""Property tests: the vectorized/batched fast paths are bit-identical.

Every performance path in the crypto and fingerprint layers keeps its slow
reference implementation alive precisely so these tests can pin them
together: T-table AES against the textbook per-byte rounds, the numpy CTR
keystream against the one-block-at-a-time loop, and the batched fingerprint
helpers against their per-item originals.  A fast path that diverges by a
single bit anywhere breaks convergent encryption's core property (identical
plaintext -> identical ciphertext across machines), so these run under
hypothesis rather than a handful of fixed vectors.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fingerprint import (
    fingerprint_many,
    fingerprint_of,
    synthetic_fingerprint,
    synthetic_fingerprint_many,
)
from repro.crypto.aes import AES
from repro.crypto.modes import (
    BLOCK_SIZE,
    KeystreamCache,
    bulk_decrypt_ctr,
    bulk_encrypt_ctr,
    ctr_keystream,
    encrypt_ctr,
    encrypt_ctr_scalar,
    keystream_blocks,
)

keys = (
    st.binary(min_size=16, max_size=16)
    | st.binary(min_size=24, max_size=24)
    | st.binary(min_size=32, max_size=32)
)
blocks = st.binary(min_size=16, max_size=16)
payloads = st.binary(min_size=0, max_size=4096)
nonces = st.integers(min_value=0, max_value=(1 << 128) - 1)
#: Nonces near the low-64-bit rollover, where the vectorized counter path
#: must fall back to exact integer arithmetic.
straddle_nonces = st.integers(
    min_value=(1 << 64) - 64, max_value=(1 << 64) + 64
) | st.integers(min_value=(1 << 128) - 64, max_value=(1 << 128) - 1)


class TestTTableAes:
    """The T-table round function equals the per-byte reference rounds."""

    @settings(max_examples=60, deadline=None)
    @given(keys, blocks)
    def test_fast_equals_scalar(self, key, block):
        cipher = AES(key)
        assert cipher.encrypt_block(block) == cipher.encrypt_block_scalar(block)

    @settings(max_examples=40, deadline=None)
    @given(keys, blocks)
    def test_decrypt_inverts_fast_path(self, key, block):
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @pytest.mark.parametrize(
        "key_hex,expected_hex",
        [
            # FIPS-197 appendix C known-answer vectors, all three key sizes,
            # exercised through the T-table fast path.
            ("000102030405060708090a0b0c0d0e0f", "69c4e0d86a7b0430d8cdb78070b4c55a"),
            (
                "000102030405060708090a0b0c0d0e0f1011121314151617",
                "dda97ca4864cdfe06eaf70a0ec0d7191",
            ),
            (
                "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
                "8ea2b7ca516745bfeafc49904b496089",
            ),
        ],
    )
    def test_fips197_vectors(self, key_hex, expected_hex):
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        cipher = AES(bytes.fromhex(key_hex))
        assert cipher.encrypt_block(plaintext) == bytes.fromhex(expected_hex)
        assert cipher.encrypt_block_scalar(plaintext) == bytes.fromhex(expected_hex)


class TestVectorKeystream:
    """The numpy keystream equals the scalar block-loop keystream."""

    @settings(max_examples=40, deadline=None)
    @given(keys, nonces, st.integers(min_value=0, max_value=64))
    def test_keystream_blocks_equals_reference(self, key, nonce, blocks_):
        cipher = AES(key)
        assert keystream_blocks(cipher, nonce, blocks_) == ctr_keystream(
            cipher, nonce, blocks_
        )

    @settings(max_examples=30, deadline=None)
    @given(keys, straddle_nonces, st.integers(min_value=8, max_value=96))
    def test_counter_rollover(self, key, nonce, blocks_):
        """Counters straddling 2^64 (and 2^128 wraparound) stay exact."""
        cipher = AES(key)
        assert keystream_blocks(cipher, nonce, blocks_) == ctr_keystream(
            cipher, nonce, blocks_
        )


class TestBulkCtr:
    """bulk_encrypt_ctr == the seed's scalar encrypt_ctr, byte for byte."""

    @settings(max_examples=50, deadline=None)
    @given(keys, payloads, st.integers(min_value=0, max_value=(1 << 64) + 8))
    def test_bulk_equals_scalar(self, key, payload, nonce):
        assert bulk_encrypt_ctr(key, payload, nonce) == encrypt_ctr_scalar(
            key, payload, nonce
        )

    @settings(max_examples=40, deadline=None)
    @given(keys, payloads, nonces)
    def test_bulk_roundtrip(self, key, payload, nonce):
        assert bulk_decrypt_ctr(key, bulk_encrypt_ctr(key, payload, nonce), nonce) == payload

    @settings(max_examples=40, deadline=None)
    @given(keys, payloads)
    def test_public_ctr_is_bulk(self, key, payload):
        assert encrypt_ctr(key, payload) == bulk_encrypt_ctr(key, payload)

    @settings(max_examples=25, deadline=None)
    @given(keys, payloads, st.integers(min_value=0, max_value=1 << 40))
    def test_cache_never_changes_bytes(self, key, payload, nonce):
        """A warm cache entry yields the same ciphertext as a cold one."""
        cold = KeystreamCache()
        warm = KeystreamCache()
        nbytes = len(payload)
        if nbytes:
            warm.keystream(key, nonce, max(1, nbytes // 2))  # partial prefix
        assert cold.keystream(key, nonce, nbytes) == warm.keystream(key, nonce, nbytes)
        assert warm.keystream(key, nonce, nbytes) == ctr_keystream(
            AES(key), nonce, -(-nbytes // BLOCK_SIZE)
        )[:nbytes]


class TestBatchedFingerprints:
    """Batched helpers equal their per-item originals, in order."""

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.binary(min_size=0, max_size=256), max_size=20))
    def test_fingerprint_many(self, contents):
        assert fingerprint_many(contents) == [fingerprint_of(c) for c in contents]

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1 << 40),
                st.integers(min_value=0, max_value=1 << 40),
            ),
            max_size=20,
        )
    )
    def test_synthetic_fingerprint_many(self, descriptors):
        assert synthetic_fingerprint_many(descriptors) == [
            synthetic_fingerprint(size, content_id) for size, content_id in descriptors
        ]
