"""Machine identities: public-key-hash identifiers and certificates."""

import random

from repro.farsite.machine_id import IDENTIFIER_BYTES, MachineIdentity, identifier_of


class TestIdentifier:
    def test_derived_from_public_key_hash(self):
        identity = MachineIdentity(rng=random.Random(1))
        assert identity.identifier == identifier_of(identity.public_key)

    def test_twenty_bytes(self):
        identity = MachineIdentity(rng=random.Random(2))
        assert identity.identifier < 1 << (8 * IDENTIFIER_BYTES)

    def test_distinct_machines_distinct_identifiers(self):
        a = MachineIdentity(rng=random.Random(3))
        b = MachineIdentity(rng=random.Random(4))
        assert a.identifier != b.identifier


class TestCertificate:
    def test_self_signed_certificate_verifies(self):
        identity = MachineIdentity(rng=random.Random(5))
        assert identity.certificate().verify()

    def test_forged_identifier_rejected(self):
        """Unforgeability: nobody can claim another machine's identifier."""
        honest = MachineIdentity(rng=random.Random(6))
        forger = MachineIdentity(rng=random.Random(7))
        forged = forger.certificate()
        # Swap in the honest machine's identifier: hash check fails.
        from dataclasses import replace

        tampered = replace(forged, identifier=honest.identifier)
        assert not tampered.verify()

    def test_tampered_signature_rejected(self):
        identity = MachineIdentity(rng=random.Random(8))
        cert = identity.certificate()
        from dataclasses import replace

        tampered = replace(cert, signature=cert.signature ^ 1)
        assert not tampered.verify()
