"""Availability-driven replica placement."""

import random

import pytest

from repro.farsite.placement import (
    Placement,
    PlacementProblem,
    file_availability,
    place_replicas,
)


def make_problem(machines=10, files=8, r=3, capacity=None):
    rng = random.Random(1)
    availability = {i: 0.3 + 0.6 * rng.random() for i in range(machines)}
    capacity = capacity or {i: files for i in range(machines)}
    return PlacementProblem(
        machine_availability=availability,
        machine_capacity=capacity,
        file_ids=[f"f{i}" for i in range(files)],
        replication_factor=r,
    )


class TestFileAvailability:
    def test_single_host(self):
        assert file_availability([1], {1: 0.9}) == pytest.approx(0.9)

    def test_independent_hosts(self):
        # 1 - 0.5 * 0.5 = 0.75
        assert file_availability([1, 2], {1: 0.5, 2: 0.5}) == pytest.approx(0.75)

    def test_more_replicas_never_hurt(self):
        avail = {1: 0.5, 2: 0.6, 3: 0.7}
        assert file_availability([1, 2, 3], avail) > file_availability([1, 2], avail)


class TestPlacement:
    def test_every_file_gets_r_distinct_hosts(self):
        problem = make_problem()
        placement = place_replicas(problem, rng=random.Random(2))
        for fid, hosts in placement.assignment.items():
            assert len(hosts) == 3
            assert len(set(hosts)) == 3

    def test_respects_capacity(self):
        problem = make_problem(machines=6, files=4, r=3, capacity={i: 2 for i in range(6)})
        placement = place_replicas(problem, rng=random.Random(3))
        usage = {}
        for hosts in placement.assignment.values():
            for host in hosts:
                usage[host] = usage.get(host, 0) + 1
        assert all(count <= 2 for count in usage.values())

    def test_hill_climbing_does_not_hurt_min_availability(self):
        problem = make_problem(machines=12, files=10)
        greedy_only = place_replicas(problem, rng=random.Random(4), swap_rounds=0)
        optimized = place_replicas(problem, rng=random.Random(4), swap_rounds=500)
        assert optimized.min_availability >= greedy_only.min_availability - 1e-12

    def test_availability_metrics(self):
        problem = make_problem()
        placement = place_replicas(problem, rng=random.Random(5))
        assert 0.0 < placement.min_availability <= placement.mean_availability <= 1.0

    def test_overcommitted_demand_rejected(self):
        with pytest.raises(ValueError):
            make_problem(machines=2, files=10, r=3, capacity={0: 1, 1: 1})

    def test_invalid_availability_rejected(self):
        with pytest.raises(ValueError):
            PlacementProblem(
                machine_availability={1: 0.0},
                machine_capacity={1: 5},
                file_ids=["f"],
                replication_factor=1,
            )


class TestProblemValidation:
    def test_availability_above_one_rejected(self):
        with pytest.raises(ValueError, match="availability"):
            PlacementProblem(
                machine_availability={1: 1.5},
                machine_capacity={1: 5},
                file_ids=["f"],
                replication_factor=1,
            )

    def test_nan_availability_rejected(self):
        with pytest.raises(ValueError, match="availability"):
            PlacementProblem(
                machine_availability={1: float("nan")},
                machine_capacity={1: 5},
                file_ids=["f"],
                replication_factor=1,
            )

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            PlacementProblem(
                machine_availability={1: 0.9},
                machine_capacity={1: -1},
                file_ids=[],
                replication_factor=1,
            )

    def test_capacity_without_availability_rejected(self):
        with pytest.raises(ValueError, match="no availability"):
            PlacementProblem(
                machine_availability={1: 0.9},
                machine_capacity={1: 2, 2: 2},
                file_ids=["f"],
                replication_factor=1,
            )

    def test_invalid_replication_factor_rejected(self):
        with pytest.raises(ValueError, match="replication factor"):
            PlacementProblem(
                machine_availability={1: 0.9},
                machine_capacity={1: 2},
                file_ids=["f"],
                replication_factor=0,
            )


class TestHillClimbCachePinning:
    """The availability cache must not change what the climb computes.

    The pre-fix climb recomputed every file's availability each round
    (O(files x swap_rounds)); the cached climb updates only the two
    swapped files.  Same RNG stream, same float computations, same
    tie-breaking -- so the final assignment must be *identical*, not just
    equally good.  This pins that equivalence against a straightforward
    recompute-everything reference.
    """

    @staticmethod
    def _reference_climb(problem, seed, swap_rounds):
        from repro.farsite.placement import _try_swap

        greedy = place_replicas(problem, rng=random.Random(0), swap_rounds=0)
        assignment = {fid: list(hosts) for fid, hosts in greedy.assignment.items()}
        availability = problem.machine_availability
        rng = random.Random(seed)
        fids = list(assignment)
        for _ in range(swap_rounds):
            if len(fids) < 2:
                break
            low = min(
                fids, key=lambda f: file_availability(assignment[f], availability)
            )
            high = rng.choice(fids)
            if high == low:
                continue
            improved = _try_swap(assignment[low], assignment[high], availability)
            if improved is not None:
                assignment[low], assignment[high] = improved
        return {fid: tuple(hosts) for fid, hosts in assignment.items()}

    @pytest.mark.parametrize("seed", [2, 9, 31])
    def test_cached_climb_matches_recompute_reference(self, seed):
        problem = make_problem(machines=14, files=12, r=3)
        expected = self._reference_climb(problem, seed, swap_rounds=300)
        cached = place_replicas(
            problem, rng=random.Random(seed), swap_rounds=300
        )
        assert cached.assignment == expected
